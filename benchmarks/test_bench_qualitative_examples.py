"""E11 — Figures 12/13 and §4.3: qualitative inspection of top synthesized mappings.

Paper shape: ranking synthesized clusters by popularity (contributing domains)
surfaces mostly meaningful mappings; a minority are formatting/temporal artifacts
that a human curator can prune quickly (12.6% meaningless in the paper's top-500).
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import collect_web_examples
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_qualitative_top_mappings(benchmark, web_corpus, bench_config):
    examples = run_once(
        benchmark,
        collect_web_examples,
        corpus=web_corpus,
        config=bench_config,
        top_k=20,
    )

    print()
    rows = [
        [
            example["column_names"],
            example["size"],
            example["popularity"],
            example["label"],
            "; ".join(f"{l} -> {r}" for l, r in example["sample_instances"][:2]),
        ]
        for example in examples
    ]
    print(
        format_simple_table(
            ["columns", "pairs", "domains", "label", "examples"],
            rows,
            title="Figures 12/13 — top synthesized Web mappings",
        )
    )

    assert len(examples) >= 10
    meaningful = [example for example in examples if example["label"] == "meaningful"]
    # The large majority of popularity-ranked clusters are meaningful mappings.
    assert len(meaningful) >= 0.7 * len(examples)
    # Popularity ranking is monotone.
    popularity = [example["popularity"] for example in examples]
    assert popularity == sorted(popularity, reverse=True)
