"""E1 — Figure 7: average F-score / precision / recall of every method.

Paper shape: Synthesis has the best average F-score and recall; WikiTable has the
best precision but poor recall; the union baselines are the best existing methods;
SynthesisPos and the schema-matching aggregations trail Synthesis; knowledge bases
have decent precision but low recall.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import default_methods, run_method_comparison
from repro.evaluation.reporting import format_comparison_table

import pytest

pytestmark = pytest.mark.slow


def test_fig7_method_comparison(benchmark, web_corpus, bench_config):
    result = run_once(
        benchmark,
        run_method_comparison,
        corpus=web_corpus,
        config=bench_config,
        methods=default_methods(bench_config),
    )

    print()
    print(format_comparison_table(result.evaluations, title="Figure 7 — method comparison"))

    evaluations = result.evaluations
    synthesis = evaluations["Synthesis"]

    # Synthesis leads on F-score and recall among corpus-driven methods.
    for name, evaluation in evaluations.items():
        if name in ("Synthesis",):
            continue
        assert synthesis.avg_f_score >= evaluation.avg_f_score - 0.02, (
            f"{name} unexpectedly beats Synthesis"
        )
    # Raw single tables have high precision but much lower recall than Synthesis.
    assert evaluations["WebTable"].avg_precision >= 0.9
    assert synthesis.avg_recall > evaluations["WebTable"].avg_recall + 0.1
    # Dropping the FD-induced negative signal hurts (SynthesisPos).
    assert synthesis.avg_f_score > evaluations["SynthesisPos"].avg_f_score
    # Knowledge bases miss relations and synonyms: recall well below Synthesis.
    assert synthesis.avg_recall > evaluations["YAGO"].avg_recall
