"""E3 — Figure 9: pipeline runtime versus fraction of input tables.

Paper shape: runtime grows close to linearly with the input size because edge
sparsity keeps the number of scored pairs near-linear in the number of tables.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_scalability
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_fig9_scalability(benchmark, sweep_corpus, bench_config):
    result = run_once(
        benchmark,
        run_scalability,
        corpus=sweep_corpus,
        fractions=(0.2, 0.4, 0.6, 0.8, 1.0),
        config=bench_config,
    )

    print()
    rows = [
        [f"{fraction:.0%}", tables, candidates, f"{seconds:.2f}s"]
        for fraction, tables, candidates, seconds in result.rows()
    ]
    print(
        format_simple_table(
            ["input fraction", "tables", "candidates", "runtime"],
            rows,
            title="Figure 9 — scalability",
        )
    )

    # Runtime must grow with input size...
    assert result.runtimes[-1] >= result.runtimes[0]
    # ...and should stay well below quadratic growth: going from 20% to 100% of the
    # input (5x) should cost far less than 25x (quadratic) — allow up to ~3x linear.
    if result.runtimes[0] > 0.05:
        ratio = result.runtimes[-1] / result.runtimes[0]
        assert ratio < 15, f"runtime grew {ratio:.1f}x for a 5x input increase"
    # Candidate counts grow monotonically with the corpus sample.
    assert result.candidate_counts == sorted(result.candidate_counts)
