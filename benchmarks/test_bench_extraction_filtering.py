"""E9 — §3.2: candidate-extraction filtering statistics.

Paper shape: the PMI + FD filters remove a large share (~78%) of raw ordered column
pairs.  The synthetic corpus is dominated by clean two-column tables, so the
absolute fraction is lower, but the filters must still remove a material share and
the FD filter must reject the non-functional pairs.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_extraction_stats
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_extraction_filtering_stats(benchmark, web_corpus, bench_config):
    stats = run_once(
        benchmark,
        run_extraction_stats,
        corpus=web_corpus,
        config=bench_config,
    )

    print()
    rows = [[key, f"{value:.3f}" if isinstance(value, float) else value]
            for key, value in sorted(stats.items())]
    print(format_simple_table(["statistic", "value"], rows, title="§3.2 — extraction filtering"))

    assert stats["raw_pairs"] > stats["candidates"]
    assert stats["pairs_removed_by_fd"] > 0
    assert 0.05 < stats["filtered_fraction"] < 1.0
