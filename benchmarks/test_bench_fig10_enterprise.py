"""E4 — Figure 10: Synthesis vs EntTable on the Enterprise corpus.

Paper shape: Synthesis (0.96 F / 0.96 P / 0.97 R) clearly beats single-table
EntTable (0.84 F / 0.99 P / 0.79 R): merging small spreadsheet tables yields much
higher recall while conflict avoidance keeps precision high.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_enterprise_comparison
from repro.evaluation.reporting import format_comparison_table

import pytest

pytestmark = pytest.mark.slow


def test_fig10_enterprise_comparison(benchmark, enterprise_corpus, bench_config):
    result = run_once(
        benchmark,
        run_enterprise_comparison,
        corpus=enterprise_corpus,
        config=bench_config,
    )

    print()
    print(
        format_comparison_table(
            result.evaluations, title="Figure 10 — Enterprise: Synthesis vs EntTable"
        )
    )

    synthesis = result.evaluations["Synthesis"]
    ent_table = result.evaluations["EntTable"]
    # Synthesis wins on F-score thanks to much better recall.
    assert synthesis.avg_f_score > ent_table.avg_f_score
    assert synthesis.avg_recall > ent_table.avg_recall
    # Single tables remain extremely precise.
    assert ent_table.avg_precision >= 0.9
