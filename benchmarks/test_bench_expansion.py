"""E10 — Appendix I: the effect of table expansion from trusted sources.

Paper shape: expansion has limited overall effect but substantially improves the
few large relations (airport codes) whose tails are under-represented in tables.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_expansion_study
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_expansion_study(benchmark, web_corpus, bench_config):
    study = run_once(
        benchmark,
        run_expansion_study,
        corpus=web_corpus,
        config=bench_config,
        trusted_cases=("airport_iata", "airport_icao", "country_iso3"),
    )

    print()
    rows = [
        [case, f"{before:.3f}", f"{after:.3f}", f"{after - before:+.3f}"]
        for case, before, after in study.rows()
        if case in ("airport_iata", "airport_icao", "country_iso3", "state_abbrev")
    ]
    print(
        format_simple_table(
            ["case", "F before", "F after", "delta"],
            rows,
            title="Appendix I — table expansion",
        )
    )

    # Expansion never hurts the targeted cases and helps at least one of them.
    targeted = ("airport_iata", "airport_icao", "country_iso3")
    for case in targeted:
        assert study.after[case].f_score >= study.before[case].f_score - 1e-9
    assert any(
        study.after[case].f_score > study.before[case].f_score + 0.005 for case in targeted
    )
    # Untargeted cases are untouched.
    assert study.after["state_abbrev"].f_score >= study.before["state_abbrev"].f_score - 1e-9
