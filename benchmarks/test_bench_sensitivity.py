"""E8 — §5.4: sensitivity of Synthesis to its parameters.

Paper shape: quality is insensitive to θ in [0.93, 0.97]; the τ curve peaks at a
small negative value (≈ −0.05) and stays good for moderately negative values;
θ_overlap mainly affects efficiency, not quality; θ_edge has a broad good range.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_sensitivity
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def _print(result) -> None:
    rows = [[value, f"{f_score:.3f}", mappings] for value, f_score, mappings in result.rows()]
    print(
        format_simple_table(
            [result.parameter, "avg F", "mappings"],
            rows,
            title=f"§5.4 sensitivity — {result.parameter}",
        )
    )


def test_sensitivity_tau(benchmark, sweep_corpus, bench_config):
    result = run_once(
        benchmark,
        run_sensitivity,
        "conflict_threshold",
        (-0.05, -0.2, -0.4),
        corpus=sweep_corpus,
        config=bench_config,
    )
    print()
    _print(result)
    # The peak sits at a small negative τ (the paper reports ≈ −0.05), and quality
    # degrades gracefully rather than collapsing for more negative values.
    assert result.best_value() in (-0.05, -0.2)
    assert max(result.avg_f_scores) - min(result.avg_f_scores) < 0.2


def test_sensitivity_fd_theta(benchmark, sweep_corpus, bench_config):
    result = run_once(
        benchmark,
        run_sensitivity,
        "fd_theta",
        (0.93, 0.95, 0.97),
        corpus=sweep_corpus,
        config=bench_config,
    )
    print()
    _print(result)
    # Quality is insensitive to θ in the studied range (paper: results change < 1%).
    assert max(result.avg_f_scores) - min(result.avg_f_scores) < 0.05


def test_sensitivity_edge_threshold(benchmark, sweep_corpus, bench_config):
    result = run_once(
        benchmark,
        run_sensitivity,
        "edge_threshold",
        (0.2, 0.5, 0.85),
        corpus=sweep_corpus,
        config=bench_config,
    )
    print()
    _print(result)
    # A moderate θ_edge is at least as good as the very strict 0.85 setting on the
    # sparser synthetic corpus (the paper tunes 0.85 on the 100M-table corpus).
    best = result.best_value()
    assert best in (0.2, 0.5)


def test_sensitivity_overlap_threshold(benchmark, sweep_corpus, bench_config):
    result = run_once(
        benchmark,
        run_sensitivity,
        "overlap_threshold",
        (1, 2, 3),
        corpus=sweep_corpus,
        config=bench_config,
    )
    print()
    _print(result)
    # θ_overlap is an efficiency knob: quality stays within a narrow band.
    assert max(result.avg_f_scores) - min(result.avg_f_scores) < 0.15
