"""Daemon benchmark: throughput vs worker count, and latency across a hot reload.

Measures what the serving daemon adds over the synchronous
:class:`MappingService` at the headline bench scale, recorded in
``BENCH_daemon.json``:

1. **Throughput vs worker count.**  Two workloads:

   * *cpu-bound* — requests are pure in-process index lookups.  Under the
     CPython GIL (and on this 1-CPU container) worker threads cannot multiply
     CPU; this row is recorded for honesty, with no scaling claim attached.
   * *io-inclusive* — each request additionally waits on a simulated
     downstream call (``DOWNSTREAM_IO_SECONDS``, a ``time.sleep`` standing in
     for the network/storage hop every real serving stack has; sleeping
     releases the GIL exactly as socket waits do).  Here worker threads
     genuinely overlap the waits, and the ISSUE's acceptance bar — multi-worker
     throughput ≥ 2x single-worker — is asserted on this workload.

2. **Thread vs process serving backend (cpu-bound).**  The same cpu-bound
   workload through a ``executor="process:N"`` daemon, whose per-generation
   :class:`repro.exec.ProcessBackend` serves batches in worker processes.  On
   multi-core runners this is the leg that scales past the GIL (asserted
   faster than the thread backend there); on a 1-CPU container the row is
   recorded for honesty — pickling overhead with no second core to spend it
   on.  Process-served answers are asserted byte-identical to the synchronous
   service either way.

3. **Latency across a hot reload.**  A client streams batches while
   ``refresh_artifact`` publishes a new artifact version under the daemon;
   per-batch p50/p95 latency is recorded before/after the swap, along with the
   swap pickup time, and post-swap answers are asserted byte-identical to a
   synchronous service over the new artifact.

4. **Aggregate cluster throughput.**  The same io-inclusive workload driven by
   concurrent clients through a 3-shard :class:`repro.cluster.ClusterRouter`
   (replication 2, two workers per replica).  Cluster answers are asserted
   byte-identical to the synchronous service first; the recorded aggregate
   QPS must then be ≥ 2x the single-worker daemon row on multi-core (the
   single-core row is recorded honestly, with a 1.5x floor — replica workers
   overlap the downstream waits even there).

5. **Transport tax (tcp vs inproc cluster).**  The same mixed workload through
   two otherwise-identical 3-shard clusters serving the plain service: one
   with in-process replicas, one whose replicas are ``repro.net`` subprocess
   servers reached over framed sockets.  tcp answers are asserted
   byte-identical first; the recorded row carries client-observed rtt
   p50/p90 and must keep >= 0.5x the inproc cluster's QPS.

6. **Latency under low-rate fault injection** (the chaos CI leg).  The same
   workload through a process-backed daemon with a deterministic
   :class:`repro.faults.FaultPlan` (seeded by ``REPRO_FAULT_SEED``) injecting
   a small rate of in-worker task errors and slow calls.  The recovery ladder
   retries them invisibly; the recorded ``fault_injection`` row shows p50
   staying flat relative to the fault-free baseline (asserted within a
   generous bound — retries may move the tail, never the median answer).
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.applications import CorrectRequest, FillRequest, JoinRequest, MappingService
from repro.cluster import ClusterRouter
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import get_seed_relation
from repro.evaluation.experiments import ExperimentScale, experiment_config, make_web_corpus
from repro.exec import create_backend
from repro.serving import SynthesisDaemon

pytestmark = [pytest.mark.slow, pytest.mark.daemon]

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_daemon.json"

#: Matches the headline BENCH_SCALE in conftest.py / BENCH_serving.json.
SCALE = ExperimentScale(tables_per_relation=5, max_rows=22, seed=7)
DELTA_SCALE = ExperimentScale(tables_per_relation=1, max_rows=22, seed=11)

WORKER_COUNTS = (1, 2, 4)
#: Simulated downstream hop per request for the io-inclusive workload.
DOWNSTREAM_IO_SECONDS = 0.008


def _process_pools_available() -> bool:
    """Whether this environment can run process pools at all.

    Sandboxes without /dev/shm (or with fork/spawn blocked) make the daemon
    fall back to in-process serving by design; the bench then records the
    fallback rows honestly instead of hard-failing on the environment.
    """
    try:
        with create_backend("process:2") as backend:
            return backend.map_blocks(len, [[1], [2]]) == [1, 1]
    except Exception:
        return False


class DownstreamIOService(MappingService):
    """MappingService whose every request waits on a simulated downstream call.

    ``time.sleep`` releases the GIL just as a socket read would, so this is the
    fair model of a serving stack that logs to, or reads from, anything over a
    wire — and the workload on which worker threads can actually overlap work.
    """

    def _serve_batch(self, kind, requests, handler):
        def io_handler(request):
            time.sleep(DOWNSTREAM_IO_SECONDS)
            return handler(request)

        return super()._serve_batch(kind, requests, io_handler)


def _request_batches(batches: int = 60, size: int = 4):
    states = [left for left, _ in get_seed_relation("state_abbrev").pairs]
    abbrevs = [right for _, right in get_seed_relation("state_abbrev").pairs]
    countries = [left for left, _ in get_seed_relation("country_iso3").pairs]
    out = []
    for index in range(batches):
        offset = (index * 3) % 40
        if index % 3 == 0:
            out.append(
                ("autofill", [FillRequest(keys=tuple(states[offset : offset + size]))])
            )
        elif index % 3 == 1:
            out.append(
                (
                    "autojoin",
                    [
                        JoinRequest(
                            left_keys=tuple(states[offset : offset + size]),
                            right_keys=tuple(reversed(abbrevs[offset : offset + size])),
                        )
                    ],
                )
            )
        else:
            out.append(
                (
                    "autocorrect",
                    [
                        CorrectRequest(
                            values=tuple(
                                countries[offset : offset + size // 2]
                                + abbrevs[offset : offset + size // 2]
                            )
                        )
                    ],
                )
            )
    return out


def _grown_corpus(corpus) -> TableCorpus:
    from repro.corpus.table import Table

    extra = [
        Table(
            table_id=f"delta-{table.table_id}",
            columns=table.columns,
            domain=table.domain,
            title=table.title,
            metadata=dict(table.metadata),
        )
        for table in make_web_corpus(DELTA_SCALE)
    ]
    return TableCorpus(corpus.tables() + extra, name=f"{corpus.name}+delta")


def _throughput(
    artifact_path: Path,
    workers: int,
    io_bound: bool,
    executor: str | None = None,
) -> dict[str, float]:
    """Requests/second through a daemon with ``workers`` workers.

    ``executor`` selects the serving backend spec (``None`` → worker threads,
    the legacy mode); with ``"process:N"`` batches serve on a per-generation
    process pool and the answers are asserted identical to a synchronous
    service on the same artifact.
    """
    service_cls = DownstreamIOService if io_bound else MappingService
    service = service_cls.from_artifact(artifact_path)
    workload = _request_batches()
    num_requests = sum(len(batch) for _, batch in workload)
    with SynthesisDaemon(
        service,
        workers=workers,
        queue_size=len(workload),
        source="bench",
        executor=executor,
    ) as daemon:
        if executor is not None and executor.startswith("process"):
            reference = MappingService.from_artifact(artifact_path)
            probe = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
            served = daemon.autofill(probe, block=True).result(timeout=60)
            assert repr([(r.result, r.error) for r in served.responses]) == repr(
                [(r.result, r.error) for r in reference.autofill(probe)]
            ), "process-served answers must be byte-identical to the sync service"
        start = time.perf_counter()
        for kind, batch in workload:
            daemon.submit(kind, batch, block=True)
        daemon.drain(timeout=120)
        elapsed = time.perf_counter() - start
        fallbacks = daemon.backend_fallbacks
    return {
        "workers": workers,
        "executor": executor or f"thread:{workers}",
        "requests": num_requests,
        "seconds": elapsed,
        "requests_per_second": num_requests / elapsed,
        "backend_fallbacks": fallbacks,
    }


def _percentile(samples: list[float], quantile: float) -> float:
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    return ordered[min(len(ordered) - 1, int(quantile * len(ordered)))]


def _hot_reload_latency(pipeline: SynthesisPipeline, corpus, path: Path) -> dict:
    """Stream batches while refresh_artifact publishes a new version."""
    daemon = pipeline.start_daemon(workers=2, queue_size=64, poll_seconds=0.05)
    workload = _request_batches(batches=90)
    by_generation: dict[int, list[float]] = {}
    try:
        refresh_seconds = swap_seconds = 0.0
        refresh_at = len(workload) // 3
        for position, (kind, batch) in enumerate(workload):
            if position == refresh_at:
                start = time.perf_counter()
                pipeline.refresh(_grown_corpus(corpus))  # publishes -> hot swap
                refresh_seconds = time.perf_counter() - start
                while daemon.generation.number == 1:
                    time.sleep(0.005)
                swap_seconds = time.perf_counter() - start - refresh_seconds
            result = daemon.submit(kind, batch, block=True).result(timeout=60)
            by_generation.setdefault(result.generation, []).append(
                result.total_seconds / max(1, len(batch))
            )

        # Post-swap answers must be byte-identical to a synchronous service
        # over the newly published artifact.
        reference = MappingService.from_artifact(path)
        probe = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
        served = daemon.autofill(probe).result(timeout=60)
        assert served.generation >= 2
        assert repr([(r.result, r.error) for r in served.responses]) == repr(
            [(r.result, r.error) for r in reference.autofill(probe)]
        )
    finally:
        daemon.close()
    generations = sorted(by_generation)
    before, after = by_generation[generations[0]], by_generation[generations[-1]]
    return {
        "batches": len(workload),
        "generations_observed": len(generations),
        "refresh_publish_seconds": refresh_seconds,
        "swap_pickup_seconds": swap_seconds,
        "p50_before_reload_ms": _percentile(before, 0.50) * 1000.0,
        "p95_before_reload_ms": _percentile(before, 0.95) * 1000.0,
        "p50_after_reload_ms": _percentile(after, 0.50) * 1000.0,
        "p95_after_reload_ms": _percentile(after, 0.95) * 1000.0,
    }


#: Shards / replication / clients for the scatter-gather cluster leg.
CLUSTER_SHARDS = 3
CLUSTER_REPLICATION = 2
CLUSTER_CLIENT_THREADS = 6


def _cluster_throughput(artifact_path: Path, shard_dir: Path) -> dict[str, object]:
    """Aggregate requests/second through a sharded scatter-gather cluster.

    Three daemon replicas (replication 2) each serve shard-local lookups on the
    io-inclusive service; concurrent client threads drive mixed batches through
    the router.  Cluster answers are asserted byte-identical to the synchronous
    :class:`MappingService` oracle before timing starts — the scale-out tier is
    only worth benchmarking if it is exact.
    """
    reference = MappingService.from_artifact(artifact_path)
    workload = _request_batches()
    num_requests = sum(len(batch) for _, batch in workload)
    with ClusterRouter.from_artifact(
        artifact_path,
        num_shards=CLUSTER_SHARDS,
        replication=CLUSTER_REPLICATION,
        shard_dir=shard_dir,
        watch=False,
        workers=2,
        service_cls=DownstreamIOService,
    ) as router:
        probe = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
        assert repr([(r.result, r.error) for r in router.autofill(probe)]) == repr(
            [(r.result, r.error) for r in reference.autofill(probe)]
        ), "cluster answers must be byte-identical to the sync service"
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLUSTER_CLIENT_THREADS) as clients:
            handles = [
                clients.submit(router.serve, kind, batch) for kind, batch in workload
            ]
            for handle in handles:
                handle.result(timeout=120)
        elapsed = time.perf_counter() - start
        health = router.health()
    return {
        "num_shards": CLUSTER_SHARDS,
        "replication": CLUSTER_REPLICATION,
        "client_threads": CLUSTER_CLIENT_THREADS,
        "requests": num_requests,
        "seconds": elapsed,
        "requests_per_second": num_requests / elapsed,
        "errors": sum(health["errors"].values()),
        "reroutes": health["reroutes"],
    }


def _cluster_transport_rows(
    artifact_path: Path, shard_dir_factory
) -> dict[str, object]:
    """The tcp-vs-inproc transport comparison over the *same* served service.

    Both clusters serve the plain :class:`MappingService` (the io-simulating
    subclass cannot cross the subprocess boundary), so the delta between the
    rows is purely the wire: framing, checksums, socket hops.  Answers over
    tcp are asserted byte-identical first; the recorded tcp row carries the
    client-observed rtt percentiles from the router's transport aggregate.
    """
    reference = MappingService.from_artifact(artifact_path)
    probe = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
    expected = repr([(r.result, r.error) for r in reference.autofill(probe)])
    workload = _request_batches()
    num_requests = sum(len(batch) for _, batch in workload)
    rows: dict[str, object] = {}
    for transport in ("inproc", "tcp"):
        with ClusterRouter.from_artifact(
            artifact_path,
            num_shards=CLUSTER_SHARDS,
            replication=CLUSTER_REPLICATION,
            shard_dir=shard_dir_factory.mktemp(f"bench-cluster-{transport}"),
            watch=False,
            workers=2,
            transport=transport,
        ) as router:
            assert (
                repr([(r.result, r.error) for r in router.autofill(probe)])
                == expected
            ), f"{transport} cluster answers must match the sync service"
            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLUSTER_CLIENT_THREADS) as clients:
                handles = [
                    clients.submit(router.serve, kind, batch)
                    for kind, batch in workload
                ]
                for handle in handles:
                    handle.result(timeout=120)
            elapsed = time.perf_counter() - start
            health = router.health()
        rows[transport] = {
            "requests": num_requests,
            "seconds": elapsed,
            "requests_per_second": num_requests / elapsed,
            "errors": sum(health["errors"].values()),
            "reroutes": health["reroutes"],
            "rtt_ms_p50": health["transport"]["rtt_ms_p50"],
            "rtt_ms_p90": health["transport"]["rtt_ms_p90"],
            "frames_sent": health["transport"]["frames_sent"],
            "reconnects": health["transport"]["reconnects"],
        }
    rows["tcp_vs_inproc_qps_ratio"] = (
        rows["tcp"]["requests_per_second"] / rows["inproc"]["requests_per_second"]
    )
    return rows


#: Deterministic chaos seed for the bench leg (CI pins REPRO_FAULT_SEED).
FAULT_BENCH_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260808"))


def _fault_latency(artifact_path: Path) -> dict[str, object]:
    """Per-batch latency through a process-backed daemon, clean vs faulted.

    Low-rate injected task errors are retried by the backend's recovery
    ladder and slow calls only stretch the tail, so the served answers — and
    the p50 — must not move.  Recorded as the ``fault_injection`` row; when
    process pools are unavailable there are no injection sites (thread-mode
    daemons serve on dispatcher threads) and the row says so instead.
    """
    from repro.faults import FaultPlan, injected_faults

    if not _process_pools_available():
        return {"skipped": "process pools unavailable; no injection sites"}

    plan = FaultPlan(
        seed=FAULT_BENCH_SEED,
        task_error_rate=0.05,
        slow_call_rate=0.05,
        slow_call_seconds=0.002,
    )
    reference = MappingService.from_artifact(artifact_path)
    probe = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
    expected = repr([(r.result, r.error) for r in reference.autofill(probe)])

    def run() -> tuple[list[float], dict[str, object]]:
        service = MappingService.from_artifact(artifact_path)
        workload = _request_batches(batches=60)
        samples: list[float] = []
        with SynthesisDaemon(
            service, workers=2, queue_size=64, source="bench", executor="process:2"
        ) as daemon:
            for kind, batch in workload:
                result = daemon.submit(kind, batch, block=True).result(timeout=60)
                samples.append(result.total_seconds / max(1, len(batch)))
            served = daemon.autofill(probe).result(timeout=60)
            assert (
                repr([(r.result, r.error) for r in served.responses]) == expected
            ), "faulted serving must stay byte-identical to the sync service"
            backend = daemon.generation.backend
            recovery = {
                "tasks_retried": getattr(backend, "tasks_retried", 0),
                "crash_recoveries": getattr(backend, "crash_recoveries", 0),
                "faults_injected": getattr(backend, "faults_injected", 0),
                "fallback_reason": getattr(backend, "fallback_reason", None),
            }
        return samples, recovery

    clean, _ = run()
    # Activation is process-global, so the with-block scopes injection across
    # the daemon's dispatcher threads and its worker processes' dispatch path.
    with injected_faults(plan) as injector:
        faulted, recovery = run()
        injected = injector.total_injected

    row = {
        "seed": FAULT_BENCH_SEED,
        "task_error_rate": plan.task_error_rate,
        "slow_call_rate": plan.slow_call_rate,
        "faults_injected": injected,
        "recovery": recovery,
        "p50_clean_ms": _percentile(clean, 0.50) * 1000.0,
        "p95_clean_ms": _percentile(clean, 0.95) * 1000.0,
        "p50_faulted_ms": _percentile(faulted, 0.50) * 1000.0,
        "p95_faulted_ms": _percentile(faulted, 0.95) * 1000.0,
    }
    row["p50_ratio"] = row["p50_faulted_ms"] / max(1e-9, row["p50_clean_ms"])
    return row


def test_daemon_bench(benchmark, tmp_path_factory):
    def measure() -> dict[str, object]:
        config = experiment_config().with_overrides(daemon_poll_seconds=0.05)
        corpus = make_web_corpus(SCALE)
        artifact_file = tmp_path_factory.mktemp("bench-daemon") / "web.artifact.gz"
        config = config.with_overrides(artifact_path=str(artifact_file))

        pipeline = SynthesisPipeline(config)
        start = time.perf_counter()
        pipeline.run(corpus)  # auto-saves the artifact
        cold_seconds = time.perf_counter() - start

        cpu_rows = [
            _throughput(artifact_file, workers, io_bound=False)
            for workers in WORKER_COUNTS
        ]
        process_rows = [
            _throughput(
                artifact_file, workers, io_bound=False, executor=f"process:{workers}"
            )
            for workers in WORKER_COUNTS[1:]
        ]
        io_rows = [
            _throughput(artifact_file, workers, io_bound=True)
            for workers in WORKER_COUNTS
        ]
        cluster_row = _cluster_throughput(
            artifact_file, tmp_path_factory.mktemp("bench-cluster-shards")
        )
        transport_rows = _cluster_transport_rows(artifact_file, tmp_path_factory)
        reload_row = _hot_reload_latency(pipeline, corpus, artifact_file)
        fault_row = _fault_latency(artifact_file)

        io_speedup = (
            io_rows[-1]["requests_per_second"] / io_rows[0]["requests_per_second"]
        )
        best_thread_cpu = max(row["requests_per_second"] for row in cpu_rows)
        best_process_cpu = max(row["requests_per_second"] for row in process_rows)
        cluster_speedup = (
            cluster_row["requests_per_second"] / io_rows[0]["requests_per_second"]
        )
        return {
            "num_tables": len(corpus),
            "cpu_count": os.cpu_count(),
            "cold_pipeline_seconds": cold_seconds,
            "downstream_io_seconds": DOWNSTREAM_IO_SECONDS,
            "throughput_cpu_bound": cpu_rows,
            "throughput_cpu_bound_process_backend": process_rows,
            "process_vs_thread_cpu_speedup": best_process_cpu / best_thread_cpu,
            "throughput_io_inclusive": io_rows,
            "io_speedup_max_vs_single_worker": io_speedup,
            "throughput_cluster": cluster_row,
            "cluster_speedup_vs_single_daemon": cluster_speedup,
            "cluster_transport": transport_rows,
            "hot_reload": reload_row,
            "fault_injection": fault_row,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    ARTIFACT_PATH.write_text(
        json.dumps({"benchmark": "daemon", "scale": SCALE.tables_per_relation, **row}, indent=2)
        + "\n"
    )

    print()
    for label, rows in (
        ("cpu-bound", row["throughput_cpu_bound"]),
        ("cpu/process", row["throughput_cpu_bound_process_backend"]),
        ("io-inclusive", row["throughput_io_inclusive"]),
    ):
        series = ", ".join(
            f"{r['workers']}w={r['requests_per_second']:.0f} req/s" for r in rows
        )
        print(f"throughput {label:13s} {series}")
    print(
        f"process vs thread (cpu-bound): "
        f"{row['process_vs_thread_cpu_speedup']:.2f}x on {row['cpu_count']} cpu(s)"
    )
    cluster_row = row["throughput_cluster"]
    print(
        f"cluster        {cluster_row['num_shards']} shards x"
        f"{cluster_row['replication']} replication, "
        f"{cluster_row['client_threads']} clients = "
        f"{cluster_row['requests_per_second']:.0f} req/s aggregate "
        f"({row['cluster_speedup_vs_single_daemon']:.2f}x single daemon), "
        f"{cluster_row['errors']} error(s), {cluster_row['reroutes']} reroute(s)"
    )
    transport_rows = row["cluster_transport"]
    print(
        f"transport      tcp {transport_rows['tcp']['requests_per_second']:.0f} "
        f"req/s vs inproc "
        f"{transport_rows['inproc']['requests_per_second']:.0f} req/s "
        f"({transport_rows['tcp_vs_inproc_qps_ratio']:.2f}x); tcp rtt p50/p90 "
        f"{transport_rows['tcp']['rtt_ms_p50']:.1f}/"
        f"{transport_rows['tcp']['rtt_ms_p90']:.1f} ms, "
        f"{transport_rows['tcp']['reconnects']} reconnect(s)"
    )
    reload_row = row["hot_reload"]
    print(
        f"hot reload     publish {reload_row['refresh_publish_seconds']:.2f}s, "
        f"swap pickup {reload_row['swap_pickup_seconds'] * 1000:.0f} ms; "
        f"p50/p95 before {reload_row['p50_before_reload_ms']:.1f}/"
        f"{reload_row['p95_before_reload_ms']:.1f} ms -> after "
        f"{reload_row['p50_after_reload_ms']:.1f}/{reload_row['p95_after_reload_ms']:.1f} ms"
    )

    fault_row = row["fault_injection"]
    if "skipped" not in fault_row:
        print(
            f"fault inject   seed {fault_row['seed']}, "
            f"{fault_row['faults_injected']} fault(s); p50 "
            f"{fault_row['p50_clean_ms']:.1f} -> {fault_row['p50_faulted_ms']:.1f} ms "
            f"({fault_row['p50_ratio']:.2f}x)"
        )
        # Low-rate faults are absorbed by retries: the median batch never sees
        # one, so p50 must stay flat (generous bound — shared runners jitter).
        assert fault_row["p50_ratio"] < 5.0, (
            "p50 latency must stay flat under low-rate fault injection, got "
            f"{fault_row['p50_ratio']:.2f}x"
        )
        assert fault_row["recovery"]["fallback_reason"] is None

    assert row["hot_reload"]["generations_observed"] >= 2
    assert row["io_speedup_max_vs_single_worker"] >= 2.0, (
        "multi-worker throughput must be >= 2x single-worker on the "
        f"io-inclusive workload, got {row['io_speedup_max_vs_single_worker']:.2f}x"
    )
    # A healthy cluster run serves everything with no error envelopes and no
    # failovers; the throughput claim below would be hollow otherwise.
    assert row["throughput_cluster"]["errors"] == 0
    assert row["throughput_cluster"]["reroutes"] == 0
    # A healthy tcp run serves everything without error envelopes or failovers
    # regardless of core count — the equivalence claim is unconditional.
    assert row["cluster_transport"]["tcp"]["errors"] == 0
    assert row["cluster_transport"]["tcp"]["reroutes"] == 0
    if (os.cpu_count() or 1) >= 2:
        # The wire tax is bounded: framing + checksums + a localhost socket
        # hop must not cost more than half the inproc cluster's throughput on
        # the same (plain) service.  Gated at >= 2 cores: on 1 CPU the three
        # replica subprocesses, the router, and the client threads all
        # serialize on one core, so the extra socket hops read as pure added
        # latency (measured ~0.32x there, informational only).
        assert row["cluster_transport"]["tcp_vs_inproc_qps_ratio"] >= 0.5, (
            "tcp cluster throughput fell below half the inproc cluster's, got "
            f"{row['cluster_transport']['tcp_vs_inproc_qps_ratio']:.2f}x"
        )
    # Replica workers overlap the downstream waits, so the bar holds even on
    # one CPU (measured ~2.2x there); on multi-core runners the margin only
    # widens.  Kept as a hard floor everywhere, with headroom asserted where
    # real cores exist.
    assert row["cluster_speedup_vs_single_daemon"] >= 1.5, (
        "scatter-gather cluster aggregate throughput fell below a "
        "single-worker daemon's, got "
        f"{row['cluster_speedup_vs_single_daemon']:.2f}x"
    )
    if (os.cpu_count() or 1) >= 2:
        assert row["cluster_speedup_vs_single_daemon"] >= 2.0, (
            "cluster aggregate throughput must be >= 2x a single-worker "
            "daemon on multi-core, got "
            f"{row['cluster_speedup_vs_single_daemon']:.2f}x"
        )
    # Where process pools work at all, no process-served batch may have fallen
    # back to in-process serving — a silent fallback would make the process
    # rows measure the thread path.
    if _process_pools_available():
        assert all(
            r["backend_fallbacks"] == 0
            for r in row["throughput_cpu_bound_process_backend"]
        )
    if (os.cpu_count() or 1) >= 4 and _process_pools_available():
        # The acceptance bar: with real cores available, the GIL-free process
        # backend must beat worker threads on the cpu-bound workload.  Gated
        # at >= 4 cores: on 1 CPU both serialize (the row is informational),
        # and on a loaded 2-core shared runner spawn + pickling overhead can
        # legitimately eat the margin — asserting there would flake.
        assert row["process_vs_thread_cpu_speedup"] > 1.0, (
            "process backend must out-serve the thread backend on cpu-bound "
            f"batches, got {row['process_vs_thread_cpu_speedup']:.2f}x"
        )
