"""Shared fixtures and helpers for the benchmark harness.

Each benchmark module regenerates one table or figure from the paper's evaluation
section (see DESIGN.md's experiment index).  Benchmarks are run once per session
(``benchmark.pedantic`` with a single round): the goal is regenerating the numbers
and printing the same rows/series the paper reports, not micro-benchmarking.
"""

from __future__ import annotations

import pytest

from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.evaluation.experiments import (
    ExperimentScale,
    experiment_config,
    make_enterprise_corpus,
    make_web_corpus,
)

#: Scale used by the headline benchmarks.  Five tables per relation keeps the full
#: harness to a few minutes while preserving the paper's ordering of methods; raise
#: to ``ExperimentScale.default()`` for a denser corpus (and update EXPERIMENTS.md).
BENCH_SCALE = ExperimentScale(tables_per_relation=5, max_rows=22, seed=7)

#: Smaller scale for the parameter sweeps (scalability, sensitivity), which run the
#: pipeline many times.
SWEEP_SCALE = ExperimentScale.small()


@pytest.fixture(scope="session")
def bench_config() -> SynthesisConfig:
    """Synthesis configuration shared by all benchmarks."""
    return experiment_config()


@pytest.fixture(scope="session")
def web_corpus() -> TableCorpus:
    """The synthetic Web corpus used across benchmarks."""
    return make_web_corpus(BENCH_SCALE)


@pytest.fixture(scope="session")
def sweep_corpus() -> TableCorpus:
    """A smaller Web corpus used by the repeated-run sweeps (Figure 9, §5.4)."""
    return make_web_corpus(SWEEP_SCALE)


@pytest.fixture(scope="session")
def enterprise_corpus() -> TableCorpus:
    """The synthetic Enterprise corpus used by the §5.5 benchmarks.

    Enterprise relations are short, so the per-table row cap is kept low — real
    spreadsheet fragments cover only part of a code list, which is exactly why the
    paper's EntTable baseline loses recall to Synthesis.
    """
    return make_enterprise_corpus(ExperimentScale(tables_per_relation=5, max_rows=8, seed=7))


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
