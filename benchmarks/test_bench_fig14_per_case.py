"""E6 — Figure 14: per-case F-score for individual benchmark cases.

Paper shape: sorted by the Synthesis score, a large fraction of cases sit near the
top (high-quality synthesis), and Synthesis dominates the single-table baseline on
most cases while losing only on relations with little corpus presence.
"""

from __future__ import annotations

from conftest import run_once

from repro.baselines import (
    SynthesisMethod,
    SynthesisPosMethod,
    UnionWebBaseline,
    WebTableBaseline,
)
from repro.evaluation.experiments import run_method_comparison
from repro.evaluation.reporting import format_per_case_table

import pytest

pytestmark = pytest.mark.slow


def test_fig14_per_case_comparison(benchmark, web_corpus, bench_config):
    methods = {
        "Synthesis": SynthesisMethod(bench_config),
        "SynthesisPos": SynthesisPosMethod(bench_config),
        "UnionWeb": UnionWebBaseline(bench_config),
        "WebTable": WebTableBaseline(bench_config),
    }
    result = run_once(
        benchmark,
        run_method_comparison,
        corpus=web_corpus,
        config=bench_config,
        methods=methods,
    )

    print()
    print(
        format_per_case_table(
            result.evaluations, sort_by="Synthesis", title="Figure 14 — per-case F-scores"
        )
    )

    synthesis = result.evaluations["Synthesis"]
    web_table = result.evaluations["WebTable"]
    per_case = result.per_case_rows(sort_by="Synthesis")

    # A majority of cases reach a high F-score with Synthesis.
    strong_cases = [case for case, scores in per_case if scores["Synthesis"] >= 0.8]
    assert len(strong_cases) >= len(per_case) // 2
    # Synthesis beats (or ties) the raw-table baseline on most cases.
    wins = sum(
        1 for _, scores in per_case if scores["Synthesis"] >= scores["WebTable"] - 1e-9
    )
    assert wins >= 0.6 * len(per_case)
    assert synthesis.avg_f_score > web_table.avg_f_score
