"""Serving benchmark: cold pipeline vs artifact load vs batched serving.

Measures, at the headline bench scale, the three costs the artifact store is
built to separate:

1. **cold** — a full pipeline run (extraction → scoring → synthesis → curation);
2. **artifact** — saving that run in both formats (v1 eager JSON blob, v2
   sectioned lazy container), then loading each back and standing up a
   :class:`MappingService` (what a serving process pays at startup, and what
   every daemon hot-reload swap pays again);
3. **serving** — batched autofill/autojoin/autocorrect against the prebuilt
   index (what each request batch pays), plus an incremental refresh against a
   grown corpus versus the cold rebuild it replaces.

Results are recorded in ``BENCH_serving.json`` at the repository root.  The
acceptance bars from the PR issues are asserted here: artifact load must be at
least 5x faster than the cold pipeline, the loaded service must answer batches
identically to one built from the fresh in-process run, and the v2 artifact
must be measurably smaller than the v1 encoding of the same run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.applications import CorrectRequest, FillRequest, JoinRequest, MappingService
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.evaluation.experiments import ExperimentScale, experiment_config, make_web_corpus
from repro.store import load_artifact, refresh_artifact, save_artifact

pytestmark = pytest.mark.slow

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Matches the headline BENCH_SCALE in conftest.py / BENCH_scoring.json.
SCALE = ExperimentScale(tables_per_relation=5, max_rows=22, seed=7)
#: A small disjoint batch of tables appended for the incremental-refresh leg.
DELTA_SCALE = ExperimentScale(tables_per_relation=1, max_rows=22, seed=11)


def _grown_corpus(corpus) -> "TableCorpus":
    """The bench corpus plus a freshly generated batch of new tables.

    This is the workload incremental refresh targets: the existing tables are
    untouched, so only pairs touching the new batch need scoring.
    """
    from repro.corpus.corpus import TableCorpus
    from repro.corpus.table import Table

    extra = [
        Table(
            table_id=f"delta-{table.table_id}",
            columns=table.columns,
            domain=table.domain,
            title=table.title,
            metadata=dict(table.metadata),
        )
        for table in make_web_corpus(DELTA_SCALE)
    ]
    return TableCorpus(corpus.tables() + extra, name=f"{corpus.name}+delta")


def _request_batches() -> tuple[list[FillRequest], list[JoinRequest], list[CorrectRequest]]:
    states = [left for left, _ in get_seed_relation("state_abbrev").pairs]
    countries = [left for left, _ in get_seed_relation("country_iso3").pairs]
    abbrevs = [right for _, right in get_seed_relation("state_abbrev").pairs]
    fills = [
        FillRequest(keys=tuple(states[i : i + 8]), examples={0: abbrevs[i]})
        for i in range(0, 40, 8)
    ] + [FillRequest(keys=tuple(countries[i : i + 8])) for i in range(0, 40, 8)]
    joins = [
        JoinRequest(
            left_keys=tuple(states[i : i + 6]),
            right_keys=tuple(reversed(abbrevs[i : i + 6])),
        )
        for i in range(0, 30, 6)
    ]
    corrections = [
        CorrectRequest(values=tuple(states[i : i + 4] + abbrevs[i + 4 : i + 8]))
        for i in range(0, 40, 8)
    ]
    return fills, joins, corrections


def test_serving_bench(benchmark, tmp_path_factory):
    def measure() -> dict[str, object]:
        config = experiment_config()
        corpus = make_web_corpus(SCALE)
        artifact_file = tmp_path_factory.mktemp("bench-store") / "web.artifact.gz"

        # 1. Cold pipeline run.
        pipeline = SynthesisPipeline(config)
        start = time.perf_counter()
        result = pipeline.run(corpus)
        cold_seconds = time.perf_counter() - start

        start = time.perf_counter()
        pipeline.save_artifact(artifact_file)  # v2 (sectioned) by default
        save_seconds = time.perf_counter() - start

        v1_file = artifact_file.with_name("web.artifact.v1.gz")
        start = time.perf_counter()
        save_artifact(pipeline.last_artifact, v1_file, version=1)
        v1_save_seconds = time.perf_counter() - start

        # 2. Artifact load (the >= 5x criterion) and service startup, for both
        # formats.  For v2 "load" is the lazy open (TOC parse only); the
        # serving decode happens inside the service start, which is also
        # exactly what every daemon hot-reload swap pays.
        start = time.perf_counter()
        load_artifact(artifact_file)
        load_seconds = time.perf_counter() - start

        start = time.perf_counter()
        load_artifact(v1_file)
        v1_load_seconds = time.perf_counter() - start

        start = time.perf_counter()
        loaded_service = MappingService.from_artifact(artifact_file)
        service_start_seconds = time.perf_counter() - start

        start = time.perf_counter()
        MappingService.from_artifact(v1_file)
        v1_service_start_seconds = time.perf_counter() - start

        # 3. Batched serving, answers checked against the fresh in-process run.
        fresh_service = MappingService.from_result(result)
        fills, joins, corrections = _request_batches()
        start = time.perf_counter()
        served_fills = loaded_service.autofill(fills)
        served_joins = loaded_service.autojoin(joins)
        served_corrections = loaded_service.autocorrect(corrections)
        serve_seconds = time.perf_counter() - start
        num_requests = len(fills) + len(joins) + len(corrections)

        assert [r.result for r in served_fills] == [
            r.result for r in fresh_service.autofill(fills)
        ]
        assert [r.result for r in served_joins] == [
            r.result for r in fresh_service.autojoin(joins)
        ]
        assert [r.result for r in served_corrections] == [
            r.result for r in fresh_service.autocorrect(corrections)
        ]

        # 4. Incremental refresh vs the cold rebuild it replaces.
        grown = _grown_corpus(corpus)
        start = time.perf_counter()
        _, refresh_stats = refresh_artifact(pipeline.last_artifact, grown)
        refresh_seconds = time.perf_counter() - start
        start = time.perf_counter()
        SynthesisPipeline(config).run(grown)
        cold_rebuild_seconds = time.perf_counter() - start

        return {
            "num_tables": len(corpus),
            "num_candidates": len(result.candidates),
            "num_mappings": len(result.mappings),
            "num_curated": len(result.curated),
            "index_size": len(loaded_service),
            "artifact_bytes": artifact_file.stat().st_size,
            "artifact_v1_bytes": v1_file.stat().st_size,
            "v2_size_ratio_vs_v1": artifact_file.stat().st_size / v1_file.stat().st_size,
            "cold_pipeline_seconds": cold_seconds,
            "artifact_save_seconds": save_seconds,
            "artifact_v1_save_seconds": v1_save_seconds,
            "artifact_load_seconds": load_seconds,
            "artifact_v1_load_seconds": v1_load_seconds,
            "service_start_seconds": service_start_seconds,
            "v1_service_start_seconds": v1_service_start_seconds,
            "lazy_swap_speedup_vs_v1": (
                v1_service_start_seconds / service_start_seconds
                if service_start_seconds
                else 0.0
            ),
            "load_speedup_vs_cold": cold_seconds / load_seconds if load_seconds else 0.0,
            "serving_startup_speedup_vs_cold": (
                cold_seconds / (load_seconds + service_start_seconds)
                if load_seconds + service_start_seconds
                else 0.0
            ),
            "num_requests": num_requests,
            "batched_serve_seconds": serve_seconds,
            "mean_request_ms": serve_seconds / num_requests * 1000.0,
            "refresh_seconds": refresh_seconds,
            "cold_rebuild_seconds": cold_rebuild_seconds,
            "refresh_speedup_vs_rebuild": (
                cold_rebuild_seconds / refresh_seconds if refresh_seconds else 0.0
            ),
            "refresh_pairs_reused": refresh_stats.pairs_reused,
            "refresh_pairs_scored": refresh_stats.pairs_scored,
            "refresh_candidates_reused": refresh_stats.candidates_reused,
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    ARTIFACT_PATH.write_text(
        json.dumps({"benchmark": "serving", "scale": SCALE.tables_per_relation, **row}, indent=2)
        + "\n"
    )

    print()
    print(
        f"cold pipeline  {row['cold_pipeline_seconds']:.2f}s over "
        f"{row['num_tables']} tables -> {row['num_curated']} curated mappings"
    )
    print(
        f"artifact v2    save {row['artifact_save_seconds']:.2f}s, "
        f"lazy open {row['artifact_load_seconds'] * 1000:.1f} ms "
        f"({row['load_speedup_vs_cold']:.0f}x faster than cold), "
        f"{row['artifact_bytes'] / 1024:.0f} KiB "
        f"({row['v2_size_ratio_vs_v1']:.2f}x of v1's "
        f"{row['artifact_v1_bytes'] / 1024:.0f} KiB)"
    )
    print(
        f"swap           v2 service start {row['service_start_seconds'] * 1000:.0f} ms"
        f" vs v1 {row['v1_service_start_seconds'] * 1000:.0f} ms "
        f"({row['lazy_swap_speedup_vs_v1']:.1f}x: lazy decode pays only for "
        f"mappings + curation)"
    )
    print(
        f"serving        {row['num_requests']} requests in "
        f"{row['batched_serve_seconds']:.2f}s "
        f"({row['mean_request_ms']:.1f} ms/request)"
    )
    print(
        f"refresh        {row['refresh_seconds']:.2f}s vs cold rebuild "
        f"{row['cold_rebuild_seconds']:.2f}s "
        f"({row['refresh_speedup_vs_rebuild']:.1f}x, "
        f"{row['refresh_pairs_reused']} pair scores reused)"
    )

    # The lazy open alone is near-free (TOC parse), so the >= 5x bar is held
    # against the full serving-startup cost — open + section decode + index
    # build — which is what a v1-era "artifact load" actually paid.
    assert row["serving_startup_speedup_vs_cold"] >= 5.0, (
        f"serving startup (lazy open + decode + index build) must be >= 5x "
        f"faster than the cold pipeline, got "
        f"{row['serving_startup_speedup_vs_cold']:.1f}x"
    )
    assert row["artifact_bytes"] < row["artifact_v1_bytes"], (
        f"the v2 artifact must be smaller than v1 at bench scale, got "
        f"{row['artifact_bytes']} vs {row['artifact_v1_bytes']} bytes"
    )
