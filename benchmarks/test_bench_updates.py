"""Streaming-update benchmark: delta apply latency vs refresh vs cold rebuild.

Measures the update path's headline claim at the bench scale, recorded in
``BENCH_updates.json``: one streamed row-level delta goes from **durable log
append to servable daemon pool** in milliseconds, where the previous best
(``refresh_artifact``) re-ran blocking/partitioning in seconds and a cold
pipeline rebuild re-ran everything.

The loop round-robins one single-row upsert over **every** table in the
corpus — the first tables live in the largest graph components, so sampling
only a prefix would bias the percentiles high.  Each apply is timed end to
end: fsync'd :class:`DeltaLog` append, incremental engine repair, and the
daemon's in-place pool patch.  Asserted (the ISSUE's acceptance bar):

* update-to-servable p50 < 50 ms;
* p50 at least 10x faster than one ``refresh_artifact`` call over the same
  change;
* after all deltas, the engine's mappings equal a cold rebuild's (the full
  byte-level equivalence lives in tests/test_updates_engine.py).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.applications import MappingService
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.serving import SynthesisDaemon
from repro.store.incremental import refresh_artifact
from repro.updates import DeltaLog, IncrementalEngine, TableDelta, UpdateStream

pytestmark = [pytest.mark.slow, pytest.mark.updates]

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_updates.json"

P50_BOUND_MS = 50.0
SPEEDUP_BOUND = 10.0


def updates_config() -> SynthesisConfig:
    """Bench config for the update path.

    The corpus-global PMI filter is off (the incremental engine rejects it —
    one row could reweight every candidate), and the executor is pinned to
    serial so the chaos/process CI legs (``REPRO_EXECUTOR=process:2``) measure
    the same single-process apply path: per-delta work is a handful of pairs,
    far below any fan-out threshold.
    """
    return SynthesisConfig(
        min_domains=2, min_mapping_size=5, use_pmi_filter=False, executor="serial"
    )


def row_delta(table, index: int) -> TableDelta:
    """A single-row upsert: rewrite the table's first row with a fresh value."""
    row = list(next(iter(table.rows())))
    row[-1] = f"bench-update-{index}"
    return TableDelta(table_id=table.table_id, upserts=(tuple(row),))


def percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_streaming_update_latency(benchmark, web_corpus, tmp_path):
    config = updates_config()

    def measure() -> dict:
        # Baseline 1: cold pipeline rebuild (also the equivalence oracle).
        started = time.perf_counter()
        pipeline = SynthesisPipeline(config)
        pipeline.run(web_corpus)
        cold_seconds = time.perf_counter() - started
        artifact = pipeline.last_artifact

        # Baseline 2: the pre-streaming update path — refresh_artifact over
        # the corpus with one changed table.
        changed = row_delta(next(iter(web_corpus)), 0).apply_to(web_corpus)
        started = time.perf_counter()
        refresh_artifact(artifact, changed, config)
        refresh_seconds = time.perf_counter() - started

        # The streaming path: durable log -> engine repair -> live daemon.
        started = time.perf_counter()
        engine = IncrementalEngine(web_corpus, config)
        init_seconds = time.perf_counter() - started
        daemon = SynthesisDaemon(
            MappingService.from_artifact_object(engine.artifact()),
            workers=1,
            source="bench-updates",
        )
        stream = UpdateStream(
            engine, DeltaLog(tmp_path / "bench.log"), daemon=daemon
        )
        try:
            latencies_ms: list[float] = []
            for index, table in enumerate(web_corpus, start=1):
                delta = row_delta(table, index)
                started = time.perf_counter()
                stream.apply(delta)
                latencies_ms.append((time.perf_counter() - started) * 1000.0)
            generations = daemon.generation.number
            deltas_applied = daemon.health()["deltas_applied"]
        finally:
            daemon.close()

        # Exactness spot-check: the accumulated state equals a cold rebuild.
        cold = SynthesisPipeline(config)
        cold.run(engine.corpus)
        assert cold.last_result.mappings == engine.mappings

        p50_ms = percentile(latencies_ms, 0.50)
        return {
            "num_tables": len(web_corpus),
            "pool_size": len(engine.pool),
            "cold_rebuild_seconds": cold_seconds,
            "refresh_seconds": refresh_seconds,
            "engine_init_seconds": init_seconds,
            "deltas_applied": deltas_applied,
            "daemon_generation_swaps": generations - 1,
            "apply_ms": {
                "p25": percentile(latencies_ms, 0.25),
                "p50": p50_ms,
                "p75": percentile(latencies_ms, 0.75),
                "p90": percentile(latencies_ms, 0.90),
                "max": max(latencies_ms),
                "mean": sum(latencies_ms) / len(latencies_ms),
            },
            "speedup_p50_vs_refresh": refresh_seconds / (p50_ms / 1000.0),
            "speedup_p50_vs_rebuild": cold_seconds / (p50_ms / 1000.0),
        }

    row = benchmark.pedantic(measure, rounds=1, iterations=1)
    ARTIFACT_PATH.write_text(
        json.dumps({"benchmark": "updates", **row}, indent=2) + "\n"
    )

    print()
    print(
        f"updates: {row['deltas_applied']} deltas over {row['num_tables']} tables; "
        f"apply p50 {row['apply_ms']['p50']:.1f} ms / p90 "
        f"{row['apply_ms']['p90']:.1f} ms; refresh {row['refresh_seconds']:.2f} s; "
        f"cold rebuild {row['cold_rebuild_seconds']:.2f} s; "
        f"speedup vs refresh {row['speedup_p50_vs_refresh']:.0f}x"
    )

    assert row["apply_ms"]["p50"] < P50_BOUND_MS
    assert row["speedup_p50_vs_refresh"] >= SPEEDUP_BOUND
