"""E7 — Figure 15 / §5.6: the effect of conflict resolution.

Paper shape: conflict resolution raises average precision substantially
(0.903 -> 0.965) at a tiny recall cost (0.885 -> 0.878) and improves the F-score of
a large fraction of cases; majority voting is a close alternative.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import run_conflict_resolution_study
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_fig15_conflict_resolution(benchmark, web_corpus, bench_config):
    study = run_once(
        benchmark,
        run_conflict_resolution_study,
        corpus=web_corpus,
        config=bench_config,
    )

    print()
    rows = []
    for label, evaluation in (
        ("with resolution (Alg. 4)", study.with_resolution),
        ("without resolution", study.without_resolution),
        ("majority voting", study.majority_voting),
    ):
        rows.append(
            [
                label,
                f"{evaluation.avg_f_score:.3f}",
                f"{evaluation.avg_precision:.3f}",
                f"{evaluation.avg_recall:.3f}",
            ]
        )
    print(
        format_simple_table(
            ["variant", "avg F", "avg precision", "avg recall"],
            rows,
            title="Figure 15 / §5.6 — conflict resolution",
        )
    )
    print(f"cases improved by resolution: {len(study.improved_cases)}")

    with_res = study.with_resolution
    without = study.without_resolution
    # Conflict resolution must raise precision...
    assert with_res.avg_precision > without.avg_precision
    # ...with only a modest recall cost.
    assert with_res.avg_recall > without.avg_recall - 0.08
    # Majority voting behaves comparably (the paper reports a small difference).
    assert abs(study.majority_voting.avg_f_score - with_res.avg_f_score) < 0.1
