"""Scoring hot-path benchmark: graph build + partition, fast path vs naive oracle.

Times compatibility-graph construction and greedy partitioning at two corpus
scales and records the results in ``BENCH_scoring.json`` at the repository root
(wall times, blocked/scored pair counts, match-cache hit rate, and the speedup
of the indexed/cached engine over the seed implementation preserved in
:mod:`repro.graph.reference`), so future PRs have a perf trajectory to compare
against.

A second section records the **executor scaling curve** (ROADMAP item):
the same build repeated under ``serial`` / ``thread:N`` / ``process:N``
:mod:`repro.exec` backends, each asserted byte-identical to the serial graph.
On multi-core CI runners the process rows show the GIL-free speedup; on a
1-CPU container they are recorded for honesty with no scaling claim attached.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.evaluation.experiments import (
    ExperimentScale,
    experiment_config,
    make_web_corpus,
)
from repro.exec import create_backend
from repro.extraction.candidates import CandidateExtractor
from repro.graph.build import GraphBuilder
from repro.graph.partition import GreedyPartitioner
from repro.graph.reference import naive_build_graph

pytestmark = pytest.mark.slow

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scoring.json"

#: (label, scale) pairs; the larger one matches the headline BENCH_SCALE in
#: conftest.py so its numbers line up with the rest of the harness.
SCALES = [
    ("small", ExperimentScale(tables_per_relation=3, max_rows=14, seed=13)),
    ("medium", ExperimentScale(tables_per_relation=5, max_rows=22, seed=7)),
]

#: Executor specs swept for the scaling curve (2 workers exercises the pool
#: machinery everywhere; wider pools only help where the cores exist).
EXECUTOR_SPECS = ("serial", "thread:2", "process:2")


def _process_pools_available() -> bool:
    """Whether this environment can run process pools at all.

    Sandboxes without /dev/shm (or with fork/spawn blocked) make GraphBuilder
    fall back to the serial path by design; the bench then records the
    fallback rows honestly instead of hard-failing on the environment.
    """
    try:
        with create_backend("process:2") as backend:
            return backend.map_blocks(len, [[1], [2]]) == [1, 1]
    except Exception:
        return False


def _measure_executor_scaling(scale: ExperimentScale) -> list[dict[str, object]]:
    """Build the same graph under every backend; record times, assert equality."""
    corpus = make_web_corpus(scale)
    candidates, _ = CandidateExtractor(
        experiment_config().with_overrides(executor="serial")
    ).extract(corpus)
    rows: list[dict[str, object]] = []
    reference_edges = None
    serial_seconds = 0.0
    for spec in EXECUTOR_SPECS:
        builder = GraphBuilder(experiment_config().with_overrides(executor=spec))
        start = time.perf_counter()
        graph = builder.build(candidates)
        seconds = time.perf_counter() - start
        edges = (graph.positive_edges, graph.negative_edges)
        if reference_edges is None:
            reference_edges, serial_seconds = edges, seconds
        else:
            assert edges == reference_edges, f"{spec} build diverged from serial"
        rows.append(
            {
                "executor": spec,
                "build_seconds": seconds,
                "speedup_vs_serial": serial_seconds / seconds if seconds else 0.0,
                "num_workers": builder.last_build_stats.num_workers,
                "parallel_fallback": builder.last_build_stats.parallel_fallback,
            }
        )
    return rows


def _measure_scale(label: str, scale: ExperimentScale) -> dict[str, object]:
    # The headline row measures the single-worker algorithmic win; pinning the
    # serial backend keeps it meaningful under a REPRO_EXECUTOR CI override.
    config = experiment_config().with_overrides(executor="serial")
    corpus = make_web_corpus(scale)
    candidates, _ = CandidateExtractor(config).extract(corpus)

    start = time.perf_counter()
    naive_graph = naive_build_graph(candidates, config)
    naive_seconds = time.perf_counter() - start

    builder = GraphBuilder(config)
    start = time.perf_counter()
    graph = builder.build(candidates)
    build_seconds = time.perf_counter() - start
    stats = builder.last_build_stats

    start = time.perf_counter()
    partition = GreedyPartitioner(config).partition(graph)
    partition_seconds = time.perf_counter() - start

    assert graph.positive_edges == naive_graph.positive_edges
    assert graph.negative_edges == naive_graph.negative_edges

    return {
        "scale": label,
        "tables_per_relation": scale.tables_per_relation,
        "num_candidates": len(candidates),
        "num_positive_edges": graph.num_positive_edges,
        "num_negative_edges": graph.num_negative_edges,
        "num_partitions": len(partition),
        "naive_build_seconds": naive_seconds,
        "build_seconds": build_seconds,
        "partition_seconds": partition_seconds,
        "build_speedup": naive_seconds / build_seconds if build_seconds else 0.0,
        "pairs_blocked_positive": stats.pairs_blocked_positive,
        "pairs_blocked_negative": stats.pairs_blocked_negative,
        "pairs_scored": stats.pairs_scored,
        "match_cache_hit_rate": stats.cache_hit_rate,
        "num_workers": stats.num_workers,
    }


def test_scoring_hotpath(benchmark):
    def measure():
        rows = [_measure_scale(label, scale) for label, scale in SCALES]
        scaling = _measure_executor_scaling(SCALES[-1][1])
        return rows, scaling

    rows, scaling = benchmark.pedantic(measure, rounds=1, iterations=1)
    artifact = {
        "benchmark": "scoring_hotpath",
        "cpu_count": os.cpu_count(),
        "scales": rows,
        "executor_scaling": scaling,
    }
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    print()
    for row in rows:
        print(
            f"[{row['scale']}] candidates={row['num_candidates']} "
            f"naive={row['naive_build_seconds']:.2f}s "
            f"fast={row['build_seconds']:.2f}s "
            f"({row['build_speedup']:.1f}x, cache hit rate "
            f"{row['match_cache_hit_rate']:.1%}) "
            f"partition={row['partition_seconds']:.2f}s"
        )
    print(
        "executor scaling "
        + ", ".join(
            f"{row['executor']}={row['build_seconds']:.2f}s" for row in scaling
        )
    )

    # Every backend built the exact same graph (asserted inside the sweep).
    # Where process pools work at all, the sweep must also have really used
    # them — a silent serial fallback would mislabel the recorded rows.
    if _process_pools_available():
        assert not any(row["parallel_fallback"] for row in scaling)
        assert [row["num_workers"] for row in scaling] == [1, 2, 2]

    headline = rows[-1]
    # The single-worker caching win must not depend on core count (≥ 2x), and the
    # overall build must beat the naive oracle by ≥ 3x at the headline scale.
    assert headline["num_workers"] == 1
    assert headline["build_speedup"] >= 3.0, (
        f"expected >= 3x build speedup, got {headline['build_speedup']:.2f}x"
    )
