"""Scoring hot-path benchmark: graph build + partition, fast path vs naive oracle.

Times compatibility-graph construction and greedy partitioning at two corpus
scales and records the results in ``BENCH_scoring.json`` at the repository root
(wall times, blocked/scored pair counts, match-cache hit rate, and the speedup
of the indexed/cached engine over the seed implementation preserved in
:mod:`repro.graph.reference`), so future PRs have a perf trajectory to compare
against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.evaluation.experiments import (
    ExperimentScale,
    experiment_config,
    make_web_corpus,
)
from repro.extraction.candidates import CandidateExtractor
from repro.graph.build import GraphBuilder
from repro.graph.partition import GreedyPartitioner
from repro.graph.reference import naive_build_graph

pytestmark = pytest.mark.slow

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scoring.json"

#: (label, scale) pairs; the larger one matches the headline BENCH_SCALE in
#: conftest.py so its numbers line up with the rest of the harness.
SCALES = [
    ("small", ExperimentScale(tables_per_relation=3, max_rows=14, seed=13)),
    ("medium", ExperimentScale(tables_per_relation=5, max_rows=22, seed=7)),
]


def _measure_scale(label: str, scale: ExperimentScale) -> dict[str, object]:
    config = experiment_config()
    corpus = make_web_corpus(scale)
    candidates, _ = CandidateExtractor(config).extract(corpus)

    start = time.perf_counter()
    naive_graph = naive_build_graph(candidates, config)
    naive_seconds = time.perf_counter() - start

    builder = GraphBuilder(config)
    start = time.perf_counter()
    graph = builder.build(candidates)
    build_seconds = time.perf_counter() - start
    stats = builder.last_build_stats

    start = time.perf_counter()
    partition = GreedyPartitioner(config).partition(graph)
    partition_seconds = time.perf_counter() - start

    assert graph.positive_edges == naive_graph.positive_edges
    assert graph.negative_edges == naive_graph.negative_edges

    return {
        "scale": label,
        "tables_per_relation": scale.tables_per_relation,
        "num_candidates": len(candidates),
        "num_positive_edges": graph.num_positive_edges,
        "num_negative_edges": graph.num_negative_edges,
        "num_partitions": len(partition),
        "naive_build_seconds": naive_seconds,
        "build_seconds": build_seconds,
        "partition_seconds": partition_seconds,
        "build_speedup": naive_seconds / build_seconds if build_seconds else 0.0,
        "pairs_blocked_positive": stats.pairs_blocked_positive,
        "pairs_blocked_negative": stats.pairs_blocked_negative,
        "pairs_scored": stats.pairs_scored,
        "match_cache_hit_rate": stats.cache_hit_rate,
        "num_workers": stats.num_workers,
    }


def test_scoring_hotpath(benchmark):
    rows = benchmark.pedantic(
        lambda: [_measure_scale(label, scale) for label, scale in SCALES],
        rounds=1,
        iterations=1,
    )
    artifact = {"benchmark": "scoring_hotpath", "scales": rows}
    ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")

    print()
    for row in rows:
        print(
            f"[{row['scale']}] candidates={row['num_candidates']} "
            f"naive={row['naive_build_seconds']:.2f}s "
            f"fast={row['build_seconds']:.2f}s "
            f"({row['build_speedup']:.1f}x, cache hit rate "
            f"{row['match_cache_hit_rate']:.1%}) "
            f"partition={row['partition_seconds']:.2f}s"
        )

    headline = rows[-1]
    # The single-worker caching win must not depend on core count (≥ 2x), and the
    # overall build must beat the naive oracle by ≥ 3x at the headline scale.
    assert headline["num_workers"] == 1
    assert headline["build_speedup"] >= 3.0, (
        f"expected >= 3x build speedup, got {headline['build_speedup']:.2f}x"
    )
