"""E2 — Figure 8: runtime comparison of all methods.

Paper shape: knowledge-base lookups are fastest; single-table and union methods
need only corpus scans; Synthesis costs more (graph construction + partitioning);
correlation clustering is the slowest of the graph-based methods.
"""

from __future__ import annotations

from conftest import run_once

from repro.baselines import (
    CorrelationClusteringBaseline,
    FreebaseBaseline,
    SynthesisMethod,
    UnionWebBaseline,
    WebTableBaseline,
)
from repro.evaluation.benchmark import build_web_benchmark
from repro.evaluation.reporting import format_simple_table
from repro.evaluation.runner import EvaluationRunner

import pytest

pytestmark = pytest.mark.slow


def test_fig8_runtime(benchmark, web_corpus, bench_config):
    def run() -> dict[str, float]:
        runner = EvaluationRunner(web_corpus, build_web_benchmark(web_corpus), bench_config)
        methods = {
            "Synthesis": SynthesisMethod(bench_config),
            "Correlation": CorrelationClusteringBaseline(bench_config),
            "UnionWeb": UnionWebBaseline(bench_config),
            "WebTable": WebTableBaseline(bench_config),
            "Freebase": FreebaseBaseline(),
        }
        evaluations = runner.evaluate_all(methods)
        return {name: evaluation.runtime_seconds for name, evaluation in evaluations.items()}

    runtimes = run_once(benchmark, run)

    print()
    rows = [[name, f"{seconds:.2f}s"] for name, seconds in sorted(runtimes.items())]
    print(format_simple_table(["method", "runtime"], rows, title="Figure 8 — runtime"))

    # Lookup/scan methods are orders of magnitude cheaper than graph-based synthesis.
    assert runtimes["Freebase"] < runtimes["Synthesis"]
    assert runtimes["WebTable"] < runtimes["Synthesis"]
    assert runtimes["UnionWeb"] < runtimes["Synthesis"]
    # All methods complete (the paper's Correlation baseline needs a timeout at
    # corpus scale; at bench scale it must simply finish).
    assert all(seconds >= 0 for seconds in runtimes.values())
