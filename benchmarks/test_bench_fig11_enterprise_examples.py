"""E5 — Figure 11: example mapping relationships from the Enterprise corpus.

Paper shape: the most popular synthesized enterprise mappings are business-code
relationships (product-family -> code, profit-center -> description,
data-center -> region, ...) with consistent, well-structured instances.
"""

from __future__ import annotations

from conftest import run_once

from repro.evaluation.experiments import collect_enterprise_examples
from repro.evaluation.reporting import format_simple_table

import pytest

pytestmark = pytest.mark.slow


def test_fig11_enterprise_examples(benchmark, enterprise_corpus, bench_config):
    examples = run_once(
        benchmark,
        collect_enterprise_examples,
        corpus=enterprise_corpus,
        config=bench_config,
        top_k=8,
    )

    print()
    rows = [
        [
            example["column_names"],
            example["size"],
            example["popularity"],
            "; ".join(f"{left} -> {right}" for left, right in example["sample_instances"][:2]),
        ]
        for example in examples
    ]
    print(
        format_simple_table(
            ["columns", "pairs", "shares", "example instances"],
            rows,
            title="Figure 11 — enterprise mapping examples",
        )
    )

    assert len(examples) >= 3
    # Every surfaced mapping must be backed by multiple file shares and have
    # a non-trivial number of instances.
    assert all(example["popularity"] >= 2 for example in examples)
    assert all(example["size"] >= 5 for example in examples)
    assert all(example["sample_instances"] for example in examples)
