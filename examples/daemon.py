"""A long-lived synthesis service daemon with artifact hot-reload.

Run with::

    python examples/daemon.py

The script runs the synthesis pipeline once and persists the run, then starts a
:class:`SynthesisDaemon` over the artifact with ``executor="process:4"`` — one
config knob selects the execution backend for every parallel stage
(``"serial"``, ``"thread:8"``, ``"process:4"``; see :mod:`repro.exec`), so the
pipeline's blocked-pair scoring *and* the daemon's serving pool here both use
GIL-free worker processes.  Auto-fill / auto-join / auto-correct batches are
submitted concurrently from several client threads.  While clients keep
submitting, the corpus grows and ``pipeline.refresh`` publishes a new artifact
version — the daemon's watcher picks it up and atomically hot-swaps the served
generation *and its process pool* (in-flight batches finish on the old one).
Finally the daemon drains and shuts down cleanly, printing per-generation
serving stats.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.applications import CorrectRequest, FillRequest, JoinRequest
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def main() -> None:
    # 1. One cold pipeline run, persisted as the served artifact.
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    artifact_path = Path(tempfile.mkdtemp(prefix="repro-daemon-")) / "web.artifact.json.gz"
    config = SynthesisConfig(
        min_domains=2,
        min_mapping_size=5,
        artifact_path=str(artifact_path),
        daemon_poll_seconds=0.05,
        # One spec for every parallel stage: scoring fans blocked pairs across
        # 4 worker processes, and the daemon below serves batches on a GIL-free
        # process pool.  Try "thread:4" or "serial" — answers are identical.
        executor="process:4",
    )
    pipeline = SynthesisPipeline(config)
    result = pipeline.run(corpus)  # auto-saves to config.artifact_path
    print(f"pipeline run: {len(result.curated)} curated mappings -> {artifact_path.name}")

    # 2. The daemon serves the artifact: bounded queue, worker backend, watcher.
    daemon = pipeline.start_daemon(queue_size=32)
    generation = daemon.generation
    print(f"daemon up: generation {generation.number}, "
          f"{daemon.workers} {daemon.executor_kind} workers, "
          f"queue bound {daemon.queue_size}")

    # 3. Several client threads submit batches concurrently.
    def client(name: str, batches: int) -> None:
        for index in range(batches):
            ticket = daemon.autofill(
                [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))],
                block=True,
            )
            result = ticket.result(timeout=30)
            if index == 0:
                filled = result.responses[0].result.filled
                print(f"  client {name}: gen {result.generation} "
                      f"({result.total_seconds * 1000:.1f} ms) -> {filled}")

    clients = [
        threading.Thread(target=client, args=(f"c{index}", 10)) for index in range(3)
    ]
    for thread in clients:
        thread.start()

    # 4. Meanwhile the corpus grows; refresh publishes -> the watcher hot-swaps.
    bigger = WebCorpusGenerator(
        CorpusGenerationSpec(tables_per_relation=6, max_rows=20, seed=7)
    ).generate()
    _, refresh_stats = pipeline.refresh(bigger)  # auto-saves the new version
    deadline = time.monotonic() + 10
    while daemon.generation.number == 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    print(f"hot reload: generation {daemon.generation.number} after refresh "
          f"(+{refresh_stats.tables_added} tables, "
          f"{refresh_stats.pairs_reused} pair scores reused)")

    for thread in clients:
        thread.join()

    # 5. Operators poll health(): one JSON-able snapshot of generation, queue,
    #    breaker, shed-load counters, and watcher degradation.
    health = daemon.health()
    print(f"health: {health['status']}, generation {health['generation']}, "
          f"queue {health['queue_depth']}/{health['queue_size']}, "
          f"breaker {health['breaker']['state']}")

    # 6. Chaos drill: every publish in this block is deterministically treated
    #    as failed.  The watcher backs off, then pins the last good generation
    #    — the daemon keeps serving and health() says exactly what is wrong.
    from repro.faults import FaultPlan, injected_faults

    pinned_generation = daemon.generation.number
    with injected_faults(FaultPlan(seed=7, publish_failure_rate=1.0)):
        for _ in range(4):  # a storm of failed publishes
            time.sleep(0.01)  # distinct mtime per publish
            pipeline.save_artifact(artifact_path)
            daemon.watcher.check_now(force=True)
        health = daemon.health()
        watcher_health = health["watcher"]
        print(f"failed-publish storm: status {health['status']}, "
              f"still serving generation {daemon.generation.number}, "
              f"pinned={watcher_health['pinned']} after "
              f"{watcher_health['consecutive_failures']} consecutive failures")
        assert daemon.generation.number == pinned_generation
    # Chaos over: the very next good publish recovers automatically.
    time.sleep(0.01)
    pipeline.save_artifact(artifact_path)
    daemon.watcher.check_now(force=True)
    print(f"recovered: status {daemon.health()['status']}, "
          f"generation {daemon.generation.number}")

    # 7. Mixed batches against the new generation, then a clean drain + close.
    join = daemon.autojoin(
        [JoinRequest(left_keys=("California", "Texas"), right_keys=("TX", "CA"))]
    ).result(timeout=30)
    correct = daemon.autocorrect(
        [CorrectRequest(values=("California", "Washington", "Oregon", "CA", "WA"))]
    ).result(timeout=30)
    print(f"autojoin on gen {join.generation}: "
          f"{join.responses[0].result.row_pairs}")
    print(f"autocorrect on gen {correct.generation}: "
          f"{ {s.original: s.suggestion for s in correct.responses[0].result} }")

    daemon.drain(timeout=30)
    daemon.close()
    print("per-generation stats after clean shutdown:")
    for stats in daemon.stats_by_generation():
        print(f"  gen {stats.generation}: {stats.as_dict()['total_requests']} requests "
              f"in {stats.batches} batches "
              f"(p95 autofill {stats.latency_percentile('autofill', 0.95) * 1000:.1f} ms)")


if __name__ == "__main__":
    main()
