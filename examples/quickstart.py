"""Quickstart: synthesize mapping relationships from a (synthetic) web table corpus.

Run with::

    python examples/quickstart.py

The script generates a small web-table-like corpus, runs the three-step pipeline
from the paper (candidate extraction -> table synthesis -> conflict resolution),
and prints the most popular synthesized mappings together with a few of their
value pairs — the same kind of output shown in the paper's Figure 11/12.
"""

from __future__ import annotations

from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def main() -> None:
    # 1. Build (or load) a table corpus.  Here we generate a synthetic corpus that
    #    mimics web tables: fragmented relations, synonyms, generic headers, noise.
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    print(f"corpus: {len(corpus)} tables, {corpus.num_columns} columns, "
          f"{len(corpus.domains())} domains")

    # 2. Run the synthesis pipeline.  On a multi-core machine, add
    #    executor="process:4" (or set REPRO_EXECUTOR=process:4) to fan scoring
    #    and extraction across worker processes — the output is byte-identical.
    config = SynthesisConfig(min_domains=2, min_mapping_size=5)
    pipeline = SynthesisPipeline(config)
    result = pipeline.run(corpus)

    print(f"candidate two-column tables: {len(result.candidates)}")
    print(f"synthesized mappings:        {len(result.mappings)}")
    print(f"curated (popular) mappings:  {len(result.curated)}")
    print()

    # 3. Inspect the most popular synthesized mappings.
    print("top synthesized mappings (by number of contributing web domains):")
    for mapping in result.top_mappings(8):
        sample = ", ".join(
            f"{pair.left} -> {pair.right}" for pair in list(mapping.pairs)[:3]
        )
        print(
            f"  {mapping.mapping_id}: columns={mapping.column_names}, "
            f"pairs={len(mapping)}, domains={mapping.popularity}, tables={mapping.num_source_tables}"
        )
        print(f"      e.g. {sample}")


if __name__ == "__main__":
    main()
