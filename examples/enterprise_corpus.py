"""Synthesizing enterprise-specific mappings from spreadsheet-like tables (paper §5.5).

Run with::

    python examples/enterprise_corpus.py

Enterprise corpora contain mappings (cost centers, profit centers, data-center
regions) that no public knowledge base covers.  This example generates an
enterprise-flavoured corpus — including pivot-table extraction artifacts — runs the
same pipeline used for the web corpus, and prints the synthesized mappings in the
style of the paper's Figure 11.
"""

from __future__ import annotations

from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, EnterpriseCorpusGenerator
from repro.evaluation.benchmark import build_enterprise_benchmark
from repro.evaluation.metrics import best_mapping_score


def main() -> None:
    spec = CorpusGenerationSpec(tables_per_relation=6, max_rows=12, seed=31)
    corpus = EnterpriseCorpusGenerator(spec, pivot_corruption_rate=0.15).generate()
    print(f"enterprise corpus: {len(corpus)} spreadsheet tables from "
          f"{len(corpus.domains())} file shares")

    config = SynthesisConfig(min_domains=2, min_mapping_size=5)
    result = SynthesisPipeline(config).run(corpus)

    print(f"\nsynthesized {len(result.mappings)} relationships "
          f"({len(result.curated)} curated)\n")
    print("example mapping relationships (cf. paper Figure 11):")
    for mapping in result.top_mappings(6):
        instances = "; ".join(
            f"({pair.left}, {pair.right})" for pair in list(mapping.pairs)[:2]
        )
        print(f"  columns={mapping.column_names}  size={len(mapping)}  "
              f"shares={mapping.popularity}")
        print(f"      {instances}, ...")

    # Quality against the best-effort enterprise benchmark (paper Figure 10).
    benchmark = build_enterprise_benchmark(corpus)
    scores = [best_mapping_score(result.mappings, case.truth) for case in benchmark]
    avg_f = sum(score.f_score for score in scores) / len(scores)
    print(f"\naverage F-score over {len(benchmark)} enterprise benchmark cases: {avg_f:.2f}")


if __name__ == "__main__":
    main()
