"""Serving synthesized mappings: persist one pipeline run, answer many requests.

Run with::

    python examples/serving.py

The script runs the synthesis pipeline once, saves the run as a versioned
artifact, then starts a :class:`MappingService` from the artifact — the way a
serving process would, paying artifact-load + one index build instead of a full
pipeline run — and answers batched auto-fill, auto-join, and auto-correct
requests against it.  Finally it edits the corpus and incrementally refreshes
the artifact, rescoring only pairs that touch changed tables.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.applications import CorrectRequest, FillRequest, JoinRequest, MappingService
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def main() -> None:
    # 1. One cold pipeline run, persisted as an artifact.
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    artifact_path = Path(tempfile.mkdtemp(prefix="repro-store-")) / "web.artifact.json.gz"

    config = SynthesisConfig(
        min_domains=2, min_mapping_size=5, artifact_path=str(artifact_path)
    )
    pipeline = SynthesisPipeline(config)

    start = time.perf_counter()
    result = pipeline.run(corpus)  # auto-saves to config.artifact_path
    cold_seconds = time.perf_counter() - start
    print(f"cold pipeline run: {len(result.curated)} curated mappings "
          f"in {cold_seconds:.2f}s -> {artifact_path.name} "
          f"({artifact_path.stat().st_size / 1024:.0f} KiB)")

    # 2. A serving process starts from the artifact alone.
    start = time.perf_counter()
    service = MappingService.from_artifact(artifact_path)
    warm_seconds = time.perf_counter() - start
    print(f"service from artifact: index over {len(service)} mappings "
          f"in {warm_seconds:.2f}s ({cold_seconds / warm_seconds:.0f}x faster than cold)")
    print()

    # 3. Batched requests against the shared index.
    fills = service.autofill([
        FillRequest(keys=("California", "Texas", "Ohio", "Washington")),
        FillRequest(keys=()),  # empty request: served, fills nothing
    ])
    for response in fills:
        filled = response.result.filled if response.ok else {}
        print(f"autofill[{response.request_index}] "
              f"({response.elapsed_seconds * 1000:.1f} ms): {filled}")

    joins = service.autojoin([
        JoinRequest(left_keys=("California", "Texas"), right_keys=("TX", "CA")),
    ])
    for response in joins:
        print(f"autojoin[{response.request_index}]: row pairs "
              f"{response.result.row_pairs if response.ok else response.error}")

    corrections = service.autocorrect([
        CorrectRequest(values=("California", "Washington", "Oregon", "CA", "WA")),
    ])
    for response in corrections:
        fixes = {s.original: s.suggestion for s in response.result} if response.ok else {}
        print(f"autocorrect[{response.request_index}]: {fixes}")
    print(f"service stats: {service.stats.total_requests} requests "
          f"in {service.stats.batches} batches")
    print()

    # 4. The corpus grows; refresh the artifact instead of re-running everything.
    bigger = WebCorpusGenerator(
        CorpusGenerationSpec(tables_per_relation=6, max_rows=20, seed=7)
    ).generate()
    _, refresh_stats = pipeline.refresh(bigger)
    print(f"incremental refresh: {refresh_stats.tables_added} tables added, "
          f"{refresh_stats.tables_changed} changed; reused "
          f"{refresh_stats.candidates_reused}/{refresh_stats.candidates_total} candidates, "
          f"{refresh_stats.pairs_reused} pair scores "
          f"(rescored {refresh_stats.pairs_scored}) "
          f"in {refresh_stats.elapsed_seconds:.2f}s")


if __name__ == "__main__":
    main()
