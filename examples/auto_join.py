"""Auto-join: joining two tables whose keys use different representations
(paper Table 5).

Run with::

    python examples/auto_join.py

An analyst wants to join a table of stocks (keyed by ticker) with a table of
companies (keyed by company name).  A synthesized (company, ticker) mapping acts
as the bridge table for a three-way join, without the analyst supplying any
explicit correspondence.
"""

from __future__ import annotations

from repro.applications import AutoJoiner, MappingIndex
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def build_index() -> MappingIndex:
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=25, seed=23)
    corpus = WebCorpusGenerator(spec).generate()
    config = SynthesisConfig(min_domains=2, min_mapping_size=5)
    result = SynthesisPipeline(config).run(corpus)
    print(f"indexed {len(result.curated)} curated mappings")
    return MappingIndex(result.curated or result.mappings)


def main() -> None:
    index = build_index()

    # Left user table: stocks by market capitalization (keyed by ticker).
    stocks = [
        ("GE", "255.88B"),
        ("WMT", "212.13B"),
        ("MSFT", "380.15B"),
        ("ORCL", "255.88B"),
        ("UPS", "94.27B"),
    ]
    # Right user table: political contributions by company name.
    contributions = [
        ("General Electric", "$59,456,031"),
        ("Walmart", "$47,497,295"),
        ("Oracle", "$34,216,308"),
        ("Microsoft Corp", "$33,910,357"),
        ("AT&T Inc", "$33,752,009"),
    ]

    joiner = AutoJoiner(index)
    result = joiner.join([ticker for ticker, _ in stocks],
                         [company for company, _ in contributions])
    print(f"\nbridge mapping: {result.mapping_id} (join rate {result.join_rate:.0%})\n")
    print(f"{'Ticker':8s} {'Market Cap':12s} {'Company':20s} {'Contributions':>15s}")
    for left_row, right_row in sorted(result.row_pairs):
        ticker, cap = stocks[left_row]
        company, amount = contributions[right_row]
        print(f"{ticker:8s} {cap:12s} {company:20s} {amount:>15s}")
    if result.unmatched_left:
        unmatched = ", ".join(stocks[row][0] for row in result.unmatched_left)
        print(f"\nunmatched stock rows: {unmatched}")
    if result.unmatched_right:
        unmatched = ", ".join(contributions[row][0] for row in result.unmatched_right)
        print(f"unmatched company rows: {unmatched}")


if __name__ == "__main__":
    main()
