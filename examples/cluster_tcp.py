"""A serving cluster whose replicas are real subprocess servers over TCP.

Run with::

    python examples/cluster_tcp.py

Same contract as ``examples/cluster.py`` — a 3-shard, replication-2
scatter-gather cluster whose answers are **byte-identical** to one
synchronous :class:`MappingService` — but here each replica is a
``python -m repro.net.server`` subprocess serving its shard artifact behind
a framed binary socket protocol (:mod:`repro.net.codec`: length-prefixed,
sha256-checksummed frames).  The router speaks to each replica through a
:class:`repro.net.RemoteReplica` client, so everything below crosses a real
process + socket boundary: lookups, health, the rolling rollout handshake,
and the failover drill (killing a replica takes its server process down with
it — the router re-scatters onto live sockets).
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.cluster import ClusterRouter
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def canonical(responses) -> str:
    """Everything except timing — the byte-identity comparison key."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


def main() -> None:
    # 1. One cold pipeline run, persisted as the artifact every tier serves.
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    work_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-tcp-"))
    artifact_path = work_dir / "web.artifact.json.gz"
    config = SynthesisConfig(
        min_domains=2,
        min_mapping_size=5,
        artifact_path=str(artifact_path),
        daemon_poll_seconds=0.05,
    )
    pipeline = SynthesisPipeline(config)
    result = pipeline.run(corpus)  # auto-saves to config.artifact_path
    print(f"pipeline run: {len(result.curated)} curated mappings -> {artifact_path.name}")

    # The single synchronous service is the oracle the cluster must match.
    oracle = MappingService.from_artifact(artifact_path)

    # 2. transport="tcp" makes from_artifact spawn one replica server
    #    subprocess per ring slot (it prints a READY line with its ephemeral
    #    port) and wire a RemoteReplica socket client to each.  The router,
    #    the merge, and every assertion below are identical to the inproc
    #    example — transport is invisible to answers.
    router = ClusterRouter.from_artifact(
        artifact_path,
        num_shards=3,
        replication=2,
        shard_dir=work_dir / "shards",
        watch=True,  # each replica subprocess watches its own shard file
        poll_seconds=0.05,
        workers=2,
        transport="tcp",
    )
    health = router.health()
    print(f"cluster up over tcp: {health['num_shards']} shards "
          f"x{health['replication']} replication, "
          f"generations {health['generations']}")
    for replica, process in zip(health["replicas"], router.processes):
        print(f"  replica {replica['index']}: shards {replica['shards']}, "
              f"server pid {process.pid}")

    # 3. Concurrent clients drive mixed batches through the sockets; every
    #    envelope must equal the oracle's, bit for bit.
    batches = [
        ("autofill", [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]),
        ("autojoin", [JoinRequest(left_keys=("California", "Texas"),
                                  right_keys=("TX", "CA"))]),
        ("autocorrect", [CorrectRequest(values=("California", "Washington", "CA"))]),
    ]

    def client(name: str, rounds: int) -> None:
        for index in range(rounds):
            kind, batch = batches[index % len(batches)]
            responses = router.serve(kind, batch)
            assert canonical(responses) == canonical(getattr(oracle, kind)(batch))
            if index == 0 and kind == "autofill":
                print(f"  client {name}: {kind} -> "
                      f"{responses[0].result.filled} (matches oracle)")

    clients = [
        threading.Thread(target=client, args=(f"c{index}", 9)) for index in range(3)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()

    # 4. Failover drill: kill replica 0.  Over tcp this closes the client AND
    #    kills the server process, so the router fails over onto sockets that
    #    are genuinely dead — replication 2 still covers every shard.
    router.kill(0)
    for kind, batch in batches:
        assert canonical(router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )
    health = router.health()
    print(f"replica 0 killed: status {health['status']} "
          f"({'; '.join(health['degraded_reasons'])}) — answers still exact")

    # 5. Rolling rollout across the surviving subprocesses: the router re-cuts
    #    each shard file in turn and waits on the NOTIFY RPC for the replica's
    #    own watcher to report the new generation.  Serving never pauses.
    before = router.health()["generations"]
    time.sleep(0.01)  # distinct mtime for the republished artifact
    pipeline.save_artifact(artifact_path)
    generations = router.rollout(artifact_path, timeout=30)
    print(f"rolling rollout: generations {before} -> {generations}")
    for kind, batch in batches:
        assert canonical(router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )

    # 6. Health now carries the transport layer: per-replica socket counters
    #    plus an aggregate (frames, bytes, reconnects, client-observed rtt).
    health = router.health()
    transport = health["transport"]
    print(f"health: {health['status']}, requests {health['requests']}, "
          f"reroutes {health['reroutes']}, rollouts {health['rollouts']}")
    print(f"transport {transport['kind']}: {transport['frames_sent']} frames out "
          f"/ {transport['frames_received']} in, "
          f"{transport['bytes_sent']}B out / {transport['bytes_received']}B in, "
          f"{transport['reconnects']} reconnect(s), "
          f"rtt p50/p90 {transport['rtt_ms_p50']:.1f}/{transport['rtt_ms_p90']:.1f} ms")

    # close() drains the live clients and reaps every server subprocess; it is
    # idempotent and never raises, even with replica 0 already gone.
    router.close()
    print("cluster closed cleanly, all server processes reaped")


if __name__ == "__main__":
    main()
