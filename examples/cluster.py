"""A sharded multi-daemon serving cluster with exact scatter-gather routing.

Run with::

    python examples/cluster.py

The script runs the synthesis pipeline once and persists the artifact, then
brings up a :class:`repro.cluster.ClusterRouter`: the published artifact is
cut into per-replica shard artifacts on a consistent-hash ring (3 shards,
replication 2 — every mapping lives on two replicas), and one
:class:`SynthesisDaemon` serves each slice.  Autofill / autojoin / autocorrect
batches scatter shard-local lookups across the replicas and the gathered
top-k lists merge into answers **byte-identical** to a single synchronous
:class:`MappingService` over the full artifact — the script asserts exactly
that, then keeps asserting it while a replica is killed mid-stream (the
router fails over onto the surviving copies) and across a rolling artifact
rollout that advances one replica's generation at a time.
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.cluster import ClusterRouter
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def canonical(responses) -> str:
    """Everything except timing — the byte-identity comparison key."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


def main() -> None:
    # 1. One cold pipeline run, persisted as the artifact every tier serves.
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    work_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-"))
    artifact_path = work_dir / "web.artifact.json.gz"
    config = SynthesisConfig(
        min_domains=2,
        min_mapping_size=5,
        artifact_path=str(artifact_path),
        daemon_poll_seconds=0.05,
    )
    pipeline = SynthesisPipeline(config)
    result = pipeline.run(corpus)  # auto-saves to config.artifact_path
    print(f"pipeline run: {len(result.curated)} curated mappings -> {artifact_path.name}")

    # The single synchronous service is the oracle the cluster must match.
    oracle = MappingService.from_artifact(artifact_path)

    # 2. Cut shards + start the cluster: 3 daemon replicas, each serving the
    #    two ring shards it hosts, behind one scatter-gather router.
    router = ClusterRouter.from_artifact(
        artifact_path,
        num_shards=3,
        replication=2,
        shard_dir=work_dir / "shards",
        watch=True,  # each replica watches its own shard file for rollouts
        poll_seconds=0.05,
        workers=2,
    )
    health = router.health()
    print(f"cluster up: {health['num_shards']} shards x{health['replication']} "
          f"replication, generations {health['generations']}")
    for replica in health["replicas"]:
        print(f"  replica {replica['index']}: shards {replica['shards']}")

    # 3. Concurrent clients drive mixed batches; every envelope must equal the
    #    oracle's, bit for bit.
    batches = [
        ("autofill", [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]),
        ("autojoin", [JoinRequest(left_keys=("California", "Texas"),
                                  right_keys=("TX", "CA"))]),
        ("autocorrect", [CorrectRequest(values=("California", "Washington", "CA"))]),
    ]

    def client(name: str, rounds: int) -> None:
        for index in range(rounds):
            kind, batch = batches[index % len(batches)]
            responses = router.serve(kind, batch)
            assert canonical(responses) == canonical(getattr(oracle, kind)(batch))
            if index == 0 and kind == "autofill":
                print(f"  client {name}: {kind} -> "
                      f"{responses[0].result.filled} (matches oracle)")

    clients = [
        threading.Thread(target=client, args=(f"c{index}", 9)) for index in range(3)
    ]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()

    # 4. Failover drill: kill one replica mid-stream.  Replication 2 means the
    #    surviving replicas still cover every shard — answers do not change.
    router.kill(0)
    for kind, batch in batches:
        assert canonical(router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )
    health = router.health()
    print(f"replica 0 killed: status {health['status']} "
          f"({'; '.join(health['degraded_reasons'])}) — answers still exact")

    # 5. Rolling rollout: republish the artifact; the router re-cuts each
    #    surviving replica's shard file in turn and waits for its generation
    #    tag to advance before moving on.  Serving never pauses.
    before = [r.daemon.generation.number for r in router.replicas]
    time.sleep(0.01)  # distinct mtime for the republished artifact
    pipeline.save_artifact(artifact_path)
    generations = router.rollout(artifact_path, timeout=30)
    print(f"rolling rollout: generations {before} -> {generations}")
    for kind, batch in batches:
        assert canonical(router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )

    # 6. One JSON-able health snapshot aggregates every replica's daemon.
    health = router.health()
    served = {r["index"]: r["served"] for r in health["replicas"]}
    print(f"health: {health['status']}, requests {health['requests']}, "
          f"reroutes {health['reroutes']}, rollouts {health['rollouts']}, "
          f"scatter calls per replica {served}")

    router.close()
    print("cluster closed cleanly")


if __name__ == "__main__":
    main()
