"""Live streaming updates: edit a served corpus and watch answers change in ms.

Run with::

    python examples/updates.py

The script builds a corpus, starts a live serving daemon over it, then streams
row-level edits through the full update path — durable delta log, incremental
graph repair, journal sections on the artifact, in-place daemon patch — and
shows each edit becoming servable in milliseconds where a cold rebuild takes
seconds.  It finishes with a compaction (folding the journal back into the
base artifact) and a simulated crash recovery replaying the log.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.applications import FillRequest, MappingService
from repro.core import SynthesisConfig
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator
from repro.serving import SynthesisDaemon
from repro.store.artifact import save_artifact
from repro.updates import (
    DeltaLog,
    IncrementalEngine,
    TableDelta,
    UpdateStream,
    read_delta_sections,
)


def main() -> None:
    # 1. Build the corpus and bring the update engine up (one cold synthesis —
    #    the last one this script will ever need).
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=7)
    corpus = WebCorpusGenerator(spec).generate()
    # The incremental engine needs per-table scoring (the corpus-global PMI
    # filter would let one row reweight every candidate), and a small
    # compaction threshold makes the auto-compact visible below.
    config = SynthesisConfig(
        min_domains=2,
        min_mapping_size=5,
        use_pmi_filter=False,
        delta_compact_threshold=8,
    )

    start = time.perf_counter()
    engine = IncrementalEngine(corpus, config)
    cold_seconds = time.perf_counter() - start
    print(f"engine up: {len(engine.pool)} served mappings from "
          f"{len(corpus)} tables in {cold_seconds:.2f}s (cold synthesis)")

    # 2. Persist the artifact and serve it live (watch=False: the update
    #    stream patches the daemon directly; a file watcher would swap the
    #    base artifact back in and discard live deltas).
    workdir = Path(tempfile.mkdtemp(prefix="repro-updates-"))
    artifact_path = save_artifact(engine.artifact(), workdir / "served.artifact")
    daemon = SynthesisDaemon(
        MappingService.from_artifact_object(engine.artifact()),
        workers=1,
        source=str(artifact_path),
    )
    stream = UpdateStream(
        engine,
        DeltaLog(workdir / "served.deltalog"),
        artifact_path=artifact_path,
        daemon=daemon,
    )

    # 3. Stream edits: every apply is durable (fsync'd log) before it is
    #    servable (in-place daemon patch), and each lands in milliseconds.
    print()
    edits = []
    for index, table in enumerate(corpus):
        if index >= 5:
            break
        # Append a brand-new row (a fresh key), the shape of a live edit that
        # must show up in served answers: new pair in, mapping republished.
        row = list(next(iter(table.rows())))
        row[0] = f"Newland {index}"
        row[-1] = f"NL{index}"
        edits.append(TableDelta(table_id=table.table_id, upserts=(tuple(row),)))
    for delta in edits:
        start = time.perf_counter()
        patch = stream.apply(delta)
        millis = (time.perf_counter() - start) * 1000
        print(f"delta seq {stream.last_seq} -> {table_label(delta)}: "
              f"{patch.change_count} pool change(s) servable in {millis:.1f} ms")

    health = daemon.health()
    print(f"daemon: generation {health['generation']}, "
          f"{health['deltas_applied']} deltas applied, "
          f"journal {len(read_delta_sections(artifact_path))} section(s)")

    # 4. The served answers reflect the edits immediately.
    ticket = daemon.submit("autofill", [FillRequest(keys=("California", "Texas"))])
    response = ticket.result(30).responses[0]
    filled = response.result.filled if response.ok else {}
    print(f"live autofill: {filled}")

    # 5. Compact: fold the journal into the base artifact and reset the log.
    stream.compact()
    print(f"compacted: journal {len(read_delta_sections(artifact_path))} sections, "
          f"log base_seq {stream.log.base_seq} (sequence numbers keep counting)")

    # 6. Crash recovery: a fresh process replays base corpus + durable log.
    compacted_corpus = engine.corpus  # the corpus as of the log's base seq
    stream.apply(edits[0])  # one post-compaction delta to recover
    recovered = UpdateStream.recover(
        compacted_corpus, workdir / "served.deltalog", config
    )
    print(f"recovered stream at seq {recovered.last_seq} with "
          f"{len(recovered.engine.pool)} served mappings")
    assert recovered.engine.pool == stream.engine.pool

    daemon.close()


def table_label(delta: TableDelta) -> str:
    return delta.table_id


if __name__ == "__main__":
    main()
