"""Auto-correction and auto-fill over a user spreadsheet (paper Tables 3 and 4).

Run with::

    python examples/spreadsheet_cleaning.py

The script synthesizes mappings from a web-like corpus, indexes them, and then

1. detects and fixes a user column that mixes full state names with abbreviations
   (the paper's auto-correction scenario, Table 3), and
2. fills a ``State`` column from a ``City`` column given a single example value
   (the paper's auto-fill scenario, Table 4).
"""

from __future__ import annotations

from repro.applications import AutoCorrector, AutoFiller, MappingIndex
from repro.core import SynthesisConfig, SynthesisPipeline
from repro.corpus import CorpusGenerationSpec, WebCorpusGenerator


def build_index() -> MappingIndex:
    """Synthesize mappings once and wrap them in a containment index."""
    spec = CorpusGenerationSpec(tables_per_relation=5, max_rows=20, seed=11)
    corpus = WebCorpusGenerator(spec).generate()
    config = SynthesisConfig(min_domains=2, min_mapping_size=5)
    result = SynthesisPipeline(config).run(corpus)
    print(f"indexed {len(result.curated)} curated mappings "
          f"(from {len(result.mappings)} synthesized)")
    return MappingIndex(result.curated or result.mappings)


def demo_autocorrect(index: MappingIndex) -> None:
    """Paper Table 3: a residence-state column with inconsistent representations."""
    print("\n=== auto-correction ===")
    employees = ["Bren, Steven", "Morris, Peggy", "Raynal, David", "Crispin, Neal",
                 "Wells, William"]
    states = ["California", "Washington", "Oregon", "CA", "WA"]

    corrector = AutoCorrector(index)
    suggestions = corrector.suggest(states)
    if not suggestions:
        print("no inconsistencies detected")
        return
    print("detected mixed representations in the 'Residence State' column:")
    for suggestion in suggestions:
        print(
            f"  row {suggestion.row_index} ({employees[suggestion.row_index]}): "
            f"{suggestion.original!r} -> {suggestion.suggestion!r}"
        )
    print("corrected column:", corrector.apply(states))


def demo_autofill(index: MappingIndex) -> None:
    """Paper Table 4: fill state names for a list of cities from one example."""
    print("\n=== auto-fill ===")
    cities = ["San Francisco", "Seattle", "Los Angeles", "Houston", "Denver"]
    filler = AutoFiller(index)
    result = filler.fill(cities, examples={0: "California"})
    print(f"selected mapping: {result.mapping_id} (fill rate {result.fill_rate:.0%})")
    for row, city in enumerate(cities):
        value = result.filled.get(row, "???")
        marker = "(example)" if row == 0 else ""
        print(f"  {city:15s} -> {value} {marker}")


def main() -> None:
    index = build_index()
    demo_autocorrect(index)
    demo_autofill(index)


if __name__ == "__main__":
    main()
