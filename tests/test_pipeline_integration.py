"""End-to-end integration tests: corpus -> pipeline -> mappings -> applications."""

from __future__ import annotations

import pytest

from repro.applications.autocorrect import AutoCorrector
from repro.applications.autofill import AutoFiller
from repro.applications.index import MappingIndex
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.evaluation.benchmark import build_web_benchmark
from repro.evaluation.metrics import best_mapping_score


@pytest.fixture(scope="module")
def pipeline_result(request):
    corpus = request.getfixturevalue("small_web_corpus")
    config = SynthesisConfig(min_domains=2, min_mapping_size=5)
    return SynthesisPipeline(config).run(corpus), corpus


class TestPipeline:
    def test_produces_candidates_and_mappings(self, pipeline_result):
        result, _ = pipeline_result
        assert result.candidates
        assert result.mappings
        assert result.curated
        assert len(result.curated) <= len(result.mappings)

    def test_extraction_stats_recorded(self, pipeline_result):
        result, corpus = pipeline_result
        assert result.extraction_stats["num_tables"] == len(corpus)
        assert result.extraction_stats["candidates"] == len(result.candidates)

    def test_timings_cover_all_steps(self, pipeline_result):
        result, _ = pipeline_result
        assert {"extraction", "synthesis", "curation"} <= set(result.timings)
        assert all(value >= 0 for value in result.timings.values())

    def test_synthesis_merges_tables(self, pipeline_result):
        """At least some synthesized mappings must union multiple raw tables."""
        result, _ = pipeline_result
        merged = [mapping for mapping in result.mappings if mapping.num_source_tables > 1]
        assert merged
        largest = max(result.mappings, key=lambda mapping: mapping.num_source_tables)
        assert largest.num_source_tables >= 5

    def test_curated_mappings_are_popular(self, pipeline_result):
        result, _ = pipeline_result
        assert all(mapping.popularity >= 2 for mapping in result.curated)
        assert all(len(mapping) >= 5 for mapping in result.curated)

    def test_top_mappings_sorted_by_popularity(self, pipeline_result):
        result, _ = pipeline_result
        top = result.top_mappings(5)
        popularity = [mapping.popularity for mapping in top]
        assert popularity == sorted(popularity, reverse=True)

    def test_top_mappings_tie_order_is_deterministic(self):
        """Mappings with identical stats rank by mapping_id, not list order."""
        from repro.core.binary_table import ValuePair
        from repro.core.mapping import MappingRelationship
        from repro.core.pipeline import PipelineResult
        from repro.synthesis.curation import popularity_rank

        def tied(mapping_id: str) -> MappingRelationship:
            return MappingRelationship(
                mapping_id=mapping_id,
                pairs=[ValuePair("a", "b"), ValuePair("c", "d")],
                source_tables=["t1", "t2"],
                domains={"x.example", "y.example"},
            )

        shuffled = [tied("mapping-00002"), tied("mapping-00000"), tied("mapping-00001")]
        expected = ["mapping-00000", "mapping-00001", "mapping-00002"]

        result = PipelineResult(
            mappings=list(shuffled), curated=[], candidates=[], extraction_stats={}
        )
        assert [m.mapping_id for m in result.top_mappings(3)] == expected
        assert [m.mapping_id for m in popularity_rank(shuffled)] == expected
        # Reordering the input pool must not change the ranking.
        result_reversed = PipelineResult(
            mappings=list(reversed(shuffled)),
            curated=[],
            candidates=[],
            extraction_stats={},
        )
        assert [m.mapping_id for m in result_reversed.top_mappings(3)] == expected

    def test_top_mappings_primary_key_still_wins_over_id(self):
        from repro.core.binary_table import ValuePair
        from repro.core.mapping import MappingRelationship
        from repro.core.pipeline import PipelineResult

        popular = MappingRelationship(
            mapping_id="mapping-zzzzz",
            pairs=[ValuePair("a", "b")],
            domains={"x", "y", "z"},
        )
        unpopular = MappingRelationship(
            mapping_id="mapping-00000", pairs=[ValuePair("a", "b")], domains={"x"}
        )
        result = PipelineResult(
            mappings=[unpopular, popular], curated=[], candidates=[], extraction_stats={}
        )
        assert [m.mapping_id for m in result.top_mappings(2)] == [
            "mapping-zzzzz",
            "mapping-00000",
        ]

    def test_quality_against_benchmark(self, pipeline_result):
        """The pipeline must recover well-represented relations with decent F-score."""
        result, corpus = pipeline_result
        cases = {case.name: case for case in build_web_benchmark(corpus)}
        for name in ("state_abbrev", "month_abbrev"):
            score = best_mapping_score(result.mappings, cases[name].truth)
            assert score.f_score > 0.6, name

    def test_synthesis_beats_best_single_table(self, pipeline_result):
        """Coverage argument of the paper: synthesized mappings beat raw tables."""
        result, corpus = pipeline_result
        cases = {case.name: case for case in build_web_benchmark(corpus)}
        case = cases["state_abbrev"]
        from repro.core.mapping import MappingRelationship

        single_tables = [
            MappingRelationship.from_tables(f"single-{i}", [candidate])
            for i, candidate in enumerate(result.candidates)
        ]
        single_best = best_mapping_score(single_tables, case.truth)
        synthesized_best = best_mapping_score(result.mappings, case.truth)
        assert synthesized_best.recall >= single_best.recall

    def test_expansion_step_runs(self, small_web_corpus):
        from repro.core.binary_table import BinaryTable

        relation = get_seed_relation("state_abbrev")
        trusted = BinaryTable.from_rows(
            "trusted-states", list(relation.pairs), domain="data.gov"
        )
        config = SynthesisConfig(min_domains=2, expand_tables=True)
        result = SynthesisPipeline(config, trusted_sources=[trusted]).run(small_web_corpus)
        assert "expansion" in result.timings


class TestPipelineToApplications:
    def test_autofill_from_synthesized_mappings(self, pipeline_result):
        result, _ = pipeline_result
        index = MappingIndex(result.curated or result.mappings)
        filler = AutoFiller(index)
        fill = filler.fill(["Alabama", "Alaska", "California", "Texas"])
        assert fill.mapping_id is not None
        filled_values = set(fill.filled.values())
        assert filled_values & {"AL", "AK", "CA", "TX"}

    def test_autocorrect_from_synthesized_mappings(self, pipeline_result):
        result, _ = pipeline_result
        index = MappingIndex(result.curated or result.mappings)
        corrector = AutoCorrector(index, min_containment=0.5)
        column = ["Alabama", "Alaska", "Arizona", "California", "CA", "TX"]
        mapping = corrector.detect(column)
        assert mapping is not None
