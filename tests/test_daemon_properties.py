"""Property tests: daemon answers ≡ synchronous MappingService answers.

Hypothesis generates arbitrary programs of :class:`FillRequest` /
:class:`JoinRequest` / :class:`CorrectRequest` batches — valid, junk-valued,
and malformed (out-of-range example rows) alike — and pushes them through a
live multi-worker :class:`SynthesisDaemon`, interleaved across client threads
and across identical-artifact hot reloads.  Every batch's answers must be
byte-identical (same ``repr``) to a direct synchronous
:class:`MappingService` call on the same artifact.
"""

from __future__ import annotations

import string
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.serving import SynthesisDaemon

pytestmark = pytest.mark.daemon

# ---------------------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------------------
_SEED_VALUES = tuple(
    value
    for relation in ("state_abbrev", "country_iso3")
    for left, right in get_seed_relation(relation).pairs
    for value in (left, right)
)

values = st.one_of(
    st.sampled_from(_SEED_VALUES),
    st.text(alphabet=string.ascii_letters + " -.", min_size=0, max_size=10),
)

fill_requests = st.builds(
    FillRequest,
    keys=st.lists(values, max_size=6).map(tuple),
    # Row indices are drawn wider than the key range on purpose: out-of-range
    # examples must error identically through the daemon and the sync service.
    examples=st.none() | st.dictionaries(st.integers(-1, 8), values, max_size=2),
)
join_requests = st.builds(
    JoinRequest,
    left_keys=st.lists(values, max_size=5).map(tuple),
    right_keys=st.lists(values, max_size=5).map(tuple),
)
correct_requests = st.builds(
    CorrectRequest, values=st.lists(values, max_size=8).map(tuple)
)

envelopes = st.one_of(
    st.tuples(st.just("autofill"), st.lists(fill_requests, max_size=3)),
    st.tuples(st.just("autojoin"), st.lists(join_requests, max_size=3)),
    st.tuples(st.just("autocorrect"), st.lists(correct_requests, max_size=3)),
)
programs = st.lists(envelopes, min_size=1, max_size=8)


def canonical(responses) -> str:
    """Byte-comparable form of a batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


# ---------------------------------------------------------------------------------------
# Fixtures: one artifact, one daemon, one sync reference for the whole module
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_artifact_path(store_corpus, tmp_path_factory):
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("daemon-props") / "a.gz")


@pytest.fixture(scope="module")
def reference_service(served_artifact_path) -> MappingService:
    return MappingService.from_artifact(served_artifact_path)


@pytest.fixture(scope="module")
def daemon(served_artifact_path):
    daemon = SynthesisDaemon.from_artifact(
        served_artifact_path, watch=False, workers=3, queue_size=128
    )
    yield daemon
    daemon.close()


# ---------------------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------------------
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs)
def test_daemon_program_equals_synchronous_calls(program, daemon, reference_service):
    """Any submission order returns the sync service's exact answers."""
    tickets = [daemon.submit(kind, batch, block=True) for kind, batch in program]
    for (kind, batch), ticket in zip(program, tickets):
        result = ticket.result(timeout=30)
        expected = getattr(reference_service, kind)(batch)
        assert canonical(result.responses) == canonical(expected)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs)
def test_threaded_interleavings_equal_synchronous_calls(
    program, daemon, reference_service
):
    """Submissions racing from many client threads change nothing."""
    with ThreadPoolExecutor(max_workers=4) as clients:
        handles = [
            clients.submit(daemon.submit, kind, batch, block=True)
            for kind, batch in program
        ]
        tickets = [handle.result(timeout=30) for handle in handles]
    for (kind, batch), ticket in zip(program, tickets):
        result = ticket.result(timeout=30)
        expected = getattr(reference_service, kind)(batch)
        assert canonical(result.responses) == canonical(expected)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs, swap_after=st.integers(0, 7))
def test_hot_reload_of_same_artifact_is_invisible(
    program, swap_after, daemon, served_artifact_path, reference_service
):
    """Reloading the same artifact mid-program never changes any answer.

    The generation number advances, but answers stay byte-identical — the
    serving contract across `refresh_artifact` publishes that do not change
    the mappings.
    """
    tickets = []
    for position, (kind, batch) in enumerate(program):
        if position == swap_after % max(1, len(program)):
            daemon.reload(
                MappingService.from_artifact(served_artifact_path),
                source="property-swap",
            )
        tickets.append(daemon.submit(kind, batch, block=True))
    for (kind, batch), ticket in zip(program, tickets):
        result = ticket.result(timeout=30)
        expected = getattr(reference_service, kind)(batch)
        assert canonical(result.responses) == canonical(expected)
