"""Corpus-building helpers shared by the artifact-store and serving tests.

Kept outside conftest.py because test modules import these directly, and the
bare module name ``conftest`` is ambiguous when the benchmark harness (which
has its own conftest.py) is collected in the same pytest run.
"""

from __future__ import annotations

from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import get_seed_relation
from repro.corpus.table import Table

__all__ = ["make_fragment_corpus", "seed_fragments"]


def make_fragment_corpus(
    fragments: dict[str, list[tuple[str, str]]],
    headers: tuple[str, str] = ("name", "code"),
    name: str = "fragments",
) -> TableCorpus:
    """Build a corpus of small two-column tables from explicit row fragments.

    ``fragments`` maps a table id to its rows; the domain is derived from the
    table id so per-domain popularity statistics vary across fragments.  Used by
    the store/serving tests, which need corpora small enough to run the full
    pipeline several times per test.
    """
    tables = [
        Table.from_rows(
            table_id=table_id,
            header=list(headers),
            rows=[list(row) for row in rows],
            domain=f"{table_id.split('-')[0]}.example",
        )
        for table_id, rows in fragments.items()
    ]
    return TableCorpus(tables, name=name)


def seed_fragments(
    relation_name: str, prefix: str, chunk: int = 6, chunks: int = 3
) -> dict[str, list[tuple[str, str]]]:
    """Slice a seed relation into overlapping fragments for make_fragment_corpus."""
    pairs = list(get_seed_relation(relation_name).pairs)
    fragments: dict[str, list[tuple[str, str]]] = {}
    for index in range(chunks):
        # Overlapping slices so the fragments share enough value pairs to block.
        start = index * (chunk // 2)
        rows = pairs[start : start + chunk]
        if len(rows) >= 4:
            fragments[f"{prefix}{index}-{relation_name}"] = rows
    return fragments
