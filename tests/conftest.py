"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.corpus.generator import CorpusGenerationSpec, WebCorpusGenerator
from repro.corpus.noise import NoiseModel
from repro.corpus.table import Table


@pytest.fixture(scope="session")
def small_web_corpus() -> TableCorpus:
    """A small deterministic web-like corpus shared across tests (read-only)."""
    spec = CorpusGenerationSpec.small(seed=42)
    return WebCorpusGenerator(spec).generate()


@pytest.fixture(scope="session")
def clean_web_corpus() -> TableCorpus:
    """A small corpus with all noise disabled (values are exactly the seeds)."""
    spec = CorpusGenerationSpec(
        tables_per_relation=3,
        max_rows=15,
        spurious_tables=1,
        formatting_tables=1,
        mixed_tables_per_group=1,
        noise=NoiseModel.clean(seed=1),
        seed=1,
    )
    return WebCorpusGenerator(spec).generate()


@pytest.fixture()
def default_config() -> SynthesisConfig:
    """The default synthesis configuration."""
    return SynthesisConfig()


@pytest.fixture()
def simple_table() -> Table:
    """A small hand-written table with a clean FD between the first two columns."""
    return Table.from_rows(
        table_id="t-simple",
        header=["Country", "Code", "Population"],
        rows=[
            ("United States", "USA", "331000000"),
            ("Canada", "CAN", "38000000"),
            ("Mexico", "MEX", "126000000"),
            ("Brazil", "BRA", "213000000"),
            ("Japan", "JPN", "125800000"),
        ],
        domain="example.org",
    )


def make_binary(table_id: str, rows: list[tuple[str, str]], **kwargs) -> BinaryTable:
    """Convenience constructor used throughout the tests."""
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


@pytest.fixture(scope="session")
def store_corpus() -> TableCorpus:
    """A small deterministic corpus used by the artifact-store tests."""
    from store_helpers import make_fragment_corpus, seed_fragments

    fragments: dict[str, list[tuple[str, str]]] = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    return make_fragment_corpus(fragments, name="store-corpus")


@pytest.fixture()
def store_config() -> SynthesisConfig:
    """Pipeline config for store tests: tiny thresholds, no corpus-global PMI.

    The PMI filter is corpus-global, which would make incremental refresh only
    approximately equal to a cold run; disabling it keeps the equality exact
    (see repro.store.incremental's module docstring).
    """
    return SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )


@pytest.fixture()
def iso_tables() -> list[BinaryTable]:
    """Three candidate tables mirroring the paper's Table 8 (IOC vs ISO codes)."""
    ioc_1 = make_binary(
        "B1",
        [
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("American Samoa", "ASA"),
            ("South Korea", "KOR"),
            ("US Virgin Islands", "ISV"),
        ],
        domain="ioc1.example",
    )
    ioc_2 = make_binary(
        "B2",
        [
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "ALG"),
            ("American Samoa (US)", "ASA"),
            ("Korea, Republic of (South)", "KOR"),
            ("United States Virgin Islands", "ISV"),
        ],
        domain="ioc2.example",
    )
    iso = make_binary(
        "B3",
        [
            ("Afghanistan", "AFG"),
            ("Albania", "ALB"),
            ("Algeria", "DZA"),
            ("American Samoa", "ASM"),
            ("South Korea", "KOR"),
            ("US Virgin Islands", "VIR"),
        ],
        domain="iso.example",
    )
    return [ioc_1, ioc_2, iso]
