"""Tests for greedy partitioning (Algorithm 3), the exact solver, and the LP rounding."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph, GraphBuilder
from repro.graph.exact import exact_partition, is_feasible_partition, partition_objective
from repro.graph.lp import lp_relaxation_partition
from repro.graph.partition import GreedyPartitioner


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


def paper_figure3_graph() -> CompatibilityGraph:
    """The 5-vertex example of Figure 3: two ISO tables, three IOC tables."""
    tables = [make_binary(f"B{i}", [(f"k{i}", f"v{i}")]) for i in range(1, 6)]
    graph = CompatibilityGraph(tables=tables)
    # Vertices 0,1 are ISO; 2,3,4 are IOC (0-indexed).
    graph.add_positive(0, 1, 0.5)
    graph.add_positive(1, 2, 0.67)
    graph.add_positive(2, 3, 0.6)
    graph.add_positive(2, 4, 0.8)
    graph.add_positive(3, 4, 0.7)
    graph.add_negative(1, 3, -0.7)
    graph.add_negative(0, 2, -0.33)
    return graph


def random_graph(seed: int, num_vertices: int = 7) -> CompatibilityGraph:
    rng = random.Random(seed)
    tables = [make_binary(f"t{i}", [(f"k{i}", f"v{i}")]) for i in range(num_vertices)]
    graph = CompatibilityGraph(tables=tables)
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            roll = rng.random()
            if roll < 0.35:
                graph.add_positive(i, j, round(rng.uniform(0.1, 1.0), 2))
            elif roll < 0.5:
                graph.add_negative(i, j, round(-rng.uniform(0.1, 1.0), 2))
    return graph


class TestGreedyPartitioner:
    def test_paper_figure3_example(self):
        """Example 12/16: the best partitioning separates {B1,B2} from {B3,B4,B5}."""
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = GreedyPartitioner(config).partition(graph)
        groups = {frozenset(partition.vertices) for partition in result.partitions}
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3, 4}) in groups
        assert result.objective == pytest.approx(0.5 + 0.6 + 0.8 + 0.7)

    def test_negative_constraint_respected(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = GreedyPartitioner(config).partition(graph)
        assert is_feasible_partition(graph, result.partitions, config)

    def test_without_negative_edges_everything_merges(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(use_negative_edges=False)
        result = GreedyPartitioner(config).partition(graph)
        sizes = sorted(len(partition) for partition in result.partitions)
        assert sizes == [5]

    def test_singletons_for_graph_without_edges(self):
        tables = [make_binary(f"t{i}", [(f"k{i}", "v")]) for i in range(3)]
        graph = CompatibilityGraph(tables=tables)
        result = GreedyPartitioner().partition(graph)
        assert len(result.partitions) == 3
        assert all(len(partition) == 1 for partition in result.partitions)

    def test_assignment_covers_all_vertices(self):
        graph = paper_figure3_graph()
        result = GreedyPartitioner().partition(graph)
        assignment = result.assignment()
        assert set(assignment) == set(range(graph.num_vertices))

    def test_non_singleton_helper(self):
        graph = paper_figure3_graph()
        result = GreedyPartitioner().partition(graph)
        assert all(len(partition) > 1 for partition in result.non_singleton())

    def test_merges_counted(self):
        graph = paper_figure3_graph()
        result = GreedyPartitioner().partition(graph)
        assert result.merges == graph.num_vertices - len(result.partitions)

    @given(st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_always_feasible_and_disjoint(self, seed):
        graph = random_graph(seed)
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = GreedyPartitioner(config).partition(graph)
        assert is_feasible_partition(graph, result.partitions, config)

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_greedy_close_to_exact_on_small_graphs(self, seed):
        """The greedy heuristic should reach a large fraction of the exact optimum."""
        graph = random_graph(seed, num_vertices=6)
        config = SynthesisConfig(conflict_threshold=-0.2)
        greedy = GreedyPartitioner(config).partition(graph)
        exact = exact_partition(graph, config)
        assert greedy.objective <= exact.objective + 1e-9
        if exact.objective > 0:
            assert greedy.objective >= 0.5 * exact.objective


class TestExactPartition:
    def test_figure3_optimum(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = exact_partition(graph, config)
        groups = {frozenset(partition.vertices) for partition in result.partitions}
        assert frozenset({0, 1}) in groups
        assert frozenset({2, 3, 4}) in groups
        assert result.objective == pytest.approx(2.6)

    def test_rejects_large_graphs(self):
        tables = [make_binary(f"t{i}", [("k", "v")]) for i in range(20)]
        graph = CompatibilityGraph(tables=tables)
        with pytest.raises(ValueError):
            exact_partition(graph)

    def test_objective_helper(self):
        graph = paper_figure3_graph()
        assert partition_objective(graph, [frozenset({0, 1}), frozenset({2, 3, 4})]) == (
            pytest.approx(2.6)
        )
        assert partition_objective(graph, [frozenset({i}) for i in range(5)]) == 0.0

    def test_feasibility_checker(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        assert is_feasible_partition(graph, [frozenset({0, 1}), frozenset({2, 3, 4})], config)
        # Putting vertices 1 and 3 together violates the -0.7 negative edge.
        assert not is_feasible_partition(
            graph, [frozenset({1, 3}), frozenset({0}), frozenset({2}), frozenset({4})], config
        )
        # Overlapping partitions are rejected.
        assert not is_feasible_partition(
            graph, [frozenset({0, 1}), frozenset({1, 2, 3, 4})], config
        )
        # Missing vertices are rejected.
        assert not is_feasible_partition(graph, [frozenset({0, 1})], config)


class TestLpRelaxation:
    def test_figure3_lp_solution_is_feasible(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = lp_relaxation_partition(graph, config)
        assert is_feasible_partition(graph, result.partitions, config)

    def test_lp_respects_hard_negative_edges(self):
        graph = paper_figure3_graph()
        config = SynthesisConfig(conflict_threshold=-0.2)
        result = lp_relaxation_partition(graph, config)
        assignment = result.assignment()
        assert assignment[1] != assignment[3]
        assert assignment[0] != assignment[2]

    def test_rejects_large_graphs(self):
        tables = [make_binary(f"t{i}", [("k", "v")]) for i in range(60)]
        graph = CompatibilityGraph(tables=tables)
        with pytest.raises(ValueError):
            lp_relaxation_partition(graph)

    def test_empty_graph(self):
        graph = CompatibilityGraph(tables=[])
        result = lp_relaxation_partition(graph)
        assert result.partitions == []


class TestEndToEndPartitioning:
    def test_iso_ioc_tables_not_merged(self, iso_tables):
        """The ISO table must not land in the same partition as the IOC tables."""
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        graph = GraphBuilder(config).build(iso_tables)
        result = GreedyPartitioner(config).partition(graph)
        assignment = result.assignment()
        assert assignment[0] == assignment[1]
        assert assignment[0] != assignment[2]
