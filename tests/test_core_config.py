"""Tests for SynthesisConfig validation and helpers."""

from __future__ import annotations

import pytest

from repro.core.config import SynthesisConfig


class TestSynthesisConfigValidation:
    def test_defaults_are_valid(self):
        config = SynthesisConfig()
        assert 0.0 < config.fd_theta <= 1.0
        assert config.conflict_threshold <= 0.0

    def test_invalid_fd_theta(self):
        with pytest.raises(ValueError):
            SynthesisConfig(fd_theta=0.0)
        with pytest.raises(ValueError):
            SynthesisConfig(fd_theta=1.5)

    def test_invalid_min_rows(self):
        with pytest.raises(ValueError):
            SynthesisConfig(min_rows=0)

    def test_invalid_edge_threshold(self):
        with pytest.raises(ValueError):
            SynthesisConfig(edge_threshold=1.5)
        with pytest.raises(ValueError):
            SynthesisConfig(edge_threshold=-0.1)

    def test_positive_conflict_threshold_rejected(self):
        with pytest.raises(ValueError):
            SynthesisConfig(conflict_threshold=0.3)

    def test_invalid_overlap_threshold(self):
        with pytest.raises(ValueError):
            SynthesisConfig(overlap_threshold=0)

    def test_invalid_conflict_strategy(self):
        with pytest.raises(ValueError):
            SynthesisConfig(conflict_strategy="delete-everything")

    def test_invalid_edit_fraction(self):
        with pytest.raises(ValueError):
            SynthesisConfig(edit_fraction=-0.2)

    def test_invalid_min_domains(self):
        with pytest.raises(ValueError):
            SynthesisConfig(min_domains=0)


class TestSynthesisConfigHelpers:
    def test_with_overrides_returns_new_object(self):
        config = SynthesisConfig()
        changed = config.with_overrides(fd_theta=0.9)
        assert changed.fd_theta == 0.9
        assert config.fd_theta == 0.95
        assert changed is not config

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            SynthesisConfig().with_overrides(fd_theta=2.0)

    def test_paper_defaults(self):
        config = SynthesisConfig.paper_defaults()
        assert config.fd_theta == 0.95
        assert config.use_negative_edges

    def test_positive_only(self):
        config = SynthesisConfig.positive_only()
        assert not config.use_negative_edges

    def test_frozen(self):
        config = SynthesisConfig()
        with pytest.raises(AttributeError):
            config.fd_theta = 0.5  # type: ignore[misc]
