"""Golden schema tests for the health endpoints.

Operational dashboards and alert rules key on the exact field names that
``SynthesisDaemon.health()``, ``ArtifactWatcher.health()``, and
``ClusterRouter.health()`` emit.  These tests freeze those key sets: adding a
field is a deliberate one-line update here; renaming or dropping one fails
loudly instead of silently blinding a monitor.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterRouter
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.serving import SynthesisDaemon

pytestmark = pytest.mark.cluster

DAEMON_HEALTH_KEYS = {
    "status",
    "degraded_reasons",
    "generation",
    "source",
    "fingerprint",
    "queue_depth",
    "queue_size",
    "workers",
    "breaker",
    "requests",
    "errors",
    "shed",
    "backend",
    "watcher",
    "deltas_applied",
    "last_delta_seq",
    "update_lag",
}

WATCHER_HEALTH_KEYS = {
    "path",
    "reloads",
    "skipped",
    "callback_errors",
    "consecutive_failures",
    "last_swap_ok",
    "last_error",
    "pinned",
    "retry_in_seconds",
}

ROUTER_HEALTH_KEYS = {
    "status",
    "degraded_reasons",
    "num_shards",
    "replication",
    "generations",
    "replicas",
    "requests",
    "errors",
    "reroutes",
    "rollouts",
    "deltas_applied",
    "last_delta_seq",
    "update_lag",
}

ROUTER_REPLICA_KEYS = {
    "index",
    "shards",
    "closed",
    "served",
    "failed",
    "breaker",
    "daemon",
}


@pytest.fixture(scope="module")
def artifact_path(store_corpus, tmp_path_factory):
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("health") / "a.gz")


def test_daemon_and_watcher_health_schema(artifact_path):
    with SynthesisDaemon.from_artifact(artifact_path, watch=True) as daemon:
        health = daemon.health()
        assert set(health) == DAEMON_HEALTH_KEYS
        assert set(health["watcher"]) == WATCHER_HEALTH_KEYS
        assert set(daemon.watcher.health()) == WATCHER_HEALTH_KEYS


def test_router_health_schema(artifact_path, tmp_path):
    with ClusterRouter.from_artifact(
        artifact_path,
        num_shards=2,
        replication=2,
        shard_dir=tmp_path / "shards",
        watch=False,
    ) as router:
        health = router.health()
        assert set(health) == ROUTER_HEALTH_KEYS
        assert len(health["replicas"]) == 2
        for replica in health["replicas"]:
            assert set(replica) == ROUTER_REPLICA_KEYS
            # Each embedded daemon snapshot keeps the daemon schema too.
            assert set(replica["daemon"]) == DAEMON_HEALTH_KEYS
