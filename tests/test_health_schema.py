"""Golden schema tests for the health endpoints.

Operational dashboards and alert rules key on the exact field names that
``SynthesisDaemon.health()``, ``ArtifactWatcher.health()``,
``ClusterRouter.health()``, ``ReplicaServer.health()``, and the transport
snapshots emit.  These tests freeze those key sets: adding a field is a
deliberate one-line update here; renaming or dropping one fails loudly
instead of silently blinding a monitor.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterRouter
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.net import TRANSPORT_HEALTH_KEYS
from repro.net.client import RemoteReplica
from repro.net.server import serve_shard
from repro.serving import SynthesisDaemon

pytestmark = pytest.mark.cluster

DAEMON_HEALTH_KEYS = {
    "status",
    "degraded_reasons",
    "generation",
    "source",
    "fingerprint",
    "queue_depth",
    "queue_size",
    "workers",
    "breaker",
    "requests",
    "errors",
    "shed",
    "backend",
    "watcher",
    "transport",
    "deltas_applied",
    "last_delta_seq",
    "update_lag",
}

TRANSPORT_KEYS = {
    "kind",
    "connections",
    "frames_sent",
    "frames_received",
    "bytes_sent",
    "bytes_received",
    "reconnects",
    "rtt_ms_p50",
    "rtt_ms_p90",
}

REPLICA_SERVER_HEALTH_KEYS = {
    "status",
    "host",
    "port",
    "draining",
    "connections",
    "transport",
    "daemon",
}

WATCHER_HEALTH_KEYS = {
    "path",
    "reloads",
    "skipped",
    "callback_errors",
    "consecutive_failures",
    "last_swap_ok",
    "last_error",
    "pinned",
    "retry_in_seconds",
}

ROUTER_HEALTH_KEYS = {
    "status",
    "degraded_reasons",
    "transport",
    "num_shards",
    "replication",
    "generations",
    "replicas",
    "requests",
    "errors",
    "reroutes",
    "rollouts",
    "deltas_applied",
    "last_delta_seq",
    "update_lag",
}

ROUTER_REPLICA_KEYS = {
    "index",
    "shards",
    "closed",
    "served",
    "failed",
    "breaker",
    "daemon",
}


@pytest.fixture(scope="module")
def artifact_path(store_corpus, tmp_path_factory):
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("health") / "a.gz")


def test_daemon_and_watcher_health_schema(artifact_path):
    with SynthesisDaemon.from_artifact(artifact_path, watch=True) as daemon:
        health = daemon.health()
        assert set(health) == DAEMON_HEALTH_KEYS
        assert set(health["watcher"]) == WATCHER_HEALTH_KEYS
        assert set(daemon.watcher.health()) == WATCHER_HEALTH_KEYS
        # The in-process daemon still advertises the transport schema (all
        # zeros) so dashboards need no per-transport key-set special case.
        assert set(health["transport"]) == TRANSPORT_KEYS
        assert health["transport"]["kind"] == "inproc"


def test_transport_golden_matches_codec_constant():
    # The golden here and the constant the codec exports must be one set.
    assert TRANSPORT_KEYS == set(TRANSPORT_HEALTH_KEYS)


def test_router_health_schema(artifact_path, tmp_path):
    with ClusterRouter.from_artifact(
        artifact_path,
        num_shards=2,
        replication=2,
        shard_dir=tmp_path / "shards",
        watch=False,
    ) as router:
        health = router.health()
        assert set(health) == ROUTER_HEALTH_KEYS
        assert set(health["transport"]) == TRANSPORT_KEYS
        assert health["transport"]["kind"] == "inproc"
        assert len(health["replicas"]) == 2
        for replica in health["replicas"]:
            assert set(replica) == ROUTER_REPLICA_KEYS
            # Each embedded daemon snapshot keeps the daemon schema too.
            assert set(replica["daemon"]) == DAEMON_HEALTH_KEYS
            assert set(replica["daemon"]["transport"]) == TRANSPORT_KEYS


def test_replica_server_and_remote_client_health_schema(artifact_path):
    server = serve_shard(artifact_path, watch=False)
    try:
        health = server.health()
        assert set(health) == REPLICA_SERVER_HEALTH_KEYS
        assert set(health["transport"]) == TRANSPORT_KEYS
        assert health["transport"]["kind"] == "tcp"
        assert set(health["daemon"]) == DAEMON_HEALTH_KEYS
        with RemoteReplica("127.0.0.1", server.port) as client:
            # The router-facing view: daemon schema with the client's own
            # transport counters swapped in.
            remote = client.health()
            assert set(remote) == DAEMON_HEALTH_KEYS
            assert set(remote["transport"]) == TRANSPORT_KEYS
            assert remote["transport"]["kind"] == "tcp"
            assert set(client.server_health()) == REPLICA_SERVER_HEALTH_KEYS
    finally:
        server.close()
