"""Tests for the banded edit distance and fractional thresholds (Appendix B)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.edit_distance import (
    banded_edit_distance,
    edit_distance,
    fractional_threshold,
    within_edit_threshold,
)


class TestEditDistance:
    def test_identical_strings(self):
        assert edit_distance("hello", "hello") == 0

    def test_empty_strings(self):
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "abcd") == 4

    def test_single_substitution(self):
        assert edit_distance("cat", "car") == 1

    def test_single_insertion(self):
        assert edit_distance("cat", "cart") == 1

    def test_single_deletion(self):
        assert edit_distance("cart", "cat") == 1

    def test_completely_different(self):
        assert edit_distance("abc", "xyz") == 3

    def test_paper_example_american_samoa(self):
        # "American Samoa" vs "American Samoa (US)" differ by the suffix.
        assert edit_distance("American Samoa", "American Samoa US") == 3

    def test_symmetric(self):
        assert edit_distance("kitten", "sitting") == edit_distance("sitting", "kitten")
        assert edit_distance("kitten", "sitting") == 3


class TestBandedEditDistance:
    def test_within_threshold_returns_exact_distance(self):
        assert banded_edit_distance("kitten", "sitting", 3) == 3

    def test_over_threshold_returns_none(self):
        assert banded_edit_distance("kitten", "sitting", 2) is None

    def test_zero_threshold_identical(self):
        assert banded_edit_distance("abc", "abc", 0) == 0

    def test_zero_threshold_different(self):
        assert banded_edit_distance("abc", "abd", 0) is None

    def test_length_difference_exceeding_band(self):
        assert banded_edit_distance("a", "abcdefgh", 3) is None

    def test_negative_threshold_raises(self):
        with pytest.raises(ValueError):
            banded_edit_distance("a", "b", -1)

    def test_empty_versus_short(self):
        assert banded_edit_distance("", "ab", 2) == 2
        assert banded_edit_distance("", "ab", 1) is None

    @given(st.text(max_size=12), st.text(max_size=12), st.integers(min_value=0, max_value=6))
    @settings(max_examples=300, deadline=None)
    def test_matches_reference_implementation(self, first, second, threshold):
        """The banded DP must agree with the full DP whenever it returns a value."""
        reference = edit_distance(first, second)
        banded = banded_edit_distance(first, second, threshold)
        if reference <= threshold:
            assert banded == reference
        else:
            assert banded is None

    @given(st.text(max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_identity_property(self, text):
        assert banded_edit_distance(text, text, 0) == 0

    @given(st.text(min_size=1, max_size=10), st.text(min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_symmetry_property(self, first, second):
        assert banded_edit_distance(first, second, 5) == banded_edit_distance(second, first, 5)


class TestFractionalThreshold:
    def test_short_codes_require_exact_match(self):
        # |USA| * 0.2 = 0.6 -> floor 0: short codes like USA/RSA must match exactly.
        assert fractional_threshold("USA", "RSA") == 0

    def test_paper_example_american_samoa(self):
        # min(floor(13*0.2)=2, floor(15*0.2)=3, 10) would be 2 for these lengths.
        value = fractional_threshold("American Samo", "American Samoa US")
        assert value == 2

    def test_cap_applies_to_long_strings(self):
        long_a, long_b = "x" * 200, "y" * 200
        assert fractional_threshold(long_a, long_b) == 10

    def test_negative_fraction_raises(self):
        with pytest.raises(ValueError):
            fractional_threshold("a", "b", fraction=-0.1)

    def test_negative_cap_raises(self):
        with pytest.raises(ValueError):
            fractional_threshold("a", "b", cap=-1)

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_threshold_bounded_by_cap(self, first, second):
        assert fractional_threshold(first, second) <= 10


class TestWithinEditThreshold:
    def test_exact_match(self):
        assert within_edit_threshold("USA", "USA")

    def test_short_strings_no_fuzz(self):
        # USA vs RSA is distance 1 but short codes must not fuzzily match.
        assert not within_edit_threshold("USA", "RSA")

    def test_long_strings_tolerate_small_edits(self):
        assert within_edit_threshold(
            "Los Angeles International Airport", "Los Angeles Internationel Airport"
        )

    def test_unrelated_long_strings_do_not_match(self):
        assert not within_edit_threshold(
            "Los Angeles International Airport", "San Francisco International Airport"
        )

    def test_empty_string_only_matches_empty(self):
        assert within_edit_threshold("", "")
        assert not within_edit_threshold("", "x")
