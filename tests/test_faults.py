"""Chaos suite for the fault-tolerance layer (repro/faults + exec + serving).

Everything here runs against *deterministic* fault injection: a
:class:`FaultPlan` seed fully determines which dispatches crash workers,
which tasks raise, and which publishes are treated as failed or corrupt, so
every chaos scenario is replayable with ``REPRO_FAULT_SEED``.

The two load-bearing invariants (the PR's acceptance criteria):

* a pipeline run on ``process:2`` under injected worker crashes is
  **byte-identical** to the serial oracle — the recovery ladder (per-task
  retry, pool rebuild + re-dispatch of only the lost chunks, inline
  degradation) never changes answers, only wall-clock;
* a daemon whose artifact path suffers repeated failed/corrupt publishes
  keeps serving the **pinned last-good generation**, reports the degradation
  through ``health()``, and recovers automatically on the next good publish.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import FillRequest, MappingService, ServiceStats
from repro.core.binary_table import ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.exec import SerialBackend, ThreadBackend, ProcessBackend
from repro.faults import (
    FAULT_SEED_ENV_VAR,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    active_injector,
    injected_faults,
)
from repro.serving import CircuitOpenError, QueueFullError, SynthesisDaemon
from repro.store.format import ArtifactReader, ArtifactWriter, atomic_write_bytes

pytestmark = pytest.mark.faults


# ---------------------------------------------------------------------------------------
# Helpers (top-level so they pickle into process-pool workers)
# ---------------------------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def _sum_block(block) -> int:
    return sum(block)


def _config(executor: str, **overrides) -> SynthesisConfig:
    # Same shape as the equivalence suite: PMI off + tiny thresholds keep the
    # fragment corpus productive and runs byte-comparable.
    return SynthesisConfig(
        executor=executor,
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        **overrides,
    )


def _canonical(result) -> str:
    """Byte-comparable form of a pipeline run (everything except timings)."""

    def mapping_repr(mapping):
        return (
            mapping.mapping_id,
            sorted((pair.left, pair.right) for pair in mapping.pairs),
            sorted(mapping.source_tables),
            sorted(mapping.domains),
        )

    return repr(
        (
            [mapping_repr(m) for m in result.mappings],
            [mapping_repr(m) for m in result.curated],
            [
                (c.table_id, c.source_table_id, [(p.left, p.right) for p in c.pairs])
                for c in result.candidates
            ],
            sorted(result.extraction_stats.items()),
        )
    )


def _answers(responses) -> list[tuple]:
    return [(r.kind, r.request_index, r.result, r.error) for r in responses]


def _seed_service() -> MappingService:
    relation = get_seed_relation("state_abbrev")
    mapping = MappingRelationship(
        mapping_id="state_abbrev",
        pairs=[ValuePair(left, right) for left, right in relation.pairs],
        domains={"seed"},
    )
    return MappingService([mapping])


GOOD_BATCH = [FillRequest(keys=("California", "Texas", "Ohio", "Washington"))]
#: Requests no handler understands: every one lands in its envelope's ``error``,
#: which is exactly the per-request failure signal the circuit breaker counts.
BAD_BATCH = [object(), object(), object(), object()]


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------------------
# FaultPlan / FaultInjector
# ---------------------------------------------------------------------------------------
class TestFaultInjector:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=1234, task_error_rate=0.4)
        first = [FaultInjector(plan).decide("site", 0.4) for _ in range(1)]
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        decisions_a = [a.decide("site", 0.4) for _ in range(64)]
        decisions_b = [b.decide("site", 0.4) for _ in range(64)]
        assert decisions_a == decisions_b
        assert first[0] == decisions_a[0]
        assert any(decisions_a) and not all(decisions_a)

    def test_sites_are_independent_streams(self):
        plan = FaultPlan(seed=7)
        injector = FaultInjector(plan)
        a = [injector.decide("alpha", 0.5) for _ in range(32)]
        b = [injector.decide("beta", 0.5) for _ in range(32)]
        assert a != b  # astronomically unlikely to collide if streams differ

    def test_zero_rate_never_fires_and_consumes_no_occurrences(self):
        plan = FaultPlan(seed=9, task_error_rate=0.0)
        injector = FaultInjector(plan)
        assert not any(injector.decide("site", 0.0) for _ in range(16))
        # The occurrence counter was untouched: the next real draw matches a
        # fresh injector's first draw.
        fresh = FaultInjector(plan)
        assert injector.decide("site", 0.7) == fresh.decide("site", 0.7)

    def test_rate_one_always_fires_until_max_faults(self):
        plan = FaultPlan(seed=2, worker_crash_rate=1.0, max_faults=3)
        injector = FaultInjector(plan)
        fired = [injector.worker_crash() for _ in range(10)]
        assert fired == [True, True, True] + [False] * 7
        assert injector.total_injected == 3

    def test_corrupt_is_deterministic_and_always_differs(self):
        plan = FaultPlan(seed=5)
        data = bytes(range(256)) * 4
        one = FaultInjector(plan).corrupt(data)
        two = FaultInjector(plan).corrupt(data)
        assert one == two
        assert one != data
        assert len(one) == len(data)

    def test_seed_comes_from_environment(self, monkeypatch):
        monkeypatch.setenv(FAULT_SEED_ENV_VAR, "424242")
        assert FaultPlan().seed == 424242
        monkeypatch.delenv(FAULT_SEED_ENV_VAR)
        assert isinstance(FaultPlan().seed, int)

    def test_injected_faults_scopes_and_restores(self):
        assert active_injector() is None
        with injected_faults(FaultPlan(seed=1)) as outer:
            assert active_injector() is outer
            with injected_faults(FaultPlan(seed=2)) as inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(worker_crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(task_error_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(max_faults=-1)

    def test_snapshot_is_json_able(self):
        injector = FaultInjector(FaultPlan(seed=3, task_error_rate=1.0, max_faults=1))
        injector.task_error()
        snapshot = json.loads(json.dumps(injector.snapshot()))
        assert snapshot["injected"]["task_error"] == 1


# ---------------------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------------------
class TestRetryPolicy:
    def test_delay_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(
            attempts=6, base_seconds=0.1, max_seconds=0.5, multiplier=2.0, seed=11
        )
        delays = list(policy.delays())
        assert delays == list(RetryPolicy(
            attempts=6, base_seconds=0.1, max_seconds=0.5, multiplier=2.0, seed=11
        ).delays())
        assert len(delays) == 6
        assert all(0 < d <= 0.5 for d in delays)
        # The uncapped prefix grows geometrically (modulo +/-10% jitter).
        assert delays[1] > delays[0]

    def test_retry_on_filter(self):
        policy = RetryPolicy(retry_on=(InjectedFault, OSError))
        assert policy.retries(InjectedFault("x"))
        assert policy.retries(OSError("x"))
        assert not policy.retries(ValueError("x"))

    def test_call_retries_then_succeeds(self):
        policy = RetryPolicy(attempts=3, base_seconds=0.2, max_seconds=1.0, seed=4)
        sleeps: list[float] = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise OSError("transient")
            return "ok"

        assert policy.call(flaky, sleep=sleeps.append) == "ok"
        assert calls["n"] == 3
        assert sleeps == [policy.delay(1), policy.delay(2)]

    def test_call_exhausts_budget(self):
        policy = RetryPolicy(attempts=2, base_seconds=0.0)

        def always():
            raise OSError("still down")

        with pytest.raises(OSError):
            policy.call(always, sleep=lambda _s: None)

    def test_uncovered_exception_is_not_retried(self):
        policy = RetryPolicy(attempts=5, retry_on=(OSError,))
        calls = {"n": 0}

        def boom():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(boom, sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# ---------------------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------------------
class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        kwargs = dict(
            error_threshold=0.5, min_requests=4, cooldown_seconds=10.0, clock=clock
        )
        kwargs.update(overrides)
        return CircuitBreaker(**kwargs)

    def test_disabled_at_zero_threshold(self):
        breaker = CircuitBreaker(error_threshold=0.0)
        assert not breaker.enabled
        assert breaker.state == "disabled"
        assert breaker.allow()
        assert breaker.record(0, 100) is False
        assert breaker.state == "disabled"

    def test_no_trip_below_volume(self):
        breaker = self._breaker(_FakeClock())
        assert breaker.record(0, 3) is False  # 3 errors < min_requests
        assert breaker.state == "closed"

    def test_trips_at_error_rate_and_rejects(self):
        clock = _FakeClock()
        breaker = self._breaker(clock)
        assert breaker.record(2, 2) is True  # 4 requests, 50% errors
        assert breaker.state == "open"
        assert not breaker.allow()
        assert not breaker.allow()
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "open"
        assert snapshot["rejections"] == 2
        assert snapshot["opened_count"] == 1
        json.dumps(snapshot)

    def test_half_open_probe_success_closes(self):
        clock = _FakeClock()
        breaker = self._breaker(clock)
        breaker.record(0, 4)
        clock.advance(10.1)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # a second concurrent batch is rejected
        assert breaker.record(8, 0) is False  # clean probe
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = _FakeClock()
        breaker = self._breaker(clock)
        breaker.record(0, 4)
        clock.advance(10.1)
        assert breaker.allow()
        assert breaker.record(0, 4) is True  # probe errored: trip again
        assert breaker.state == "open"
        assert not breaker.allow()
        # ...and the next cooldown admits another probe.
        clock.advance(10.1)
        assert breaker.allow()

    def test_window_slides(self):
        clock = _FakeClock()
        breaker = self._breaker(clock, min_requests=4, window=8)
        breaker.record(0, 2)  # 2 errors
        breaker.record(20, 0)  # flushed past the 8-slot window
        assert breaker.state == "closed"

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(error_threshold=1.5)
        with pytest.raises(ValueError):
            CircuitBreaker(min_requests=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_seconds=-1)
        with pytest.raises(ValueError):
            CircuitBreaker(min_requests=10, window=5)


# ---------------------------------------------------------------------------------------
# Resilient execution backends
# ---------------------------------------------------------------------------------------
FAST_RETRY = RetryPolicy(
    attempts=2, base_seconds=0.001, max_seconds=0.01, retry_on=(InjectedFault, OSError)
)


class TestResilientBackends:
    ITEMS = list(range(24))
    EXPECTED = [x * x for x in ITEMS]

    def test_serial_backend_ignores_injection(self):
        with injected_faults(FaultPlan(seed=1, task_error_rate=1.0)):
            backend = SerialBackend()
            assert backend.map_blocks(_square, self.ITEMS) == self.EXPECTED

    def test_thread_backend_retries_injected_task_errors(self):
        plan = FaultPlan(seed=13, task_error_rate=1.0, max_faults=2)
        with injected_faults(plan) as injector:
            with ThreadBackend(2, retry_policy=FAST_RETRY) as backend:
                assert backend.map_blocks(_square, self.ITEMS) == self.EXPECTED
                assert backend.tasks_retried == 2
                assert backend.faults_injected == 2
                assert backend.fallback_reason is None
            assert injector.total_injected == 2

    def test_thread_backend_map_unordered_under_faults(self):
        plan = FaultPlan(seed=17, task_error_rate=1.0, max_faults=2)
        with injected_faults(plan):
            with ThreadBackend(2, retry_policy=FAST_RETRY) as backend:
                got = sorted(backend.map_unordered(_square, self.ITEMS))
        assert got == self.EXPECTED

    def test_slow_calls_change_nothing_but_wall_clock(self):
        plan = FaultPlan(
            seed=23, slow_call_rate=0.5, slow_call_seconds=0.001, max_faults=8
        )
        with injected_faults(plan):
            with ThreadBackend(2) as backend:
                assert backend.map_blocks(_square, self.ITEMS) == self.EXPECTED

    def test_process_backend_survives_a_worker_crash(self):
        plan = FaultPlan(seed=29, worker_crash_rate=1.0, max_faults=1)
        with injected_faults(plan):
            with ProcessBackend(2, retry_policy=FAST_RETRY) as backend:
                blocks = [self.ITEMS[:8], self.ITEMS[8:16], self.ITEMS[16:]]
                assert backend.map_blocks(_sum_block, blocks) == [
                    sum(b) for b in blocks
                ]
                assert backend.crash_recoveries == 1
                assert backend.fallback_reason is None

    def test_process_backend_degrades_inline_past_the_budget(self):
        # Every dispatch crashes its worker; after the rebuild budget the
        # backend must finish the work inline — correctly — and say why.
        plan = FaultPlan(seed=31, worker_crash_rate=1.0)
        with injected_faults(plan):
            with ProcessBackend(2, retry_policy=FAST_RETRY) as backend:
                blocks = [self.ITEMS[:12], self.ITEMS[12:]]
                assert backend.map_blocks(_sum_block, blocks) == [
                    sum(b) for b in blocks
                ]
                assert backend.fallback_reason is not None
                assert "inline" in backend.fallback_reason

    def test_call_recovers_like_the_maps_do(self):
        plan = FaultPlan(seed=37, task_error_rate=1.0, max_faults=1)
        with injected_faults(plan):
            with ThreadBackend(2, retry_policy=FAST_RETRY) as backend:
                assert backend.call(_square, 9) == 81
                assert backend.tasks_retried == 1


# ---------------------------------------------------------------------------------------
# Acceptance: chaos-equivalence of the full pipeline
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_oracle(store_corpus):
    result = SynthesisPipeline(_config("serial")).run(store_corpus)
    return _canonical(result)


@pytest.mark.parametrize("seed", (11, 97, 20260808))
def test_pipeline_under_worker_crashes_is_byte_identical(
    seed, store_corpus, serial_oracle
):
    """The PR's headline invariant: crashes cost retries, never answers."""
    plan = FaultPlan(seed=seed, worker_crash_rate=0.2)
    with injected_faults(plan):
        result = SynthesisPipeline(_config("process:2")).run(store_corpus)
    assert _canonical(result) == serial_oracle
    

def test_pipeline_under_task_errors_is_byte_identical(store_corpus, serial_oracle):
    plan = FaultPlan(
        seed=41,
        task_error_rate=1.0,
        max_faults=2,  # <= retry attempts: no task can exhaust its budget
        slow_call_rate=0.2,
        slow_call_seconds=0.0005,
    )
    with injected_faults(plan):
        result = SynthesisPipeline(_config("thread:2")).run(store_corpus)
    assert _canonical(result) == serial_oracle


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_pipeline_property_faulty_threads_equal_serial(
    seed, store_corpus, serial_oracle
):
    plan = FaultPlan(seed=seed, task_error_rate=1.0, max_faults=2)
    with injected_faults(plan):
        result = SynthesisPipeline(_config("thread:2")).run(store_corpus)
    assert _canonical(result) == serial_oracle


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    error_rate=st.floats(min_value=0.0, max_value=1.0),
    slow_rate=st.floats(min_value=0.0, max_value=0.5),
)
def test_backend_map_property_matches_plain_python(seed, error_rate, slow_rate):
    items = list(range(16))
    expected = [x * x for x in items]
    plan = FaultPlan(
        seed=seed,
        task_error_rate=error_rate,
        slow_call_rate=slow_rate,
        slow_call_seconds=0.0002,
        max_faults=2,
    )
    with injected_faults(plan):
        with ThreadBackend(2, retry_policy=FAST_RETRY) as backend:
            assert backend.map_blocks(_square, items) == expected
            assert sorted(backend.map_unordered(_square, items)) == expected


# ---------------------------------------------------------------------------------------
# ServiceStats shed-load counters
# ---------------------------------------------------------------------------------------
class TestShedCounters:
    def test_bump_and_as_dict(self):
        stats = ServiceStats()
        assert stats.bump("rejected") == 1
        assert stats.bump("expired", 2) == 2
        assert stats.bump("retried") == 1
        assert stats.bump("breaker_opened") == 1
        assert stats.bump("breaker_rejections") == 1
        shed = stats.as_dict()["shed"]
        assert shed == {
            "rejected": 1,
            "expired": 2,
            "retried": 1,
            "breaker_opened": 1,
            "breaker_rejections": 1,
        }

    def test_bump_rejects_unknown_counter(self):
        with pytest.raises(ValueError):
            ServiceStats().bump("latency")


# ---------------------------------------------------------------------------------------
# Daemon circuit breaker + shed-load behavior
# ---------------------------------------------------------------------------------------
class TestDaemonBreaker:
    def _daemon(self, **overrides) -> SynthesisDaemon:
        kwargs = dict(
            workers=1,
            queue_size=32,
            breaker_threshold=0.5,
            breaker_min_requests=8,
            breaker_cooldown=0.05,
        )
        kwargs.update(overrides)
        return SynthesisDaemon(_seed_service(), **kwargs)

    def test_breaker_trips_fails_fast_and_recovers(self):
        daemon = self._daemon()
        try:
            # 8 requests, 100% error rate: enough volume to trip.
            for _ in range(2):
                result = daemon.submit("autofill", BAD_BATCH).result(timeout=15)
                assert not any(r.ok for r in result.responses)
            assert daemon.generation.breaker.state == "open"
            with pytest.raises(CircuitOpenError) as excinfo:
                daemon.submit("autofill", GOOD_BATCH)
            assert "circuit breaker is open" in str(excinfo.value)
            assert daemon.stats.breaker_opened == 1
            assert daemon.stats.breaker_rejections >= 1

            health = daemon.health()
            assert health["status"] == "degraded"
            assert health["breaker"]["state"] == "open"
            json.dumps(health)

            # After the cooldown a single clean probe closes the breaker.
            time.sleep(0.06)
            probe = daemon.submit("autofill", GOOD_BATCH).result(timeout=15)
            assert all(r.ok for r in probe.responses)
            deadline = time.monotonic() + 5
            while (
                daemon.generation.breaker.state != "closed"
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            assert daemon.generation.breaker.state == "closed"
            after = daemon.submit("autofill", GOOD_BATCH).result(timeout=15)
            assert all(r.ok for r in after.responses)
        finally:
            daemon.close()

    def test_breaker_disabled_by_default(self):
        daemon = SynthesisDaemon(_seed_service(), workers=1)
        try:
            assert daemon.generation.breaker is None
            for _ in range(3):
                daemon.submit("autofill", BAD_BATCH).result(timeout=15)
            result = daemon.submit("autofill", GOOD_BATCH).result(timeout=15)
            assert all(r.ok for r in result.responses)
        finally:
            daemon.close()

    def test_submit_retry_policy_rides_out_a_full_queue(self):
        class _GatedService(MappingService):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.gate = threading.Event()

            def _serve_batch(self, kind, requests, handler):
                self.gate.wait(15)
                return super()._serve_batch(kind, requests, handler)

        relation = get_seed_relation("state_abbrev")
        mapping = MappingRelationship(
            mapping_id="state_abbrev",
            pairs=[ValuePair(left, right) for left, right in relation.pairs],
            domains={"seed"},
        )
        service = _GatedService([mapping])
        daemon = SynthesisDaemon(service, workers=1, queue_size=1)
        try:
            first = daemon.submit("autofill", GOOD_BATCH)  # occupies the worker
            time.sleep(0.05)
            second = daemon.submit("autofill", GOOD_BATCH)  # fills the queue
            with pytest.raises(QueueFullError) as excinfo:
                daemon.submit("autofill", GOOD_BATCH)
            assert "rejected" in str(excinfo.value)
            assert daemon.stats.rejected >= 1

            threading.Timer(0.05, service.gate.set).start()
            third = daemon.submit(
                "autofill",
                GOOD_BATCH,
                retry_policy=RetryPolicy(
                    attempts=40, base_seconds=0.02, max_seconds=0.05
                ),
            )
            for ticket in (first, second, third):
                result = ticket.result(timeout=15)
                assert all(r.ok for r in result.responses)
            assert daemon.stats.retried >= 1
        finally:
            service.gate.set()
            daemon.close()


# ---------------------------------------------------------------------------------------
# Acceptance: watcher pinning under publish storms
# ---------------------------------------------------------------------------------------
WATCH_RETRY = RetryPolicy(attempts=2, base_seconds=0.001, max_seconds=0.01)


class TestWatcherDegradation:
    def _serve_and_check(self, daemon, reference):
        result = daemon.submit("autofill", GOOD_BATCH).result(timeout=15)
        assert _answers(result.responses) == reference
        return result

    def _start(self, store_corpus, tmp_path):
        path = tmp_path / "served.artifact.gz"
        pipeline = SynthesisPipeline(_config("serial", artifact_path=str(path)))
        pipeline.run(store_corpus)  # auto-saves to artifact_path
        daemon = SynthesisDaemon.from_artifact(
            path,
            config=_config("serial"),
            workers=1,
            poll_seconds=60.0,  # the tests drive check_now() deterministically
            retry_policy=WATCH_RETRY,
        )
        reference = _answers(
            MappingService.from_artifact(path).autofill(GOOD_BATCH)
        )
        return path, pipeline, daemon, reference

    def test_publish_failure_storm_pins_last_good_generation(
        self, store_corpus, tmp_path
    ):
        path, pipeline, daemon, reference = self._start(store_corpus, tmp_path)
        try:
            assert daemon.generation.number == 1
            with injected_faults(FaultPlan(seed=3, publish_failure_rate=1.0)):
                for _ in range(3):  # >= 3 consecutive failed publishes
                    time.sleep(0.01)  # distinct mtime_ns
                    pipeline.save_artifact(path)
                    assert daemon.watcher.check_now(force=True) is False
                # Still serving generation 1, and saying so.
                result = self._serve_and_check(daemon, reference)
                assert result.generation == 1
                health = daemon.health()
                assert health["status"] == "degraded"
                assert health["watcher"]["consecutive_failures"] >= 3
                assert health["watcher"]["pinned"] is True
                assert health["watcher"]["last_swap_ok"] is False
                assert "injected publish failure" in health["watcher"]["last_error"]
                json.dumps(health)

            # Chaos over: the next good publish recovers automatically.
            time.sleep(0.01)
            pipeline.save_artifact(path)
            assert daemon.watcher.check_now(force=True) is True
            deadline = time.monotonic() + 5
            while daemon.generation.number < 2 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert daemon.generation.number >= 2
            health = daemon.health()
            assert health["watcher"]["pinned"] is False
            assert health["watcher"]["consecutive_failures"] == 0
            assert health["status"] == "ok"
            self._serve_and_check(daemon, reference)
        finally:
            daemon.close()

    def test_corrupt_publish_storm_never_serves_mixed_bytes(
        self, store_corpus, tmp_path
    ):
        path, pipeline, daemon, reference = self._start(store_corpus, tmp_path)
        try:
            with injected_faults(FaultPlan(seed=8, corrupt_publish_rate=1.0)):
                for _ in range(4):
                    time.sleep(0.01)
                    pipeline.save_artifact(path)
                    assert daemon.watcher.check_now(force=True) is False
                    # Every batch between failed swaps is served wholly by the
                    # pinned generation — answers and tag agree.
                    result = self._serve_and_check(daemon, reference)
                    assert result.generation == 1
            assert daemon.watcher.skipped >= 4
            assert daemon.health()["watcher"]["pinned"] is True
        finally:
            daemon.close()


# ---------------------------------------------------------------------------------------
# Store durability + health plumbing
# ---------------------------------------------------------------------------------------
class TestDurability:
    def test_atomic_write_fsyncs_file_and_directory(self, tmp_path, monkeypatch):
        synced: list[int] = []
        real_fsync = os.fsync

        def recording_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        path = tmp_path / "payload.bin"
        assert atomic_write_bytes(path, b"payload") == path
        assert path.read_bytes() == b"payload"
        # One fsync for the temp file's bytes, one for the directory entry.
        assert len(synced) >= 2
        assert not list(tmp_path.glob("*.tmp"))

    def test_artifact_writer_commit_is_durable_and_verifiable(
        self, tmp_path, monkeypatch
    ):
        synced: list[int] = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        path = tmp_path / "artifact.bin"
        writer = ArtifactWriter(path)
        writer.add("meta", b'{"k": 1}', codec="json")
        writer.commit()
        assert len(synced) >= 2
        ArtifactReader(path.read_bytes(), source=str(path)).verify()

    def test_fsync_failure_on_directory_is_tolerated(self, tmp_path, monkeypatch):
        real_fsync = os.fsync
        seen = {"n": 0}

        def flaky_fsync(fd):
            seen["n"] += 1
            if seen["n"] > 1:  # the directory fsync (not supported everywhere)
                raise OSError("fsync on directories unsupported")
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", flaky_fsync)
        path = tmp_path / "payload.bin"
        atomic_write_bytes(path, b"data")
        assert path.read_bytes() == b"data"
