"""Tests for value normalization, the value matcher, and the synonym dictionary."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.matching import ValueMatcher, normalize_value
from repro.text.synonyms import SynonymDictionary


class TestNormalizeValue:
    def test_lowercases(self):
        assert normalize_value("South Korea") == "south korea"

    def test_strips_footnote_markers(self):
        assert normalize_value("South Korea[1]") == "south korea"
        assert normalize_value("Algeria*") == "algeria"

    def test_strips_punctuation(self):
        assert normalize_value("Korea, Republic of") == "korea republic of"

    def test_collapses_whitespace(self):
        assert normalize_value("  United   States ") == "united states"

    def test_keeps_punctuation_when_asked(self):
        assert normalize_value("AT&T Inc", strip_punctuation=False) == "at&t inc"

    def test_empty_string(self):
        assert normalize_value("") == ""

    def test_only_punctuation_becomes_empty(self):
        assert normalize_value("***") == ""

    @given(st.text(max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_idempotent(self, text):
        once = normalize_value(text)
        assert normalize_value(once) == once

    @given(st.text(max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_case_insensitive(self, text):
        assert normalize_value(text.upper()) == normalize_value(text.lower())


class TestValueMatcher:
    def test_exact_match(self):
        assert ValueMatcher().matches("USA", "USA")

    def test_case_and_punctuation_insensitive(self):
        assert ValueMatcher().matches("Korea, Republic of", "korea republic of")

    def test_footnote_marker_ignored(self):
        assert ValueMatcher().matches("Algeria[1]", "Algeria")

    def test_short_codes_not_fuzzy(self):
        assert not ValueMatcher().matches("USA", "RSA")

    def test_long_values_tolerate_typos(self):
        matcher = ValueMatcher()
        assert matcher.matches(
            "Beijing Capital International Airport",
            "Beijing Capital Internatonal Airport",
        )

    def test_approximate_disabled(self):
        matcher = ValueMatcher(approximate=False)
        assert not matcher.matches(
            "Beijing Capital International Airport",
            "Beijing Capital Internatonal Airport",
        )
        assert matcher.matches("Beijing", "beijing")

    def test_synonyms_match(self):
        synonyms = SynonymDictionary([["US Virgin Islands", "United States Virgin Islands"]])
        matcher = ValueMatcher(synonyms=synonyms)
        assert matcher.matches("US Virgin Islands", "United States Virgin Islands")

    def test_match_key_uses_synonym_canonical(self):
        synonyms = SynonymDictionary([["UK", "United Kingdom"]])
        matcher = ValueMatcher(synonyms=synonyms)
        assert matcher.match_key("UK") == matcher.match_key("United Kingdom")

    def test_match_key_without_synonyms_is_normalization(self):
        matcher = ValueMatcher()
        assert matcher.match_key("South Korea[1]") == "south korea"

    def test_negative_fraction_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            ValueMatcher(fraction=-0.5)

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=150, deadline=None)
    def test_matches_is_symmetric(self, first, second):
        matcher = ValueMatcher()
        assert matcher.matches(first, second) == matcher.matches(second, first)

    @given(st.text(max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_matches_is_reflexive(self, text):
        assert ValueMatcher().matches(text, text)


class TestSynonymDictionary:
    def test_pair(self):
        synonyms = SynonymDictionary()
        synonyms.add_pair("UK", "United Kingdom")
        assert synonyms.are_synonyms("UK", "United Kingdom")

    def test_transitive_closure(self):
        synonyms = SynonymDictionary()
        synonyms.add_pair("UK", "United Kingdom")
        synonyms.add_pair("United Kingdom", "Great Britain")
        assert synonyms.are_synonyms("UK", "Great Britain")

    def test_group(self):
        synonyms = SynonymDictionary([["a", "b", "c"]])
        assert synonyms.are_synonyms("a", "c")
        assert synonyms.are_synonyms("b", "c")

    def test_unknown_values_are_not_synonyms(self):
        synonyms = SynonymDictionary([["a", "b"]])
        assert not synonyms.are_synonyms("a", "z")
        assert not synonyms.are_synonyms("x", "y")

    def test_identical_values_always_synonyms(self):
        assert SynonymDictionary().are_synonyms("same", "same")

    def test_normalization_applied(self):
        synonyms = SynonymDictionary([["South Korea", "Republic of Korea"]])
        assert synonyms.are_synonyms("SOUTH KOREA", "republic of korea")

    def test_canonical_is_stable_within_group(self):
        synonyms = SynonymDictionary([["a", "b", "c"]])
        assert synonyms.canonical("a") == synonyms.canonical("b") == synonyms.canonical("c")

    def test_canonical_for_unknown_value(self):
        assert SynonymDictionary().canonical("Plain Value") == "plain value"

    def test_contains_and_len(self):
        synonyms = SynonymDictionary([["a", "b"]])
        assert "a" in synonyms
        assert "z" not in synonyms
        assert len(synonyms) == 2

    def test_empty_group_is_noop(self):
        synonyms = SynonymDictionary()
        synonyms.add_group([])
        assert len(synonyms) == 0
