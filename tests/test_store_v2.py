"""Sectioned (v2) artifact format: laziness, corruption, versioning, reuse.

Complements test_store_roundtrip.py (which owns the v1 document format and the
format-agnostic payload round trips):

* property tests that a lazily loaded v2 artifact is semantically identical to
  the eager artifact that produced it (and to the same artifact through the v1
  compat path);
* section-level corruption → :class:`ArtifactCorruptionError` **naming the
  damaged section**, without the undamaged sections being affected;
* version gating: future-version files (both container flavors) surface
  :class:`ArtifactVersionError` carrying the supported-version set;
* laziness accounting: serving consumers decode only mappings + curation
  (asserted via the reader's section decode counters), incremental refresh
  decodes only the sections whose inputs changed, and saving rewrites only the
  sections a refresh touched (the rest are copied verbatim).
"""

from __future__ import annotations

import hashlib
import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_store_roundtrip import (
    artifacts,
    assert_artifacts_identical,
    make_sample_artifact,
)

from repro.applications.service import MappingService
from repro.core.pipeline import SynthesisPipeline
from repro.serving.watcher import ArtifactWatcher
from repro.store import (
    SUPPORTED_VERSIONS,
    ArtifactCorruptionError,
    ArtifactVersionError,
    SynthesisArtifact,
    load_artifact,
    refresh_artifact,
    save_artifact,
)
from repro.store.format import CONTAINER_MAGIC, ArtifactReader
from repro.store.sections import SECTION_ORDER


def save_and_load_v2(artifact, tmp_path, name="run.v2", **kwargs):
    path = save_artifact(artifact, tmp_path / name, **kwargs)
    loaded = load_artifact(path)
    assert loaded.reader is not None, "v2 artifacts must load lazily"
    return path, loaded


# ---------------------------------------------------------------------------------------
# Lazy == eager
# ---------------------------------------------------------------------------------------
class TestLazyEagerEquivalence:
    @given(artifact=artifacts(), compress=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_lazy_v2_matches_eager_original(self, artifact, compress, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("v2")
        _, lazy = save_and_load_v2(artifact, tmp, compress=compress)
        assert_artifacts_identical(lazy, artifact)

    @given(artifact=artifacts())
    @settings(max_examples=10, deadline=None)
    def test_v1_compat_path_matches_lazy_v2(self, artifact, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("x")
        v1 = save_artifact(artifact, tmp / "run.v1", version=1)
        _, lazy = save_and_load_v2(artifact, tmp)
        eager = load_artifact(v1)
        assert eager.reader is None, "v1 artifacts decode eagerly"
        assert_artifacts_identical(eager, artifact)
        assert_artifacts_identical(lazy, artifact)

    def test_v2_save_is_deterministic_and_reload_roundtrips(self, tmp_path):
        artifact = make_sample_artifact()
        first = save_artifact(artifact, tmp_path / "a1").read_bytes()
        second = save_artifact(artifact, tmp_path / "a2").read_bytes()
        assert first == second
        # Re-saving a lazy artifact copies every clean section verbatim, so the
        # output is byte-identical to its source file.
        lazy = load_artifact(tmp_path / "a1")
        resaved = save_artifact(lazy, tmp_path / "a3")
        assert resaved.read_bytes() == first

    def test_field_assignment_on_lazy_artifact_persists(self, tmp_path):
        """v1 artifacts were plain mutable dataclasses; assigning a field on a
        lazy v2 artifact must dirty its section so save persists the change
        instead of silently copying the old stored bytes."""
        _, lazy = save_and_load_v2(make_sample_artifact(), tmp_path)
        lazy.curated_ids = []
        mutated = save_artifact(lazy, tmp_path / "mutated.artifact")
        assert load_artifact(mutated).curated == []

    def test_evolve_requires_known_fields(self):
        with pytest.raises(TypeError, match="unknown artifact fields"):
            make_sample_artifact().evolve(nonsense=1)

    def test_evolve_never_aliases_containers(self, tmp_path):
        """Mutating one artifact's top-level containers must not leak into the
        other — including for sections materialized *before* the evolve and for
        untouched siblings of a dirty section."""
        _, lazy = save_and_load_v2(make_sample_artifact(), tmp_path)
        _ = lazy.mappings  # materialize a clean section before evolving
        evolved = lazy.evolve(curated_ids=[], positive_edges={})
        assert evolved.mappings is not lazy.mappings
        assert evolved.mappings == lazy.mappings
        # negative_edges rides along with its dirty section (edges) untouched.
        assert evolved.negative_edges is not lazy.negative_edges
        evolved.mappings.clear()
        evolved.negative_edges.clear()
        assert lazy.mappings and lazy.negative_edges


# ---------------------------------------------------------------------------------------
# Section-level corruption
# ---------------------------------------------------------------------------------------
def _flip_byte_in_section(path, name: str) -> None:
    data = bytearray(path.read_bytes())
    start, end = ArtifactReader(bytes(data)).section_span(name)
    middle = (start + end) // 2
    data[middle] ^= 0xFF
    path.write_bytes(bytes(data))


class TestSectionCorruption:
    @pytest.mark.parametrize("section", SECTION_ORDER)
    def test_damaged_section_is_named(self, section, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        _flip_byte_in_section(path, section)
        # The TOC is intact, so the file still *opens* lazily ...
        damaged = load_artifact(path)
        # ... but full validation pinpoints the damaged section,
        with pytest.raises(ArtifactCorruptionError, match=section) as excinfo:
            damaged.verify()
        assert excinfo.value.section == section
        # ... as does the first decode that touches it.
        field = {
            "config": "config",
            "fingerprints": "corpus_name",
            "candidates": "candidates",
            "profiles": "profiles",
            "edges": "positive_edges",
            "mappings": "mappings",
            "curation": "curated_ids",
            "stats": "timings",
        }[section]
        with pytest.raises(ArtifactCorruptionError):
            getattr(load_artifact(path), field)

    def test_undamaged_sections_still_decode(self, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        _flip_byte_in_section(path, "profiles")
        damaged = load_artifact(path)
        # The serving payload is unaffected by profile damage.
        assert [m.mapping_id for m in damaged.curated] == ["mapping-00000"]
        with pytest.raises(ArtifactCorruptionError, match="profiles"):
            _ = damaged.profiles

    def test_truncated_container_fails_at_load(self, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptionError):
            load_artifact(path)

    def test_damaged_toc_fails_at_load(self, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        data = bytearray(path.read_bytes())
        # Flip a byte inside the TOC JSON (right after the fixed header).
        data[len(CONTAINER_MAGIC) + 4 + 32 + 5] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ArtifactCorruptionError, match="table-of-contents"):
            load_artifact(path)

    def test_watcher_rejects_section_corruption_without_decoding(self, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        _flip_byte_in_section(path, "mappings")
        swapped = []
        watcher = ArtifactWatcher(
            path, lambda artifact, _path: swapped.append(artifact), subscribe=False
        )
        # Force a check against a fresh signature so the damaged file is "new".
        watcher._signature = None
        assert watcher.check_now() is False
        assert watcher.skipped == 1
        assert swapped == []


# ---------------------------------------------------------------------------------------
# Version gating
# ---------------------------------------------------------------------------------------
def _rewrite_toc_version(path, version: int) -> None:
    data = path.read_bytes()
    header = len(CONTAINER_MAGIC)
    toc_length = struct.unpack_from(">I", data, header)[0]
    toc_start = header + 4 + 32
    toc = json.loads(data[toc_start : toc_start + toc_length].decode("utf-8"))
    toc["format_version"] = version
    toc_bytes = json.dumps(toc, sort_keys=True, separators=(",", ":")).encode("utf-8")
    path.write_bytes(
        CONTAINER_MAGIC
        + struct.pack(">I", len(toc_bytes))
        + hashlib.sha256(toc_bytes).digest()
        + toc_bytes
        + data[toc_start + toc_length :]
    )


class TestVersionGating:
    def test_future_container_version_names_supported_set(self, tmp_path):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        _rewrite_toc_version(path, 3)
        with pytest.raises(ArtifactVersionError, match="version 3") as excinfo:
            load_artifact(path)
        assert excinfo.value.found == 3
        assert excinfo.value.supported == SUPPORTED_VERSIONS

    def test_future_v1_document_version_names_supported_set(self, tmp_path):
        """Regression: the error must carry the supported set, not hard-code 1."""
        path = save_artifact(
            make_sample_artifact(), tmp_path / "doc", compress=False, version=1
        )
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactVersionError) as excinfo:
            load_artifact(path)
        assert excinfo.value.found == 99
        assert excinfo.value.supported == SUPPORTED_VERSIONS
        assert "1, 2" in str(excinfo.value)

    def test_unsupported_write_version_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot write artifact version"):
            save_artifact(make_sample_artifact(), tmp_path / "x", version=7)


# ---------------------------------------------------------------------------------------
# Laziness accounting: serving decodes only what it serves
# ---------------------------------------------------------------------------------------
class TestSectionAccessCounters:
    def test_service_from_artifact_decodes_only_serving_sections(
        self, tmp_path, monkeypatch
    ):
        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        import repro.store.artifact as artifact_module

        captured = []
        real_load = artifact_module.load_artifact

        def capturing_load(target):
            artifact = real_load(target)
            captured.append(artifact)
            return artifact

        monkeypatch.setattr(artifact_module, "load_artifact", capturing_load)
        service = MappingService.from_artifact(path)
        assert len(service) == 1
        (artifact,) = captured
        decoded = set(artifact.reader.decode_counts)
        assert decoded == {"mappings", "curation"}
        assert all(count == 1 for count in artifact.reader.decode_counts.values())

    def test_daemon_from_artifact_decodes_no_cold_sections(self, tmp_path, monkeypatch):
        from repro.serving.daemon import SynthesisDaemon
        import repro.store.artifact as artifact_module

        path, _ = save_and_load_v2(make_sample_artifact(), tmp_path)
        captured = []
        real_load = artifact_module.load_artifact

        def capturing_load(target):
            artifact = real_load(target)
            captured.append(artifact)
            return artifact

        monkeypatch.setattr(artifact_module, "load_artifact", capturing_load)
        daemon = SynthesisDaemon.from_artifact(path, watch=False, workers=1)
        try:
            (artifact,) = captured
            decoded = set(artifact.reader.decode_counts)
            # The daemon additionally reads the corpus fingerprint for its
            # generation tag; the cold sections stay encoded.
            assert decoded <= {"mappings", "curation", "fingerprints"}
            assert decoded & {"candidates", "profiles", "edges"} == set()
        finally:
            daemon.close()


# ---------------------------------------------------------------------------------------
# Incremental refresh: reads + rewrites only what changed
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def store_run(tmp_path_factory):
    """One pipeline run over the store corpus, saved as a v2 artifact."""
    from repro.core.config import SynthesisConfig
    from store_helpers import make_fragment_corpus, seed_fragments

    fragments = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    corpus = make_fragment_corpus(fragments, name="store-corpus")
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(corpus)
    path = pipeline.save_artifact(
        tmp_path_factory.mktemp("store-run") / "run.artifact"
    )
    return path, corpus, config


class TestRefreshLaziness:
    def test_noop_refresh_decodes_only_diff_inputs(self, store_run):
        path, corpus, config = store_run
        lazy = load_artifact(path)
        refreshed, stats = refresh_artifact(lazy, corpus, config=config)
        assert stats.noop
        assert refreshed is lazy
        assert set(lazy.reader.decode_counts) <= {"config", "fingerprints"}
        assert stats.candidates_total == lazy.reader.item_count("candidates")

    def test_changed_corpus_refresh_never_decodes_serving_sections(self, store_run):
        from repro.corpus.corpus import TableCorpus
        from repro.corpus.table import Table

        path, corpus, config = store_run
        tables = corpus.tables()
        # Drop one table: its candidates disappear, everything else is reused.
        grown = TableCorpus(tables[:-1], name=corpus.name)
        lazy = load_artifact(path)
        refreshed, stats = refresh_artifact(lazy, grown, config=config)
        assert not stats.full_rebuild and stats.pairs_reused > 0
        decoded = set(lazy.reader.decode_counts)
        assert decoded & {"mappings", "curation", "stats"} == set()
        # The refreshed artifact equals a cold run on the new corpus (the
        # existing incremental tests prove that); here we only need it usable.
        assert refreshed.mappings

    def test_full_rebuild_refresh_decodes_only_config_and_fingerprints(
        self, store_run
    ):
        path, corpus, config = store_run
        lazy = load_artifact(path)
        changed = config.with_overrides(edge_threshold=0.9)
        refreshed, stats = refresh_artifact(lazy, corpus, config=changed)
        assert stats.full_rebuild
        assert set(lazy.reader.decode_counts) <= {"config", "fingerprints"}

    def test_refresh_save_rewrites_only_touched_sections(self, store_run, tmp_path):
        from repro.corpus.corpus import TableCorpus

        path, corpus, config = store_run
        lazy = load_artifact(path)
        grown = TableCorpus(corpus.tables()[:-1], name=corpus.name)
        refreshed, stats = refresh_artifact(lazy, grown, config=config)
        assert not stats.noop
        # The refreshed artifact carries only the clean sections' stored bytes,
        # not the whole old container (a long-lived refresher must not pin
        # every superseded artifact file in memory).
        assert refreshed.reader is None
        target = save_artifact(refreshed, tmp_path / "refreshed.artifact")
        before = ArtifactReader(path.read_bytes())
        after = ArtifactReader(target.read_bytes())
        # Config was untouched by the refresh: its stored bytes were copied
        # verbatim (same checksum), not re-encoded.
        assert (
            after.sections["config"].checksum == before.sections["config"].checksum
        )
        # The sections the refresh recomputed were rewritten.
        assert (
            after.sections["fingerprints"].checksum
            != before.sections["fingerprints"].checksum
        )

    def test_evolve_marks_only_named_sections_dirty(self, tmp_path):
        path, lazy = save_and_load_v2(make_sample_artifact(), tmp_path)
        evolved = lazy.evolve(mappings=list(lazy.mappings), curated_ids=[])
        target = save_artifact(evolved, tmp_path / "evolved.artifact")
        before = ArtifactReader(path.read_bytes())
        after = ArtifactReader(target.read_bytes())
        for name in SECTION_ORDER:
            if name in ("mappings", "curation"):
                continue
            assert after.sections[name].checksum == before.sections[name].checksum, name
        assert after.sections["curation"].checksum != before.sections["curation"].checksum
        # And the evolved artifact reads back consistently.
        reloaded = load_artifact(target)
        assert reloaded.curated == []
        assert [m.mapping_id for m in reloaded.mappings] == [
            m.mapping_id for m in lazy.mappings
        ]
