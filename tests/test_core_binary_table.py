"""Tests for the core data model: BinaryTable, ValuePair, MappingRelationship."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.mapping import MappingRelationship


pair_strategy = st.tuples(st.text(min_size=1, max_size=8), st.text(min_size=1, max_size=8))


class TestValuePair:
    def test_reversed(self):
        assert ValuePair("a", "b").reversed() == ValuePair("b", "a")

    def test_as_tuple(self):
        assert ValuePair("a", "b").as_tuple() == ("a", "b")

    def test_hashable_and_orderable(self):
        pairs = {ValuePair("a", "b"), ValuePair("a", "b"), ValuePair("b", "a")}
        assert len(pairs) == 2
        assert sorted(pairs)[0] == ValuePair("a", "b")


class TestBinaryTable:
    def test_from_rows(self):
        table = BinaryTable.from_rows("t1", [("a", "1"), ("b", "2")])
        assert len(table) == 2
        assert ("a", "1") in table

    def test_deduplicates_pairs(self):
        table = BinaryTable.from_rows("t1", [("a", "1"), ("a", "1"), ("b", "2")])
        assert len(table) == 2

    def test_left_right_values_preserve_order(self):
        table = BinaryTable.from_rows("t1", [("b", "2"), ("a", "1"), ("b", "2")])
        assert table.left_values == ["b", "a"]
        assert table.right_values == ["2", "1"]

    def test_pair_set_and_mapping_dict(self):
        table = BinaryTable.from_rows("t1", [("a", "1"), ("b", "2")])
        assert table.pair_set() == {("a", "1"), ("b", "2")}
        assert table.mapping_dict() == {"a": "1", "b": "2"}

    def test_equality_is_by_id(self):
        first = BinaryTable.from_rows("same", [("a", "1")])
        second = BinaryTable.from_rows("same", [("b", "2")])
        assert first == second
        assert hash(first) == hash(second)

    def test_fd_ratio_perfect(self):
        table = BinaryTable.from_rows("t1", [("a", "1"), ("b", "2"), ("c", "3")])
        assert table.fd_ratio() == 1.0
        assert table.is_functional()

    def test_fd_ratio_with_violation(self):
        table = BinaryTable.from_rows(
            "t1", [("a", "1"), ("a", "2"), ("b", "3"), ("c", "4")]
        )
        assert table.fd_ratio() == pytest.approx(3 / 4)
        assert not table.is_functional(theta=0.95)
        assert table.is_functional(theta=0.7)

    def test_fd_ratio_empty_table(self):
        assert BinaryTable("empty", []).fd_ratio() == 1.0

    def test_reversed_table(self):
        table = BinaryTable.from_rows("t1", [("a", "1")], left_name="L", right_name="R")
        reversed_table = table.reversed()
        assert reversed_table.pairs == [ValuePair("1", "a")]
        assert reversed_table.left_name == "R"
        assert reversed_table.right_name == "L"
        assert reversed_table.table_id != table.table_id

    def test_contains_accepts_tuples_and_pairs(self):
        table = BinaryTable.from_rows("t1", [("a", "1")])
        assert ("a", "1") in table
        assert ValuePair("a", "1") in table
        assert ("a", "2") not in table

    @given(st.lists(pair_strategy, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_dedup_preserves_distinct_count(self, rows):
        table = BinaryTable.from_rows("t", rows)
        assert len(table) == len(set(rows))

    @given(st.lists(pair_strategy, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_fd_ratio_in_unit_interval(self, rows):
        ratio = BinaryTable.from_rows("t", rows).fd_ratio()
        assert 0.0 <= ratio <= 1.0

    @given(st.lists(pair_strategy, min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_reversed_twice_has_same_pairs(self, rows):
        table = BinaryTable.from_rows("t", rows)
        double = table.reversed().reversed()
        assert double.pair_set() == table.pair_set()


class TestMappingRelationship:
    def _tables(self) -> list[BinaryTable]:
        first = BinaryTable.from_rows(
            "t1", [("a", "1"), ("b", "2")], domain="x.org", left_name="name", right_name="code"
        )
        second = BinaryTable.from_rows(
            "t2", [("b", "2"), ("c", "3")], domain="y.org", left_name="name", right_name="code"
        )
        return [first, second]

    def test_from_tables_unions_pairs(self):
        mapping = MappingRelationship.from_tables("m1", self._tables())
        assert mapping.pair_set() == {("a", "1"), ("b", "2"), ("c", "3")}
        assert mapping.num_source_tables == 2
        assert mapping.popularity == 2
        assert mapping.column_names == ("name", "code")

    def test_dedup_on_construction(self):
        mapping = MappingRelationship("m", [ValuePair("a", "1"), ValuePair("a", "1")])
        assert len(mapping) == 1

    def test_as_dict_first_pair_wins(self):
        mapping = MappingRelationship("m", [ValuePair("a", "1"), ValuePair("a", "2")])
        assert mapping.as_dict() == {"a": "1"}

    def test_conflict_count_and_is_functional(self):
        clean = MappingRelationship("m", [ValuePair("a", "1"), ValuePair("b", "2")])
        assert clean.conflict_count() == 0
        assert clean.is_functional()
        dirty = MappingRelationship("m", [ValuePair("a", "1"), ValuePair("a", "2")])
        assert dirty.conflict_count() == 1
        assert not dirty.is_functional()

    def test_fd_ratio(self):
        mapping = MappingRelationship(
            "m", [ValuePair("a", "1"), ValuePair("a", "2"), ValuePair("b", "3")]
        )
        assert mapping.fd_ratio() == pytest.approx(2 / 3)

    def test_left_right_values(self):
        mapping = MappingRelationship("m", [ValuePair("a", "1"), ValuePair("b", "2")])
        assert mapping.left_values() == {"a", "b"}
        assert mapping.right_values() == {"1", "2"}

    def test_to_binary_table_round_trip(self):
        mapping = MappingRelationship.from_tables("m1", self._tables())
        table = mapping.to_binary_table()
        assert table.pair_set() == mapping.pair_set()
        assert table.table_id == "m1"

    def test_empty_mapping(self):
        mapping = MappingRelationship("empty", [])
        assert len(mapping) == 0
        assert mapping.is_functional()
        assert mapping.fd_ratio() == 1.0

    def test_contains(self):
        mapping = MappingRelationship("m", [ValuePair("a", "1")])
        assert ("a", "1") in mapping
        assert ("a", "2") not in mapping
