"""Wire-transport suite: frame codec units + live server/client equivalence.

Three layers, mirroring :mod:`repro.net`'s structure:

1. **Codec units** — frame and payload round trips (hypothesis-driven over
   arbitrary payload bytes), plus every way a stream can be damaged: bad
   magic, checksum corruption, torn frames, clean EOF.
2. **Server/client pairs** — an in-process :class:`ReplicaServer` over the
   test artifact, checked byte-identical against a synchronous
   :class:`MappingService` oracle (results *and* error envelopes), with
   deadline enforcement on both sides of the socket, delta application over
   the wire, garbage-robustness, drain, and idempotent close.
3. **Chaos** — the transport fault sites (``conn_reset`` / ``torn_frame`` /
   ``slow_network``) injected under the pinned ``REPRO_FAULT_SEED``: every
   batch either fails with a transport/deadline error the router knows how
   to fail over, or returns exactly the oracle's answer.  Nothing in between.

The subprocess path (READY handshake, ``python -m repro.net.server``) gets
one directed test; the full cluster-over-subprocesses equivalence lives in
``tests/test_cluster_properties.py`` under ``transport="tcp"``.
"""

from __future__ import annotations

import os
import socket
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications import MappingService
from repro.applications.service import LookupRequest
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.faults import FaultPlan, injected_faults
from repro.net import codec
from repro.net.client import RemoteReplica
from repro.net.codec import (
    ChecksumError,
    HEADER_SIZE,
    ProtocolError,
    TornFrameError,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.net.server import serve_shard, spawn_replica_process
from repro.serving import DaemonStoppedError, DeadlineExpiredError

pytestmark = pytest.mark.net

#: Pinned by the chaos CI leg (REPRO_FAULT_SEED) for reproducible socket chaos.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260808"))

LOOKUP = LookupRequest(
    op="values",
    values=("California", "Texas"),
    min_containment=0.5,
    top_k=5,
)
PAIR_LOOKUP = LookupRequest(
    op="pairs",
    values=(("California", "CA"), ("Texas", "junk")),
    min_containment=0.4,
    top_k=3,
)
#: min_containment out of range: must come back as the oracle's exact error
#: envelope, not a transport failure.
BAD_LOOKUP = LookupRequest(
    op="values", values=("California",), min_containment=7.5, top_k=5
)


def canonical(responses) -> str:
    """Byte-comparable form of a batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


# ---------------------------------------------------------------------------------------
# Fixtures: one artifact, one in-process server, one sync oracle
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def artifact_path(store_corpus, tmp_path_factory):
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("net") / "a.gz")


@pytest.fixture(scope="module")
def oracle(artifact_path) -> MappingService:
    return MappingService.from_artifact(artifact_path)


@pytest.fixture(scope="module")
def server(artifact_path):
    server = serve_shard(artifact_path, watch=False, workers=2)
    yield server
    server.close()


@pytest.fixture()
def client(server):
    client = RemoteReplica("127.0.0.1", server.port, request_timeout=15.0)
    yield client
    # drain=False: a DRAIN frame would shut the shared module-scoped server
    # down for every later test — this is a client disconnect, not a stop.
    client.close(drain=False)


def raw_connection(server) -> socket.socket:
    conn = socket.create_connection(("127.0.0.1", server.port), timeout=10.0)
    conn.settimeout(10.0)
    return conn


# ---------------------------------------------------------------------------------------
# 1. Codec units
# ---------------------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    frame_type=st.integers(min_value=1, max_value=13),
    request_id=st.integers(min_value=0, max_value=2**64 - 1),
    payload=st.binary(max_size=2048),
)
def test_frame_round_trip(frame_type, request_id, payload):
    data = encode_frame(frame_type, request_id, payload)
    assert len(data) == HEADER_SIZE + len(payload)
    frame = decode_frame(data)
    assert (frame.frame_type, frame.request_id, frame.payload) == (
        frame_type,
        request_id,
        payload,
    )


def test_frame_rejects_bad_magic():
    data = bytearray(encode_frame(codec.T_PING, 1, b"x"))
    data[0] ^= 0xFF
    with pytest.raises(ProtocolError):
        decode_frame(bytes(data))


def test_frame_rejects_checksum_corruption():
    data = bytearray(encode_frame(codec.T_LOOKUP, 7, b"payload-bytes"))
    data[-1] ^= 0xFF  # damage the payload, keep the stored checksum
    with pytest.raises(ChecksumError):
        decode_frame(bytes(data))


def test_read_frame_torn_stream_and_clean_eof():
    # Torn mid-frame: half a valid frame then EOF.
    left, right = socket.socketpair()
    try:
        data = encode_frame(codec.T_PING, 3, b"abcdef")
        left.sendall(data[: len(data) - 4])
        left.close()
        with pytest.raises(TornFrameError):
            read_frame(right)
    finally:
        right.close()
    # Clean EOF at a frame boundary is a graceful close, not an error.
    left, right = socket.socketpair()
    try:
        left.sendall(encode_frame(codec.T_PING, 4, b"ok"))
        left.close()
        frame = read_frame(right)
        assert frame is not None and frame.payload == b"ok"
        assert read_frame(right) is None
    finally:
        right.close()


def test_lookup_request_payload_round_trip():
    for deadline in (None, 2.5):
        payload = codec.encode_lookup_request(
            (LOOKUP, PAIR_LOOKUP), deadline_remaining=deadline
        )
        requests, remaining = codec.decode_lookup_request(payload)
        assert requests == (LOOKUP, PAIR_LOOKUP)
        assert remaining == deadline


def test_delta_generation_and_error_payload_round_trips(oracle):
    mapping = oracle.mapping_pool[0]
    payload = codec.encode_delta_request(
        [mapping], ["gone-1", "gone-2"], seq=41, escalation_ratio=0.5, source="s"
    )
    delta = codec.decode_delta_request(payload)
    assert [m.mapping_id for m in delta["upserts"]] == [mapping.mapping_id]
    assert delta["removed"] == ["gone-1", "gone-2"]
    assert (delta["seq"], delta["escalation_ratio"], delta["source"]) == (41, 0.5, "s")

    assert codec.decode_generation(codec.encode_generation(9)) == 9

    kind, message = codec.decode_error(codec.encode_error(ValueError("bad input")))
    assert (kind, message) == ("ValueError", "bad input")


# ---------------------------------------------------------------------------------------
# 2. Server / client pairs
# ---------------------------------------------------------------------------------------
def test_remote_lookup_batches_match_oracle(client, server, oracle):
    batch = (LOOKUP, PAIR_LOOKUP, BAD_LOOKUP)
    ticket = client.submit("cluster_lookup", batch, deadline=10.0, block=True)
    result = ticket.result(timeout=15.0)
    assert canonical(result.responses) == canonical(oracle.cluster_lookup(batch))
    assert result.generation >= 1
    assert result.fingerprint == server.daemon.health()["fingerprint"]


def test_submit_surface_matches_daemon_contract(client):
    with pytest.raises(ValueError):
        client.submit("autofill", ())
    assert client.ping() >= 0.0


def test_closed_client_fails_fast(server):
    client = RemoteReplica("127.0.0.1", server.port)
    client.close(drain=False)
    client.close(drain=False)  # idempotent
    assert client.closed
    with pytest.raises(DaemonStoppedError):
        client.submit("cluster_lookup", (LOOKUP,))


def test_deadline_fails_fast_client_side_without_daemon_work(client, server):
    served_before = server.daemon.stats.total_requests
    with pytest.raises(DeadlineExpiredError):
        client.submit("cluster_lookup", (LOOKUP,), deadline=0.0)
    assert server.daemon.stats.total_requests == served_before


def test_injected_network_stall_consumes_the_budget(client, server):
    served_before = server.daemon.stats.total_requests
    plan = FaultPlan(
        seed=FAULT_SEED,
        slow_network_rate=1.0,
        slow_network_seconds=0.05,
        max_faults=1,
    )
    with injected_faults(plan) as injector:
        with pytest.raises(DeadlineExpiredError):
            client.submit("cluster_lookup", (LOOKUP,), deadline=0.02)
        assert injector.injected.get("slow_network") == 1
    # The stall ate the whole budget before the frame went out.
    assert server.daemon.stats.total_requests == served_before


def test_server_enforces_the_frame_deadline(server, oracle):
    # A frame that arrives with its budget already spent (encoded remaining
    # 0.0 — only a slow wire can produce this; the client fails such sends
    # fast) must be refused before daemon submit, and counted as expired.
    expired_before = server.daemon.stats.expired
    payload = codec.encode_lookup_request((LOOKUP,), deadline_remaining=0.0)
    conn = raw_connection(server)
    try:
        conn.sendall(encode_frame(codec.T_LOOKUP, 1, payload))
        frame = read_frame(conn)
        assert frame is not None and frame.frame_type == codec.T_ERROR
        kind, _message = codec.decode_error(frame.payload)
        assert kind == "DeadlineExpiredError"
    finally:
        conn.close()
    assert server.daemon.stats.expired == expired_before + 1


def test_garbage_bytes_kill_only_their_connection(server, client, oracle):
    conn = raw_connection(server)
    try:
        conn.sendall(b"this is definitely not a frame" * 4)
        frame = read_frame(conn)
        # The server answers with a protocol error envelope, then hangs up.
        assert frame is not None and frame.frame_type == codec.T_ERROR
        kind, _message = codec.decode_error(frame.payload)
        assert kind == "ProtocolError"
        # The server hangs up: clean FIN, or RST when our garbage is still
        # sitting unread in its kernel buffer.  Either way — cut off.
        try:
            assert conn.recv(1) == b""
        except ConnectionResetError:
            pass
    finally:
        conn.close()
    # The accept loop and other connections are unharmed.
    batch = (LOOKUP,)
    result = client.submit("cluster_lookup", batch, deadline=10.0).result(15.0)
    assert canonical(result.responses) == canonical(oracle.cluster_lookup(batch))


def test_client_reconnects_after_injected_reset(client, oracle):
    client.ping()  # establish the first connection
    plan = FaultPlan(seed=FAULT_SEED, conn_reset_rate=1.0, max_faults=1)
    with injected_faults(plan):
        with pytest.raises(ConnectionResetError):
            client.submit("cluster_lookup", (LOOKUP,), deadline=10.0)
    result = client.submit("cluster_lookup", (LOOKUP,), deadline=10.0).result(15.0)
    assert canonical(result.responses) == canonical(oracle.cluster_lookup((LOOKUP,)))
    assert client.stats.snapshot()["reconnects"] >= 1


def test_apply_delta_over_the_wire(artifact_path, oracle):
    # A dedicated server: this test mutates the served pool.
    server = serve_shard(artifact_path, watch=False, workers=1)
    try:
        with RemoteReplica("127.0.0.1", server.port) as client:
            batch = (LOOKUP, PAIR_LOOKUP)
            baseline = client.submit("cluster_lookup", batch, deadline=10.0)
            assert canonical(baseline.result(15.0).responses) == canonical(
                oracle.cluster_lookup(batch)
            )
            victim = oracle.cluster_lookup((LOOKUP,))[0].result[0].mapping
            # Remove one mapping over the wire: it must vanish from answers.
            client.apply_delta(
                [], [victim.mapping_id], seq=1, escalation_ratio=1.0
            )
            result = client.submit("cluster_lookup", batch, deadline=10.0)
            hit_ids = {
                match.mapping.mapping_id
                for response in result.result(15.0).responses
                for match in response.result or ()
            }
            assert victim.mapping_id not in hit_ids
            # Upsert it back (the mapping crosses the wire as a codec
            # section): answers return to the oracle byte-for-byte.
            client.apply_delta([victim], [], seq=2, escalation_ratio=1.0)
            result = client.submit("cluster_lookup", batch, deadline=10.0)
            assert canonical(result.result(15.0).responses) == canonical(
                oracle.cluster_lookup(batch)
            )
            health = client.health()
            assert health["deltas_applied"] == 2
            assert health["last_delta_seq"] == 2
    finally:
        server.close()


def test_drain_closes_the_server_and_close_is_idempotent(artifact_path):
    server = serve_shard(artifact_path, watch=False, workers=1)
    client = RemoteReplica("127.0.0.1", server.port)
    client.ping()
    client.close(drain=True)  # DRAIN frame: server drains then shuts down
    deadline = time.monotonic() + 10.0
    while not server.closed and time.monotonic() < deadline:
        time.sleep(0.02)
    assert server.closed
    server.close()  # double close (after the drain already closed it)
    client.close()  # and the client double close


# ---------------------------------------------------------------------------------------
# 3. Subprocess handshake + chaos
# ---------------------------------------------------------------------------------------
def test_spawned_replica_process_serves_the_artifact(artifact_path, oracle):
    process, host, port = spawn_replica_process(
        artifact_path, watch=False, workers=1
    )
    try:
        with RemoteReplica(host, port, request_timeout=15.0) as client:
            batch = (LOOKUP, BAD_LOOKUP)
            result = client.submit("cluster_lookup", batch, deadline=15.0)
            assert canonical(result.result(20.0).responses) == canonical(
                oracle.cluster_lookup(batch)
            )
            assert client.server_health()["status"] == "ok"
    finally:
        process.terminate()
        process.wait(timeout=10)


def test_chaos_every_batch_fails_over_or_matches_oracle(server, oracle):
    plan = FaultPlan(
        seed=FAULT_SEED,
        conn_reset_rate=0.2,
        torn_frame_rate=0.2,
        slow_network_rate=0.3,
        slow_network_seconds=0.005,
        max_faults=8,
    )
    want = canonical(oracle.cluster_lookup((LOOKUP,)))
    transport_errors = 0
    client = RemoteReplica("127.0.0.1", server.port, request_timeout=15.0)
    try:
        with injected_faults(plan) as injector:
            for _ in range(30):
                try:
                    result = client.submit(
                        "cluster_lookup", (LOOKUP,), deadline=10.0
                    ).result(15.0)
                except (ConnectionError, TornFrameError, DeadlineExpiredError):
                    transport_errors += 1  # the router's failover classes
                    continue
                assert canonical(result.responses) == want
            assert injector.total_injected > 0
            assert transport_errors >= injector.injected.get(
                "conn_reset", 0
            ) + injector.injected.get("torn_frame", 0)
        # Chaos off: the same client serves cleanly again (reconnected).
        result = client.submit("cluster_lookup", (LOOKUP,), deadline=10.0)
        assert canonical(result.result(15.0).responses) == want
    finally:
        client.close(drain=False)
