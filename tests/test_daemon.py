"""Concurrency suite for the synthesis service daemon (repro/serving).

Covers the daemon invariants that only show up under concurrency:

* ``ServiceStats`` keeps exact counts under many-thread contention;
* hot-reload is atomic — no batch ever observes a half-swapped generation,
  and every batch's answers are byte-identical to synchronous
  :class:`MappingService` calls against the generation it was tagged with;
* backpressure (bounded queue) and per-batch deadline expiry;
* clean shutdown with in-flight work, draining or cancelling the backlog;
* the :class:`ArtifactWatcher` end-to-end: a ``refresh_artifact`` publish
  hot-swaps the daemon, and damaged artifact bytes are never swapped in.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
    ServiceStats,
)
from repro.core.binary_table import ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import get_seed_relation
from repro.serving import (
    AsyncDaemonClient,
    DaemonStoppedError,
    DeadlineExpiredError,
    QueueFullError,
    SynthesisDaemon,
)

pytestmark = pytest.mark.daemon

STATES = [left for left, _ in get_seed_relation("state_abbrev").pairs]
ABBREVS = [right for _, right in get_seed_relation("state_abbrev").pairs]


def mapping_from_seed(name: str) -> MappingRelationship:
    relation = get_seed_relation(name)
    return MappingRelationship(
        mapping_id=name,
        pairs=[ValuePair(left, right) for left, right in relation.pairs],
        domains={"seed"},
    )


def seed_service() -> MappingService:
    return MappingService(
        [mapping_from_seed("state_abbrev"), mapping_from_seed("country_iso3")]
    )


def variant_service(tag: str) -> MappingService:
    """A service whose fill answers are distinguishable per variant tag."""
    pairs = [
        ValuePair(left, f"{right}:{tag}")
        for left, right in get_seed_relation("state_abbrev").pairs
    ]
    mapping = MappingRelationship(
        mapping_id=f"state_abbrev:{tag}", pairs=pairs, domains={"seed"}
    )
    return MappingService([mapping])


def answers(responses) -> list[tuple]:
    """The comparable part of a response batch (everything but timing)."""
    return [(r.kind, r.request_index, r.result, r.error) for r in responses]


class GatedService(MappingService):
    """A service whose batches block until the test opens the gate."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _serve_batch(self, kind, requests, handler):
        self.entered.set()
        assert self.gate.wait(timeout=30), "test gate never opened"
        return super()._serve_batch(kind, requests, handler)


def gated_daemon(**kwargs) -> tuple[SynthesisDaemon, GatedService]:
    service = GatedService([mapping_from_seed("state_abbrev")])
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("queue_size", 8)
    return SynthesisDaemon(service, **kwargs), service


# ---------------------------------------------------------------------------------------
# ServiceStats thread-safety
# ---------------------------------------------------------------------------------------
class TestServiceStatsConcurrency:
    THREADS = 8
    PER_THREAD = 2500

    def test_record_keeps_exact_counts_under_contention(self):
        stats = ServiceStats()
        barrier = threading.Barrier(self.THREADS)

        def hammer(thread_index: int) -> None:
            barrier.wait()
            for i in range(self.PER_THREAD):
                # Alternate kinds and inject errors on a fixed schedule so the
                # expected per-kind totals are exact.
                kind = "autofill" if i % 2 == 0 else "autojoin"
                stats.record(kind, elapsed=1.0, ok=(i % 5 != 0))
                stats.record_batch()

        threads = [
            threading.Thread(target=hammer, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = self.THREADS * self.PER_THREAD
        per_kind = total // 2
        # i % 5 == 0 fails; among 0..2499, evens (autofill) hit 0,10,20,... and
        # odds (autojoin) hit 5,15,25,...: 250 failures each per thread.
        failures_per_kind = self.THREADS * (self.PER_THREAD // 10)
        assert stats.requests == {"autofill": per_kind, "autojoin": per_kind}
        assert stats.errors == {
            "autofill": failures_per_kind,
            "autojoin": failures_per_kind,
        }
        # elapsed=1.0 sums exactly in floating point, so lost updates would
        # show up here too, not just in the integer counters.
        assert stats.serve_seconds == {
            "autofill": float(per_kind),
            "autojoin": float(per_kind),
        }
        assert stats.batches == total
        assert stats.total_requests == total

    def test_latency_percentile_window(self):
        stats = ServiceStats()
        for value in [0.001, 0.002, 0.003, 0.004, 0.1]:
            stats.record("autofill", elapsed=value, ok=True)
        assert stats.latency_percentile("autofill", 0.0) == 0.001
        assert stats.latency_percentile("autofill", 0.5) == 0.003
        assert stats.latency_percentile("autofill", 1.0) == 0.1
        assert stats.latency_percentile("missing-kind", 0.95) == 0.0
        with pytest.raises(ValueError):
            stats.latency_percentile("autofill", 1.5)

    def test_as_dict_is_generation_tagged(self):
        stats = ServiceStats(generation=7)
        stats.record("autofill", elapsed=0.5, ok=True)
        snapshot = stats.as_dict()
        assert snapshot["generation"] == 7
        assert snapshot["total_requests"] == 1


# ---------------------------------------------------------------------------------------
# Basic daemon behaviour
# ---------------------------------------------------------------------------------------
class TestDaemonServing:
    def test_answers_match_synchronous_service(self):
        reference = seed_service()
        requests = {
            "autofill": [
                FillRequest(keys=("California", "Texas", "Ohio", "Nevada")),
                FillRequest(keys=("Kenya", "Brazil", "Japan", "Norway")),
            ],
            "autojoin": [
                JoinRequest(
                    left_keys=("California", "Texas"), right_keys=("TX", "CA")
                )
            ],
            "autocorrect": [
                CorrectRequest(values=("California", "CA", "Washington", "WA", "Oregon"))
            ],
        }
        with SynthesisDaemon(seed_service(), workers=3, queue_size=8) as daemon:
            tickets = {
                kind: daemon.submit(kind, batch) for kind, batch in requests.items()
            }
            for kind, ticket in tickets.items():
                result = ticket.result(timeout=10)
                assert result.kind == kind
                assert result.generation == 1
                expected = getattr(reference, kind)(requests[kind])
                assert answers(result.responses) == answers(expected)
                assert repr(answers(result.responses)) == repr(answers(expected))
                assert result.total_seconds >= result.served_seconds >= 0.0

    def test_per_request_errors_stay_enveloped(self):
        with SynthesisDaemon(seed_service(), workers=2) as daemon:
            result = daemon.autofill(
                [
                    FillRequest(keys=("California",), examples={9: "CA"}),
                    FillRequest(keys=("California", "Texas"), examples={0: "CA"}),
                ]
            ).result(timeout=10)
            assert not result.ok
            assert not result.responses[0].ok
            assert "out of range" in result.responses[0].error
            assert result.responses[1].ok

    def test_unknown_kind_and_bad_deadline_rejected(self):
        with SynthesisDaemon(seed_service(), workers=1) as daemon:
            with pytest.raises(ValueError, match="unknown request kind"):
                daemon.submit("autoguess", [])
            with pytest.raises(ValueError, match="deadline"):
                daemon.autofill([], deadline=-1.0)

    def test_drain_returns_completed_tickets(self):
        with SynthesisDaemon(seed_service(), workers=2, queue_size=32) as daemon:
            tickets = [
                daemon.autofill([FillRequest(keys=tuple(STATES[i : i + 3]))])
                for i in range(12)
            ]
            drained = daemon.drain(timeout=30)
            assert set(drained) >= set(tickets)
            assert all(ticket.done() for ticket in tickets)

    def test_daemon_stats_accumulate_across_workers(self):
        with SynthesisDaemon(seed_service(), workers=4, queue_size=64) as daemon:
            for i in range(20):
                daemon.autofill([FillRequest(keys=tuple(STATES[i % 10 : i % 10 + 3]))])
            daemon.drain(timeout=30)
            stats = daemon.stats
            assert stats.generation == 1
            assert stats.batches == 20
            assert stats.requests == {"autofill": 20}
            assert stats.latency_percentile("autofill", 0.5) > 0.0


# ---------------------------------------------------------------------------------------
# Backpressure and deadlines
# ---------------------------------------------------------------------------------------
class TestBackpressure:
    def test_queue_full_raises(self):
        daemon, service = gated_daemon(workers=1, queue_size=2)
        try:
            first = daemon.autofill([FillRequest(keys=("California",))])
            assert service.entered.wait(timeout=10)  # worker is now gated
            queued = [
                daemon.autofill([FillRequest(keys=("Texas",))]) for _ in range(2)
            ]
            with pytest.raises(QueueFullError):
                daemon.autofill([FillRequest(keys=("Ohio",))])
            with pytest.raises(QueueFullError):
                daemon.autofill(
                    [FillRequest(keys=("Ohio",))], block=True, timeout=0.05
                )
            service.gate.set()
            for ticket in [first, *queued]:
                assert ticket.result(timeout=10).ok
        finally:
            service.gate.set()
            daemon.close()

    def test_blocking_submit_waits_for_capacity(self):
        daemon, service = gated_daemon(workers=1, queue_size=1)
        try:
            first = daemon.autofill([FillRequest(keys=("California",))])
            assert service.entered.wait(timeout=10)
            filler = daemon.autofill([FillRequest(keys=("Texas",))])

            def release_soon():
                time.sleep(0.1)
                service.gate.set()

            threading.Thread(target=release_soon).start()
            # The queue is full; with block=True this submission waits for the
            # gate to open instead of raising.
            blocked = daemon.autofill(
                [FillRequest(keys=("Ohio",))], block=True, timeout=10
            )
            assert blocked.result(timeout=10).ok
            assert first.result(timeout=10).ok
            assert filler.result(timeout=10).ok
        finally:
            service.gate.set()
            daemon.close()

    def test_deadline_expiry_in_queue(self):
        daemon, service = gated_daemon(workers=1, queue_size=8)
        try:
            first = daemon.autofill([FillRequest(keys=("California",))])
            assert service.entered.wait(timeout=10)
            doomed = daemon.autofill(
                [FillRequest(keys=("Texas",))], deadline=0.05
            )
            relaxed = daemon.autofill(
                [FillRequest(keys=("Ohio",))], deadline=30.0
            )
            time.sleep(0.2)  # let the doomed batch's deadline lapse in-queue
            service.gate.set()
            assert first.result(timeout=10).ok
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=10)
            assert relaxed.result(timeout=10).ok
        finally:
            service.gate.set()
            daemon.close()

    def test_explicit_zero_deadline_fails_fast(self):
        """deadline=0.0 means 'already out of budget', not 'no deadline'."""
        daemon, service = gated_daemon(workers=1, queue_size=8)
        try:
            first = daemon.autofill([FillRequest(keys=("California",))])
            assert service.entered.wait(timeout=10)
            doomed = daemon.autofill([FillRequest(keys=("Texas",))], deadline=0.0)
            time.sleep(0.01)
            service.gate.set()
            assert first.result(timeout=10).ok
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=10)
        finally:
            service.gate.set()
            daemon.close()

    def test_default_deadline_from_constructor(self):
        daemon, service = gated_daemon(workers=1, queue_size=8, default_deadline=0.05)
        try:
            first = daemon.autofill([FillRequest(keys=("California",))])
            assert service.entered.wait(timeout=10)
            doomed = daemon.autofill([FillRequest(keys=("Texas",))])
            time.sleep(0.2)
            service.gate.set()
            assert first.result(timeout=10).ok
            with pytest.raises(DeadlineExpiredError):
                doomed.result(timeout=10)
        finally:
            service.gate.set()
            daemon.close()


# ---------------------------------------------------------------------------------------
# Hot reload atomicity
# ---------------------------------------------------------------------------------------
class TestHotReload:
    def test_no_batch_observes_a_half_swapped_generation(self):
        """Batches racing many reloads always match exactly one generation."""
        variants = ("a", "b")
        expected: dict[str, list] = {}
        request = FillRequest(keys=tuple(STATES[:8]))
        for tag in variants:
            expected[tag] = answers(variant_service(tag).autofill([request]))
        # The two variants must actually disagree, or the test proves nothing.
        assert expected["a"] != expected["b"]

        daemon = SynthesisDaemon(variant_service("a"), workers=3, queue_size=64)
        variant_of_generation = {1: "a"}
        stop_swapping = threading.Event()

        def swapper():
            toggle = 0
            while not stop_swapping.is_set():
                toggle += 1
                tag = variants[toggle % 2]
                generation = daemon.reload(variant_service(tag), source=f"swap:{tag}")
                variant_of_generation[generation.number] = tag
                time.sleep(0.002)

        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        try:
            tickets = []
            for _ in range(120):
                tickets.append(daemon.autofill([request]))
                if len(tickets) % 16 == 0:
                    daemon.drain(timeout=30)
            results = [ticket.result(timeout=30) for ticket in tickets]
        finally:
            stop_swapping.set()
            swap_thread.join()
            daemon.close()

        observed_generations = set()
        for result in results:
            tag = variant_of_generation[result.generation]
            assert answers(result.responses) == expected[tag], (
                f"batch served by generation {result.generation} ({tag!r}) does "
                "not match that generation's synchronous answers"
            )
            observed_generations.add(result.generation)
        assert len(observed_generations) > 1, "swaps never interleaved with serving"

    def test_in_flight_batch_finishes_on_its_snapshot(self):
        service = GatedService([mapping_from_seed("state_abbrev")])
        daemon = SynthesisDaemon(service, workers=1, queue_size=8)
        try:
            reference = answers(
                seed_service().autofill([FillRequest(keys=tuple(STATES[:4]))])
            )
            ticket = daemon.autofill([FillRequest(keys=tuple(STATES[:4]))])
            assert service.entered.wait(timeout=10)
            daemon.reload(variant_service("late"), source="swap:late")
            service.gate.set()
            result = ticket.result(timeout=10)
            assert result.generation == 1
            assert answers(result.responses) == reference
        finally:
            service.gate.set()
            daemon.close()

    def test_generations_keep_separate_tagged_stats(self):
        daemon = SynthesisDaemon(seed_service(), workers=1)
        try:
            daemon.autofill([FillRequest(keys=("California",))]).result(timeout=10)
            daemon.reload(seed_service(), source="swap")
            daemon.autofill([FillRequest(keys=("Texas",))]).result(timeout=10)
            daemon.autofill([FillRequest(keys=("Ohio",))]).result(timeout=10)
            first, second = daemon.stats_by_generation()
            assert (first.generation, second.generation) == (1, 2)
            assert first.requests == {"autofill": 1}
            assert second.requests == {"autofill": 2}
            assert daemon.stats is second
        finally:
            daemon.close()


# ---------------------------------------------------------------------------------------
# Shutdown
# ---------------------------------------------------------------------------------------
class TestShutdown:
    def test_close_drains_in_flight_and_queued_work(self):
        daemon, service = gated_daemon(workers=1, queue_size=8)
        tickets = [
            daemon.autofill([FillRequest(keys=(state,))]) for state in STATES[:5]
        ]
        assert service.entered.wait(timeout=10)
        closer = threading.Thread(target=daemon.close, kwargs={"drain": True})
        closer.start()
        time.sleep(0.05)
        assert closer.is_alive(), "close(drain=True) must wait for the backlog"
        service.gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        for ticket in tickets:
            assert ticket.result(timeout=1).ok
        with pytest.raises(DaemonStoppedError):
            daemon.autofill([FillRequest(keys=("Texas",))])

    def test_close_without_drain_cancels_queued_work(self):
        daemon, service = gated_daemon(workers=1, queue_size=8)
        tickets = [
            daemon.autofill([FillRequest(keys=(state,))]) for state in STATES[:5]
        ]
        assert service.entered.wait(timeout=10)
        closer = threading.Thread(target=daemon.close, kwargs={"drain": False})
        closer.start()
        time.sleep(0.05)
        service.gate.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        # The in-flight batch completes; everything still queued is cancelled.
        assert tickets[0].result(timeout=1).ok
        outcomes = [ticket.exception(timeout=1) for ticket in tickets[1:]]
        assert all(isinstance(exc, DaemonStoppedError) for exc in outcomes)

    def test_close_is_idempotent(self):
        daemon = SynthesisDaemon(seed_service(), workers=2)
        daemon.close()
        daemon.close(drain=False)
        assert daemon.closed


# ---------------------------------------------------------------------------------------
# Artifact watcher: publish -> hot swap
# ---------------------------------------------------------------------------------------
def _store_config(**overrides) -> SynthesisConfig:
    return SynthesisConfig(
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        **overrides,
    )


def _grow(corpus: TableCorpus) -> TableCorpus:
    from store_helpers import make_fragment_corpus, seed_fragments

    extra = make_fragment_corpus(
        seed_fragments("city_state", "cs"), headers=("city", "state"), name="delta"
    )
    return TableCorpus(corpus.tables() + extra.tables(), name=f"{corpus.name}+delta")


FILL_BATCH = [
    FillRequest(keys=("California", "Texas", "Ohio", "Washington")),
    FillRequest(keys=("Kenya", "Brazil", "Japan", "Norway")),
]


class TestArtifactWatcher:
    def _wait_for_generation(self, daemon, number, timeout=15.0) -> None:
        deadline = time.monotonic() + timeout
        while daemon.generation.number < number:
            if time.monotonic() > deadline:
                pytest.fail(
                    f"daemon never reached generation {number}; "
                    f"stuck at {daemon.generation.number}"
                )
            time.sleep(0.01)

    def test_refresh_publish_hot_swaps_atomically(self, store_corpus, tmp_path):
        path = tmp_path / "served.artifact.gz"
        config = _store_config(artifact_path=str(path), daemon_poll_seconds=0.05)
        pipeline = SynthesisPipeline(config)
        pipeline.run(store_corpus)  # auto-saves to config.artifact_path
        daemon = pipeline.start_daemon(workers=2, queue_size=16)
        try:
            before = daemon.autofill(FILL_BATCH).result(timeout=15)
            assert before.generation == 1
            first_fingerprint = daemon.generation.fingerprint
            assert first_fingerprint

            pipeline.refresh(_grow(store_corpus))  # auto-saves -> notify -> swap
            self._wait_for_generation(daemon, 2)
            assert daemon.generation.fingerprint != first_fingerprint

            after = daemon.autofill(FILL_BATCH).result(timeout=15)
            assert after.generation >= 2
            reference = MappingService.from_artifact(path)
            assert answers(after.responses) == answers(reference.autofill(FILL_BATCH))
            assert daemon.watcher.reloads >= 1
        finally:
            daemon.close()

    def test_version_published_during_startup_is_not_missed(
        self, store_corpus, tmp_path
    ):
        """A publish between load and watcher start must still be picked up."""
        from repro.serving import ArtifactWatcher

        path = tmp_path / "served.artifact.gz"
        pipeline = SynthesisPipeline(_store_config())
        pipeline.run(store_corpus)
        pipeline.save_artifact(path)
        baseline = ArtifactWatcher.signature_of(path)
        # Another process publishes while this one is still building its index.
        time.sleep(0.01)  # ensure a distinct mtime_ns
        pipeline.save_artifact(path)

        seen = []
        watcher = ArtifactWatcher(
            path, lambda artifact, p: seen.append(artifact), baseline=baseline
        )
        assert watcher.check_now() is True
        assert len(seen) == 1
        assert watcher.check_now() is False  # now up to date

    def test_failing_reload_callback_keeps_watcher_alive(
        self, store_corpus, tmp_path
    ):
        """A consumer that fails mid-swap is retried, not fatal to the watcher."""
        from repro.serving import ArtifactWatcher

        path = tmp_path / "served.artifact.gz"
        pipeline = SynthesisPipeline(_store_config())
        pipeline.run(store_corpus)
        pipeline.save_artifact(path)

        calls: list[Path] = []

        def flaky_consumer(artifact, artifact_path):
            calls.append(artifact_path)
            if len(calls) == 1:
                raise RuntimeError("service build failed")

        watcher = ArtifactWatcher(path, flaky_consumer, poll_seconds=0.05)
        assert watcher.check_now(force=True) is False  # consumer blew up
        assert watcher.callback_errors == 1
        assert watcher.reloads == 0
        assert watcher.check_now(force=True) is True  # retried and succeeded
        assert watcher.reloads == 1
        assert len(calls) == 2

    def test_damaged_artifact_is_never_swapped_in(self, store_corpus, tmp_path):
        path = tmp_path / "served.artifact.gz"
        config = _store_config(artifact_path=str(path), daemon_poll_seconds=0.05)
        pipeline = SynthesisPipeline(config)
        pipeline.run(store_corpus)
        daemon = pipeline.start_daemon(workers=1, queue_size=16)
        try:
            reference = answers(
                MappingService.from_artifact(path).autofill(FILL_BATCH)
            )
            # A foreign writer clobbers the file with garbage (no atomic-save
            # notify; the poller sees the mtime change, fails the checksum,
            # and keeps serving the last good generation).
            path.write_bytes(b"not an artifact at all")
            deadline = time.monotonic() + 15
            while daemon.watcher.skipped == 0:
                assert time.monotonic() < deadline, "watcher never polled the damage"
                time.sleep(0.01)
            assert daemon.generation.number == 1
            still = daemon.autofill(FILL_BATCH).result(timeout=15)
            assert answers(still.responses) == reference

            # A valid publish then recovers via the notify hook.
            pipeline.save_artifact(path)
            self._wait_for_generation(daemon, 2)
            recovered = daemon.autofill(FILL_BATCH).result(timeout=15)
            assert answers(recovered.responses) == reference
        finally:
            daemon.close()


# ---------------------------------------------------------------------------------------
# asyncio facade
# ---------------------------------------------------------------------------------------
class TestAsyncFacade:
    def test_async_client_matches_synchronous_answers(self):
        reference = seed_service()
        daemon = SynthesisDaemon(seed_service(), workers=2, queue_size=8)

        async def scenario():
            async with AsyncDaemonClient(daemon) as client:
                fill, join, correct = await asyncio.gather(
                    client.autofill(FILL_BATCH),
                    client.autojoin(
                        [
                            JoinRequest(
                                left_keys=("California", "Texas"),
                                right_keys=("TX", "CA"),
                            )
                        ]
                    ),
                    client.autocorrect(
                        [CorrectRequest(values=("California", "CA", "WA"))]
                    ),
                )
                await client.drain(timeout=15)
                return fill, join, correct

        fill, join, correct = asyncio.run(scenario())
        assert answers(fill.responses) == answers(reference.autofill(FILL_BATCH))
        assert join.generation == 1 and correct.generation == 1
        assert daemon.closed  # the async context manager closed the daemon
