"""Tests for Table, Column, TableCorpus, and corpus persistence."""

from __future__ import annotations

import pytest

from repro.corpus.corpus import TableCorpus
from repro.corpus.loader import (
    load_corpus_csv_dir,
    load_corpus_json,
    save_corpus_csv_dir,
    save_corpus_json,
)
from repro.corpus.table import Column, Table


class TestColumn:
    def test_values_coerced_to_strings(self):
        column = Column("n", [1, 2, 3])
        assert column.values == ["1", "2", "3"]

    def test_distinct(self):
        column = Column("n", ["a", "a", "b"])
        assert column.distinct_values() == {"a", "b"}
        assert column.distinct_count() == 2

    def test_len_iter_getitem(self):
        column = Column("n", ["a", "b"])
        assert len(column) == 2
        assert list(column) == ["a", "b"]
        assert column[1] == "b"


class TestTable:
    def test_from_rows(self, simple_table):
        assert simple_table.num_rows == 5
        assert simple_table.num_columns == 3
        assert simple_table.column_names() == ["Country", "Code", "Population"]

    def test_unequal_columns_rejected(self):
        with pytest.raises(ValueError):
            Table("bad", [Column("a", ["1", "2"]), Column("b", ["1"])])

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(ValueError):
            Table.from_rows("bad", ["a", "b"], [("1",)])

    def test_column_lookup(self, simple_table):
        assert simple_table.column("Code").values[0] == "USA"
        with pytest.raises(KeyError):
            simple_table.column("missing")

    def test_rows_iteration(self, simple_table):
        rows = list(simple_table.rows())
        assert rows[0] == ("United States", "USA", "331000000")
        assert len(rows) == 5

    def test_column_pair_rows(self, simple_table):
        pairs = simple_table.column_pair_rows(0, 1)
        assert pairs[0] == ("United States", "USA")
        reversed_pairs = simple_table.column_pair_rows(1, 0)
        assert reversed_pairs[0] == ("USA", "United States")

    def test_empty_table(self):
        table = Table("empty", [])
        assert table.num_rows == 0
        assert table.num_columns == 0


class TestTableCorpus:
    def _corpus(self, simple_table) -> TableCorpus:
        corpus = TableCorpus(name="test")
        corpus.add(simple_table)
        corpus.add(
            Table.from_rows("t2", ["a", "b"], [("1", "2")], domain="other.org")
        )
        return corpus

    def test_add_and_get(self, simple_table):
        corpus = self._corpus(simple_table)
        assert len(corpus) == 2
        assert corpus.get("t-simple") is simple_table
        assert "t2" in corpus

    def test_duplicate_id_rejected(self, simple_table):
        corpus = self._corpus(simple_table)
        with pytest.raises(ValueError):
            corpus.add(simple_table)

    def test_get_missing_raises(self, simple_table):
        corpus = self._corpus(simple_table)
        with pytest.raises(KeyError):
            corpus.get("nope")

    def test_column_iteration_and_counts(self, simple_table):
        corpus = self._corpus(simple_table)
        assert corpus.num_columns == 5
        assert corpus.num_cells == 5 * 3 + 2
        assert len(list(corpus.iter_columns())) == 5

    def test_domains(self, simple_table):
        corpus = self._corpus(simple_table)
        assert corpus.domains() == {"example.org", "other.org"}

    def test_stats(self, simple_table):
        stats = self._corpus(simple_table).stats()
        assert stats["num_tables"] == 2
        assert stats["num_domains"] == 2

    def test_stats_empty(self):
        assert TableCorpus().stats()["num_tables"] == 0

    def test_sample_fraction(self, small_web_corpus):
        sample = small_web_corpus.sample(0.5, seed=3)
        assert len(sample) == round(len(small_web_corpus) * 0.5)
        assert set(sample.table_ids()) <= set(small_web_corpus.table_ids())

    def test_sample_is_deterministic(self, small_web_corpus):
        first = small_web_corpus.sample(0.3, seed=5)
        second = small_web_corpus.sample(0.3, seed=5)
        assert first.table_ids() == second.table_ids()

    def test_sample_invalid_fraction(self, small_web_corpus):
        with pytest.raises(ValueError):
            small_web_corpus.sample(0.0)
        with pytest.raises(ValueError):
            small_web_corpus.sample(1.5)

    def test_filter(self, simple_table):
        corpus = self._corpus(simple_table)
        filtered = corpus.filter(lambda table: table.domain == "example.org")
        assert len(filtered) == 1


class TestCorpusPersistence:
    def test_json_round_trip(self, small_web_corpus, tmp_path):
        path = tmp_path / "corpus.jsonl"
        save_corpus_json(small_web_corpus, path)
        loaded = load_corpus_json(path)
        assert len(loaded) == len(small_web_corpus)
        original = small_web_corpus.tables()[0]
        restored = loaded.get(original.table_id)
        assert restored.column_names() == original.column_names()
        assert list(restored.rows()) == list(original.rows())
        assert restored.metadata == original.metadata

    def test_csv_round_trip(self, simple_table, tmp_path):
        corpus = TableCorpus([simple_table], name="csv-test")
        directory = tmp_path / "corpus"
        save_corpus_csv_dir(corpus, directory)
        loaded = load_corpus_csv_dir(directory)
        assert len(loaded) == 1
        restored = loaded.get("t-simple")
        assert list(restored.rows()) == list(simple_table.rows())
        assert restored.domain == "example.org"

    def test_csv_missing_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_corpus_csv_dir(tmp_path)
