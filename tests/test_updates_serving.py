"""Live delta serving suite: daemon and cluster answers track the update stream.

Locks the serving half of the update path's exactness promise: after any
interleaving of streamed deltas, a live :class:`SynthesisDaemon` (patched in
place, no generation swap) and a sharded :class:`ClusterRouter` (scatter
patches routed by the same hash ring as the artifact cutter) serve responses
byte-identical to a synchronous :class:`MappingService` built from a **cold
pipeline rebuild** over the updated corpus — including with one replica killed
mid-stream (replication 2 keeps every shard covered).

Also covers the in-place/escalation split (small patches keep the generation
number; oversized ones take the full reload path) and delta rejection on a
closed daemon.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.cluster import ClusterRouter
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.serving import DaemonStoppedError, SynthesisDaemon
from repro.store.artifact import save_artifact
from repro.updates import DeltaLog, IncrementalEngine, UpdateStream

from store_helpers import make_fragment_corpus, seed_fragments
from test_updates_engine import CONFIG, DELTA_CATALOG

pytestmark = pytest.mark.updates

#: Probe batches touching both seed values and values only deltas introduce,
#: plus malformed shapes that must error identically through every tier.
PROBES = [
    ("autofill", [FillRequest(keys=("Alabama", "Zorblat", "Arcadia", "nope"))]),
    (
        "autojoin",
        [
            JoinRequest(
                left_keys=("Alabama", "Albania", "Quux"),
                right_keys=("AL", "ZB", "DZZ"),
            )
        ],
    ),
    (
        "autocorrect",
        [CorrectRequest(values=("AL", "ZB", "ARC", "DZZ", "junk"))],
    ),
    ("autofill", [FillRequest(keys=(), examples={-3: "bad"})]),
]


def canonical(responses) -> str:
    """Byte-comparable form of a batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


def make_corpus():
    fragments = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    return make_fragment_corpus(fragments, name="updates-serving-corpus")


@pytest.fixture(scope="module")
def base_corpus():
    return make_corpus()


def cold_oracle(corpus) -> MappingService:
    pipeline = SynthesisPipeline(CONFIG)
    pipeline.run(corpus)
    return MappingService.from_artifact_object(pipeline.last_artifact)


def daemon_for(engine: IncrementalEngine) -> SynthesisDaemon:
    service = MappingService.from_artifact_object(engine.artifact())
    return SynthesisDaemon(service, workers=1, source="updates-test")


def assert_serves_like(daemon: SynthesisDaemon, oracle: MappingService) -> None:
    for kind, batch in PROBES:
        got = daemon.submit(kind, batch).result(30).responses
        assert canonical(got) == canonical(getattr(oracle, kind)(batch))


# ---------------------------------------------------------------------------------------
# Daemon: in-place patch vs escalation
# ---------------------------------------------------------------------------------------
def test_small_patch_applies_in_place(base_corpus, tmp_path):
    # The test pool is a handful of mappings, so any real patch exceeds the
    # default 25% escalation ratio; raising it to 1.0 forces the in-place path.
    config = SynthesisConfig(
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        delta_escalation_ratio=1.0,
    )
    engine = IncrementalEngine(base_corpus, config)
    daemon = daemon_for(engine)
    try:
        stream = UpdateStream(
            engine, DeltaLog(tmp_path / "d.log"), daemon=daemon
        )
        generation_before = daemon.generation.number
        stream.apply(DELTA_CATALOG[0])

        # In-place: same generation number, patched pool, counted in health.
        assert daemon.generation.number == generation_before
        health = daemon.health()
        assert health["deltas_applied"] == 1
        assert health["last_delta_seq"] == 1
        assert health["update_lag"] >= 0.0
        pool = daemon.generation.service.mapping_pool
        assert {m.mapping_id: m for m in pool} == {
            m.mapping_id: m for m in engine.pool
        }
        assert_serves_like(daemon, cold_oracle(engine.corpus))
    finally:
        daemon.close()


def test_oversized_patch_escalates_to_reload(base_corpus, tmp_path):
    config = SynthesisConfig(
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        delta_escalation_ratio=0.001,
    )
    engine = IncrementalEngine(base_corpus, config)
    daemon = daemon_for(engine)
    try:
        stream = UpdateStream(
            engine, DeltaLog(tmp_path / "d.log"), daemon=daemon
        )
        generation_before = daemon.generation.number
        patch = stream.apply(DELTA_CATALOG[0])
        assert not patch.is_empty
        # Past the escalation ratio the daemon takes the full reload path.
        assert daemon.generation.number == generation_before + 1
        assert daemon.health()["deltas_applied"] == 1
        assert_serves_like(daemon, cold_oracle(engine.corpus))
    finally:
        daemon.close()


def test_closed_daemon_rejects_deltas(base_corpus):
    engine = IncrementalEngine(base_corpus, CONFIG)
    daemon = daemon_for(engine)
    daemon.close()
    with pytest.raises(DaemonStoppedError):
        daemon.apply_delta([], ["mapping-00000"], seq=1)


# ---------------------------------------------------------------------------------------
# Property: delta interleavings serve byte-identically to a cold rebuild
# ---------------------------------------------------------------------------------------
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    picks=st.lists(
        st.sampled_from(range(len(DELTA_CATALOG))),
        unique=True,
        min_size=1,
        max_size=len(DELTA_CATALOG),
    )
)
def test_daemon_delta_stream_equals_cold_rebuild(picks, base_corpus, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("daemon-stream")
    engine = IncrementalEngine(base_corpus, CONFIG)
    daemon = daemon_for(engine)
    try:
        stream = UpdateStream(
            engine, DeltaLog(tmp_path / "d.log"), daemon=daemon
        )
        for pick in picks:
            stream.apply(DELTA_CATALOG[pick])
        assert daemon.health()["deltas_applied"] == len(picks)
        assert daemon.health()["last_delta_seq"] == len(picks)
        assert_serves_like(daemon, cold_oracle(engine.corpus))
    finally:
        daemon.close()


@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    picks=st.lists(
        st.sampled_from(range(len(DELTA_CATALOG))),
        unique=True,
        min_size=2,
        max_size=len(DELTA_CATALOG),
    ),
    kill_at=st.integers(0, len(DELTA_CATALOG)),
)
def test_cluster_delta_stream_with_kill_equals_cold_rebuild(
    picks, kill_at, tmp_path_factory
):
    """Scatter-patched cluster == cold oracle, even losing a replica mid-stream."""
    tmp_path = tmp_path_factory.mktemp("cluster-stream")
    corpus = make_corpus()
    engine = IncrementalEngine(corpus, CONFIG)
    path = save_artifact(engine.artifact(), tmp_path / "served.bin")
    router = ClusterRouter.from_artifact(
        path,
        num_shards=3,
        replication=2,
        config=CONFIG,
        shard_dir=tmp_path / "shards",
        watch=False,
        workers=1,
    )
    try:
        stream = UpdateStream(
            engine, DeltaLog(tmp_path / "c.log"), router=router
        )
        kill_index = kill_at % (len(picks) + 1)
        for position, pick in enumerate(picks):
            if position == kill_index:
                router.kill(0)
            stream.apply(DELTA_CATALOG[pick])
        if kill_index == len(picks):
            router.kill(0)

        health = router.health()
        assert health["deltas_applied"] == len(picks)
        assert health["last_delta_seq"] == len(picks)
        oracle = cold_oracle(engine.corpus)
        for kind, batch in PROBES:
            got = router.serve(kind, batch)
            assert canonical(got) == canonical(getattr(oracle, kind)(batch))
    finally:
        router.close()
