"""Tests for positive/negative compatibility (paper §4.1, Examples 7–9)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.compatibility import (
    CompatibilityScorer,
    conflict_set,
    negative_compatibility,
    positive_compatibility,
)
from repro.text.synonyms import SynonymDictionary


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


class TestPositiveCompatibility:
    def test_paper_example_7_exact_matching(self, iso_tables):
        """w+(B1, B2) = 0.5 with exact matching (3 of 6 rows shared)."""
        config = SynthesisConfig(use_approximate_matching=False)
        b1, b2, _ = iso_tables
        assert positive_compatibility(b1, b2, config) == pytest.approx(0.5)

    def test_paper_example_8_approximate_matching(self, iso_tables):
        """Approximate matching raises w+(B1, B2) because 'American Samoa (US)' matches."""
        b1, b2, _ = iso_tables
        exact = positive_compatibility(b1, b2, SynthesisConfig(use_approximate_matching=False))
        approx = positive_compatibility(b1, b2, SynthesisConfig(use_approximate_matching=True))
        assert approx > exact
        assert approx == pytest.approx(4 / 6, abs=1e-6)

    def test_paper_example_9_iso_vs_ioc(self, iso_tables):
        """w+(B1, B3) = 0.5: substantial overlap despite different code standards."""
        b1, _, b3 = iso_tables
        config = SynthesisConfig(use_approximate_matching=False)
        assert positive_compatibility(b1, b3, config) == pytest.approx(0.5)

    def test_containment_of_small_table(self):
        big = make_binary("big", [(f"k{i}", f"v{i}") for i in range(20)])
        small = make_binary("small", [("k0", "v0"), ("k1", "v1")])
        assert positive_compatibility(big, small) == pytest.approx(1.0)

    def test_disjoint_tables_score_zero(self):
        first = make_binary("a", [("x", "1"), ("y", "2")])
        second = make_binary("b", [("p", "9"), ("q", "8")])
        assert positive_compatibility(first, second) == 0.0

    def test_empty_table_scores_zero(self):
        first = make_binary("a", [("x", "1")])
        empty = BinaryTable("empty", [])
        assert positive_compatibility(first, empty) == 0.0

    def test_synonyms_boost_positive(self, iso_tables):
        b1, b2, _ = iso_tables
        synonyms = SynonymDictionary(
            [["US Virgin Islands", "United States Virgin Islands"],
             ["South Korea", "Korea, Republic of (South)"]]
        )
        with_syn = positive_compatibility(b1, b2, SynthesisConfig(), synonyms)
        without = positive_compatibility(b1, b2, SynthesisConfig())
        assert with_syn > without

    @given(
        st.lists(st.tuples(st.sampled_from("abcdef"), st.sampled_from("123456")),
                 min_size=1, max_size=10)
    )
    @settings(max_examples=80, deadline=None)
    def test_self_compatibility_is_one(self, rows):
        table = make_binary("t", rows)
        other = make_binary("t2", rows)
        assert positive_compatibility(table, other) == pytest.approx(1.0)

    @given(
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("12")), min_size=1, max_size=8),
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("12")), min_size=1, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_symmetric_and_bounded(self, rows_a, rows_b):
        a, b = make_binary("a", rows_a), make_binary("b", rows_b)
        forward = positive_compatibility(a, b)
        backward = positive_compatibility(b, a)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0


class TestNegativeCompatibility:
    def test_paper_example_9_negative(self, iso_tables):
        """w−(B1, B3) = −0.5: three of six left values conflict (ISO vs IOC)."""
        b1, _, b3 = iso_tables
        config = SynthesisConfig(use_approximate_matching=False)
        assert negative_compatibility(b1, b3, config) == pytest.approx(-0.5)

    def test_same_relation_no_conflicts(self, iso_tables):
        b1, b2, _ = iso_tables
        assert negative_compatibility(b1, b2) == 0.0

    def test_conflict_set_contents(self, iso_tables):
        b1, _, b3 = iso_tables
        conflicts = conflict_set(b1, b3, SynthesisConfig(use_approximate_matching=False))
        assert conflicts == {"Algeria", "American Samoa", "US Virgin Islands"}

    def test_synonymous_rights_not_conflicts(self):
        first = make_binary("a", [("Washington", "Olympia"), ("Texas", "Austin")])
        second = make_binary("b", [("Washington", "Olympia, WA"), ("Texas", "Austin")])
        synonyms = SynonymDictionary([["Olympia", "Olympia, WA"]])
        assert negative_compatibility(first, second, SynthesisConfig(), synonyms) == 0.0

    def test_disjoint_lefts_no_conflict(self):
        first = make_binary("a", [("x", "1")])
        second = make_binary("b", [("y", "2")])
        assert negative_compatibility(first, second) == 0.0

    def test_negative_is_nonpositive_and_bounded(self, iso_tables):
        b1, b2, b3 = iso_tables
        for first, second in [(b1, b2), (b1, b3), (b2, b3)]:
            value = negative_compatibility(first, second)
            assert -1.0 <= value <= 0.0

    @given(
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("12")), min_size=1, max_size=8),
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("12")), min_size=1, max_size=8),
    )
    @settings(max_examples=80, deadline=None)
    def test_negative_symmetric(self, rows_a, rows_b):
        a, b = make_binary("a", rows_a), make_binary("b", rows_b)
        assert negative_compatibility(a, b) == pytest.approx(negative_compatibility(b, a))


class TestCompatibilityScorer:
    def test_score_bundle(self, iso_tables):
        b1, _, b3 = iso_tables
        scorer = CompatibilityScorer(SynthesisConfig(use_approximate_matching=False))
        scores = scorer.score(b1, b3)
        assert scores.positive == pytest.approx(0.5)
        assert scores.negative == pytest.approx(-0.5)
        assert scores.conflicts == 3
        assert scores.shared_lefts == 6
        assert scores.shared_pairs == 3

    def test_shared_counts_use_normalization(self):
        scorer = CompatibilityScorer()
        first = make_binary("a", [("South Korea[1]", "KOR")])
        second = make_binary("b", [("south korea", "KOR")])
        assert scorer.shared_pair_count(first, second) == 1
        assert scorer.shared_left_count(first, second) == 1
