"""Unit tests for the sharded serving cluster (:mod:`repro.cluster`).

Covers the deterministic :class:`HashRing`, per-replica artifact cutting
(including verbatim v2 section reuse and serving-slice exactness), the
``cluster_lookup`` request kind, the :class:`ClusterRouter`'s scatter-gather
equivalence / failover / rolling rollout, and the ``cluster:N`` execution
backend registered in :mod:`repro.exec`.  The hypothesis program-equivalence
suite lives in ``tests/test_cluster_properties.py``.
"""

from __future__ import annotations

import time

import pytest

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    LookupRequest,
    MappingService,
)
from repro.cluster import (
    ClusterRouter,
    HashRing,
    NoHealthyReplicaError,
    ROUTER_REQUEST_KINDS,
    cut_shard_artifacts,
    replica_shards,
)
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.exec import (
    ClusterBackend,
    SerialBackend,
    create_backend,
    parse_executor_spec,
    registered_backends,
)
from repro.serving import SynthesisDaemon
from repro.serving.daemon import REQUEST_KINDS
from repro.store.artifact import load_artifact
from repro.store.format import ArtifactReader

pytestmark = pytest.mark.cluster


def canonical(responses) -> str:
    """Byte-comparable form of a batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


def match_keys(matches) -> list[tuple]:
    """Structural identity of a match list (MappingRelationship.__repr__ shows
    set fields, whose ordering is hash-seed dependent across processes)."""
    return [
        (m.mapping.mapping_id, m.left_containment, m.right_containment, m.direction)
        for m in matches
    ]


MIXED_BATCHES = [
    ("autofill", [
        FillRequest(keys=("California", "Texas", "Ohio", "Washington")),
        FillRequest(keys=("California", "Texas"), examples={0: "CA"}),
        FillRequest(keys=("California",), examples={9: "CA"}),  # malformed
        FillRequest(keys=()),
    ]),
    ("autojoin", [
        JoinRequest(left_keys=("California", "Texas"), right_keys=("TX", "CA")),
        JoinRequest(left_keys=("junk", "values"), right_keys=("only",)),
    ]),
    ("autocorrect", [
        CorrectRequest(values=("California", "Washington", "Oregon", "CA", "WA")),
        CorrectRequest(values=()),
    ]),
]


# ---------------------------------------------------------------------------------------
# Fixtures: one small artifact for the whole module
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster_config() -> SynthesisConfig:
    return SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )


@pytest.fixture(scope="module")
def artifact_path(store_corpus, cluster_config, tmp_path_factory):
    pipeline = SynthesisPipeline(cluster_config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("cluster") / "full.artifact")


@pytest.fixture(scope="module")
def oracle(artifact_path) -> MappingService:
    return MappingService.from_artifact(artifact_path)


def make_router(artifact_path, tmp_path, **kwargs) -> ClusterRouter:
    kwargs.setdefault("num_shards", 3)
    kwargs.setdefault("replication", 2)
    kwargs.setdefault("watch", False)
    kwargs.setdefault("workers", 2)
    return ClusterRouter.from_artifact(
        artifact_path, shard_dir=tmp_path / "shards", **kwargs
    )


# ---------------------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------------------
class TestHashRing:
    def test_placement_is_deterministic_across_instances(self):
        a, b = HashRing(5), HashRing(5)
        keys = [f"mapping-{i}" for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_every_shard_receives_keys(self):
        ring = HashRing(4)
        shards = {ring.shard_of(f"key-{i}") for i in range(500)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_ring_routes_everything_to_it(self):
        ring = HashRing(1)
        assert {ring.shard_of(f"k{i}") for i in range(20)} == {0}

    def test_batch_matches_single_lookups(self):
        ring = HashRing(3)
        keys = [f"m{i}" for i in range(50)]
        assert ring.shards_of(keys) == {k: ring.shard_of(k) for k in keys}

    def test_growth_moves_only_some_keys(self):
        # Consistent hashing: growing the ring must not reshuffle everything.
        small, large = HashRing(4), HashRing(5)
        keys = [f"key-{i}" for i in range(400)]
        moved = sum(1 for k in keys if small.shard_of(k) != large.shard_of(k))
        assert 0 < moved < len(keys)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_shard_count_rejected(self, bad):
        with pytest.raises(ValueError):
            HashRing(bad)

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(ValueError):
            HashRing(2, virtual_nodes=0)


class TestReplicaShards:
    def test_union_covers_every_shard(self):
        for replication in (1, 2, 3):
            assignments = replica_shards(5, replication)
            assert set().union(*assignments) == set(range(5))

    def test_each_shard_hosted_replication_times(self):
        assignments = replica_shards(4, 2)
        for shard in range(4):
            assert sum(shard in shards for shards in assignments) == 2

    def test_replication_clamped_to_shard_count(self):
        assert replica_shards(2, 9) == [frozenset({0, 1}), frozenset({0, 1})]

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            replica_shards(0, 1)
        with pytest.raises(ValueError):
            replica_shards(3, 0)


# ---------------------------------------------------------------------------------------
# Shard artifact cutting
# ---------------------------------------------------------------------------------------
class TestShardCutting:
    def test_slices_partition_the_served_pool(self, artifact_path, oracle, tmp_path):
        ring = HashRing(3)
        paths = cut_shard_artifacts(artifact_path, tmp_path / "r1", ring, replication=1)
        assert len(paths) == 3
        pool_ids = {m.mapping_id for m in oracle.mapping_pool}
        slices = [
            {m.mapping_id for m in MappingService.from_artifact(p).mapping_pool}
            for p in paths
        ]
        assert set().union(*slices) == pool_ids
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (slices[i] & slices[j])

    def test_replication_two_hosts_each_mapping_twice(
        self, artifact_path, oracle, tmp_path
    ):
        paths = cut_shard_artifacts(
            artifact_path, tmp_path / "r2", HashRing(3), replication=2
        )
        copies: dict[str, int] = {}
        for p in paths:
            for m in load_artifact(p).mappings:
                copies[m.mapping_id] = copies.get(m.mapping_id, 0) + 1
        assert copies  # the fixture corpus synthesizes a non-empty pool
        assert set(copies.values()) == {2}

    def test_clean_sections_are_copied_verbatim(self, artifact_path, tmp_path):
        paths = cut_shard_artifacts(
            artifact_path, tmp_path / "verbatim", HashRing(2), replication=1
        )
        source = ArtifactReader.from_path(artifact_path)
        shard = ArtifactReader.from_path(paths[0])
        # Untouched sections keep the exact stored bytes (same checksum) —
        # the ArtifactWriter.add_stored reuse path, no decode / re-encode.
        for name in ("config", "fingerprints", "stats"):
            assert shard.sections[name].checksum == source.sections[name].checksum
        # Pipeline-only sections are emptied, so replicas never decode them.
        assert shard.item_count("candidates") == 0
        assert shard.item_count("profiles") == 0

    def test_replica_load_decodes_only_its_slice(self, artifact_path, tmp_path):
        paths = cut_shard_artifacts(
            artifact_path, tmp_path / "lazy", HashRing(2), replication=1
        )
        shard = load_artifact(paths[0])
        service = MappingService.from_artifact_object(shard)
        assert len(service.mapping_pool) == len(shard.mappings)
        counts = shard.reader.decode_counts
        assert counts.get("candidates", 0) == 0
        assert counts.get("profiles", 0) == 0
        assert counts.get("edges", 0) == 0

    def test_only_replica_rewrites_one_file(self, artifact_path, tmp_path):
        ring = HashRing(3)
        out = tmp_path / "partial"
        paths = cut_shard_artifacts(artifact_path, out, ring, replication=2)
        before = [p.stat().st_mtime_ns for p in paths]
        time.sleep(0.01)
        cut_shard_artifacts(
            artifact_path, out, ring, replication=2, only_replica=1
        )
        after = [p.stat().st_mtime_ns for p in paths]
        assert after[1] > before[1]
        assert after[0] == before[0] and after[2] == before[2]


# ---------------------------------------------------------------------------------------
# The cluster_lookup request kind
# ---------------------------------------------------------------------------------------
class TestClusterLookupKind:
    def test_kind_is_registered_with_the_daemon(self):
        assert "cluster_lookup" in REQUEST_KINDS

    def test_lookup_request_validates_op(self):
        with pytest.raises(ValueError, match="unknown lookup op"):
            LookupRequest(op="fuzzy", values=("a",))

    def test_service_lookup_matches_index(self, oracle):
        request = LookupRequest(
            op="values", values=("California", "Texas"), min_containment=0.5, top_k=3
        )
        [response] = oracle.cluster_lookup([request])
        assert response.ok
        direct = oracle.index.lookup(
            ["California", "Texas"], min_containment=0.5, top_k=3
        )
        assert match_keys(response.result) == match_keys(direct)

    def test_pairs_lookup_matches_index(self, oracle):
        request = LookupRequest(
            op="pairs",
            values=(("California", "CA"),),
            min_containment=0.99,
            top_k=3,
        )
        [response] = oracle.cluster_lookup([request])
        assert response.ok
        direct = oracle.index.lookup_pairs(
            [("California", "CA")], min_containment=0.99, top_k=3
        )
        assert match_keys(response.result) == match_keys(direct)

    def test_errors_stay_enveloped(self, oracle):
        bad = LookupRequest(op="values", values=("x",), min_containment=7.0)
        [response] = oracle.cluster_lookup([bad])
        assert not response.ok
        assert "min_containment" in response.error

    def test_served_through_a_daemon(self, artifact_path, oracle):
        with SynthesisDaemon.from_artifact(artifact_path, watch=False, workers=2) as d:
            request = LookupRequest(op="values", values=("California", "Texas"))
            result = d.submit("cluster_lookup", (request,), block=True).result(
                timeout=30
            )
            assert result.responses[0].ok
            assert match_keys(result.responses[0].result) == match_keys(
                oracle.index.lookup(["California", "Texas"])
            )


# ---------------------------------------------------------------------------------------
# Router: equivalence, failover, rollout
# ---------------------------------------------------------------------------------------
class TestRouterServing:
    @pytest.fixture(scope="class")
    def router(self, artifact_path, tmp_path_factory):
        router = make_router(artifact_path, tmp_path_factory.mktemp("router"))
        yield router
        router.close()

    def test_mixed_batches_equal_oracle(self, router, oracle):
        for kind, batch in MIXED_BATCHES:
            assert canonical(router.serve(kind, batch)) == canonical(
                getattr(oracle, kind)(batch)
            )

    def test_named_entry_points_equal_oracle(self, router, oracle):
        batch = [FillRequest(keys=("California", "Texas"))]
        assert canonical(router.autofill(batch)) == canonical(oracle.autofill(batch))
        join = [JoinRequest(left_keys=("California",), right_keys=("CA",))]
        assert canonical(router.autojoin(join)) == canonical(oracle.autojoin(join))
        correct = [CorrectRequest(values=("California", "CA", "Texas"))]
        assert canonical(router.autocorrect(correct)) == canonical(
            oracle.autocorrect(correct)
        )

    def test_empty_batches(self, router):
        assert router.autofill([]) == []
        assert router.serve("autojoin", []) == []

    def test_unknown_kind_rejected(self, router):
        with pytest.raises(ValueError, match="unknown request kind"):
            router.serve("cluster_lookup", [])

    def test_health_reports_ok_and_counts(self, router):
        router.autofill([FillRequest(keys=("California",))])
        health = router.health()
        assert health["status"] == "ok"
        assert health["num_shards"] == 3
        assert health["replication"] == 2
        assert len(health["replicas"]) == 3
        assert health["requests"].get("autofill", 0) >= 1


class TestFailover:
    def test_transport_failure_reroutes_and_recovers(
        self, artifact_path, oracle, tmp_path
    ):
        router = make_router(
            artifact_path, tmp_path, breaker_cooldown=0.05
        )
        with router:
            victim = router.replicas[0]
            original = victim.daemon.submit
            state = {"failures": 0}

            def flaky_submit(*args, **kwargs):
                if state["failures"] < 1:
                    state["failures"] += 1
                    raise OSError("injected transport failure")
                return original(*args, **kwargs)

            victim.daemon.submit = flaky_submit
            batch = [FillRequest(keys=("California", "Texas", "Ohio"))]
            # The failing replica trips its breaker; the scatter re-routes and
            # the answer is still byte-identical.
            assert canonical(router.autofill(batch)) == canonical(
                oracle.autofill(batch)
            )
            assert state["failures"] == 1
            health = router.health()
            assert health["reroutes"] >= 1
            assert health["replicas"][0]["breaker"]["state"] == "open"
            assert health["status"] == "degraded"
            # After the cooldown a half-open probe readmits the replica.
            time.sleep(0.06)
            assert canonical(router.autofill(batch)) == canonical(
                oracle.autofill(batch)
            )
            assert router.replicas[0].breaker.state == "closed"
            assert router.health()["status"] == "ok"

    def test_killed_replica_is_routed_around(self, artifact_path, oracle, tmp_path):
        router = make_router(artifact_path, tmp_path)
        with router:
            router.kill(1)
            for kind, batch in MIXED_BATCHES:
                assert canonical(router.serve(kind, batch)) == canonical(
                    getattr(oracle, kind)(batch)
                )
            health = router.health()
            assert health["status"] == "degraded"
            assert any("replica 1" in reason for reason in health["degraded_reasons"])

    def test_uncovered_shards_become_error_envelopes(
        self, artifact_path, tmp_path
    ):
        router = make_router(artifact_path, tmp_path)
        with router:
            router.kill(1)
            router.kill(2)  # replica 0 alone hosts shards {0, 1}: shard 2 is gone
            responses = router.autofill([FillRequest(keys=("California",))])
            assert not responses[0].ok
            assert "no healthy replica" in responses[0].error
            # The router object itself survives total shard loss.
            assert router.health()["status"] == "degraded"


class TestRollout:
    def test_rolling_reload_switches_to_the_new_oracle(
        self, store_corpus, cluster_config, tmp_path
    ):
        pipeline = SynthesisPipeline(cluster_config)
        pipeline.run(store_corpus)
        path = pipeline.save_artifact(tmp_path / "v1.artifact")
        oracle_v1 = MappingService.from_artifact(path)

        router = make_router(
            path, tmp_path, watch=True, poll_seconds=0.05
        )
        with router:
            batch = [FillRequest(keys=("California", "Texas", "Ohio"))]
            assert canonical(router.autofill(batch)) == canonical(
                oracle_v1.autofill(batch)
            )
            generations_before = [r.daemon.generation.number for r in router.replicas]

            # Publish a v2 with half the pool (so the pool composition really
            # changes), roll it out one replica at a time, and check the
            # router now answers as the v2 oracle.
            v2_path = tmp_path / "v2.artifact"
            pool = oracle_v1.mapping_pool
            pruned = pool[: max(1, len(pool) // 2)]
            artifact_v2 = load_artifact(path).evolve(
                mappings=pruned,
                curated_ids=[m.mapping_id for m in pruned],
            )
            from repro.store.artifact import save_artifact

            save_artifact(artifact_v2, v2_path)
            oracle_v2 = MappingService.from_artifact(v2_path)

            generations = router.rollout(v2_path, timeout=30)
            assert all(
                after > before
                for after, before in zip(generations, generations_before)
            )
            assert canonical(router.autofill(batch)) == canonical(
                oracle_v2.autofill(batch)
            )
            assert router.health()["rollouts"] == 1

    def test_rollout_skips_closed_replicas(self, artifact_path, oracle, tmp_path):
        router = make_router(
            artifact_path, tmp_path, watch=True, poll_seconds=0.05
        )
        with router:
            router.kill(2)
            generations = router.rollout(artifact_path, timeout=30)
            assert generations[2] == 1  # dead replica never advanced
            assert generations[0] > 1 and generations[1] > 1
            batch = [FillRequest(keys=("California", "Texas"))]
            assert canonical(router.autofill(batch)) == canonical(
                oracle.autofill(batch)
            )


# ---------------------------------------------------------------------------------------
# The cluster:N execution backend
# ---------------------------------------------------------------------------------------
class TestClusterBackend:
    def test_registered_and_parsed(self):
        assert "cluster" in registered_backends()
        assert parse_executor_spec("cluster:3") == ("cluster", 3)
        assert SynthesisConfig(executor="cluster:2").executor == "cluster:2"

    def test_matches_serial_backend(self):
        blocks = [[1, 2], [3], [4, 5, 6], []]
        with SerialBackend() as serial, create_backend("cluster:2") as cluster:
            assert cluster.map_blocks(sum, blocks) == serial.map_blocks(sum, blocks)
            assert sorted(cluster.map_unordered(abs, [-3, 1, -2])) == sorted(
                serial.map_unordered(abs, [-3, 1, -2])
            )
            assert cluster.call(max, 3, 7) == 7
            assert cluster.submit(min, 4, 2).result() == 2

    def test_empty_inputs(self):
        with create_backend("cluster:2") as cluster:
            assert cluster.map_blocks(sum, []) == []
            assert list(cluster.map_unordered(abs, [])) == []

    def test_telemetry_aggregates_children(self):
        backend = ClusterBackend(2)
        try:
            assert backend.crash_recoveries == 0
            assert backend.tasks_retried == 0
            assert backend.faults_injected == 0
            assert backend.fallback_reason is None
            assert len(backend._children) == 2
        finally:
            backend.close()

    def test_daemon_served_by_cluster_executor(self, artifact_path, oracle):
        with SynthesisDaemon.from_artifact(
            artifact_path, watch=False, executor="cluster:2"
        ) as daemon:
            assert daemon.executor_kind == "cluster"
            for kind, batch in MIXED_BATCHES:
                result = daemon.submit(kind, batch, block=True).result(timeout=120)
                assert canonical(result.responses) == canonical(
                    getattr(oracle, kind)(batch)
                )
