"""Tests for candidate extraction: co-occurrence index, PMI/NPMI, FD, Algorithm 1."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table
from repro.extraction.candidates import CandidateExtractor
from repro.extraction.cooccurrence import CooccurrenceIndex
from repro.extraction.fd import column_pair_fd_ratio, satisfies_fd
from repro.extraction.pmi import column_coherence, npmi, pmi


class TestCooccurrenceIndex:
    def _index(self) -> CooccurrenceIndex:
        index = CooccurrenceIndex()
        index.add_column(["USA", "Canada", "Mexico"])
        index.add_column(["USA", "Canada", "Brazil"])
        index.add_column(["red", "green", "blue"])
        return index

    def test_counts(self):
        index = self._index()
        assert index.num_columns == 3
        assert index.occurrence_count("USA") == 2
        assert index.occurrence_count("red") == 1
        assert index.occurrence_count("unknown") == 0

    def test_cooccurrence(self):
        index = self._index()
        assert index.cooccurrence_count("USA", "Canada") == 2
        assert index.cooccurrence_count("USA", "red") == 0

    def test_probabilities(self):
        index = self._index()
        assert index.probability("USA") == pytest.approx(2 / 3)
        assert index.joint_probability("USA", "Canada") == pytest.approx(2 / 3)

    def test_normalization_applied(self):
        index = self._index()
        assert index.occurrence_count("usa") == 2
        assert index.occurrence_count(" USA [1]") == 2

    def test_duplicate_values_in_column_counted_once(self):
        index = CooccurrenceIndex()
        index.add_column(["a", "a", "a"])
        assert index.occurrence_count("a") == 1

    def test_empty_index(self):
        index = CooccurrenceIndex()
        assert index.probability("x") == 0.0
        assert index.joint_probability("x", "y") == 0.0

    def test_contains_and_len(self):
        index = self._index()
        assert "USA" in index
        assert "nothing" not in index
        assert 42 not in index
        assert len(index) == 7

    def test_from_corpus(self, simple_table):
        corpus = TableCorpus([simple_table])
        index = CooccurrenceIndex.from_corpus(corpus)
        assert index.num_columns == 3
        assert index.occurrence_count("USA") == 1


class TestPmiNpmi:
    def _index(self) -> CooccurrenceIndex:
        index = CooccurrenceIndex()
        # USA and Canada co-occur; "noise" never co-occurs with them.
        for _ in range(5):
            index.add_column(["USA", "Canada", "Mexico"])
        index.add_column(["noise"])
        return index

    def test_pmi_positive_for_cooccurring_values(self):
        index = self._index()
        assert pmi(index, "USA", "Canada") > 0

    def test_pmi_negative_infinite_for_never_cooccurring(self):
        index = self._index()
        assert pmi(index, "USA", "noise") == float("-inf")

    def test_pmi_zero_when_value_unknown(self):
        index = self._index()
        assert pmi(index, "USA", "unknown") == 0.0

    def test_paper_example_4(self):
        """Reproduce Example 4: PMI(USA, Canada) ≈ 4.78 with the given counts."""
        index = CooccurrenceIndex()
        # Simulate the counts by direct construction of the internal posting lists:
        # 1000 columns with u, 500 with v, 300 with both, N = 100M is impractical to
        # materialize, so verify the formula on a scaled-down version instead.
        total, u_count, v_count, both = 10_000, 100, 50, 30
        value = math.log((both / total) / ((u_count / total) * (v_count / total)))
        assert value == pytest.approx(math.log(both * total / (u_count * v_count)))

    def test_npmi_range(self):
        index = self._index()
        assert -1.0 <= npmi(index, "USA", "Canada") <= 1.0
        assert npmi(index, "USA", "noise") == -1.0
        assert npmi(index, "USA", "unknown") == 0.0

    def test_npmi_perfect_cooccurrence(self):
        index = CooccurrenceIndex()
        index.add_column(["a", "b"])
        index.add_column(["a", "b"])
        index.add_column(["c"])
        assert npmi(index, "a", "b") == pytest.approx(1.0)

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_npmi_symmetric(self, values):
        index = CooccurrenceIndex()
        index.add_column(values)
        index.add_column(["a", "c"])
        assert npmi(index, "a", "b") == pytest.approx(npmi(index, "b", "a"))


class TestColumnCoherence:
    def test_coherent_column_scores_high(self, small_web_corpus):
        index = CooccurrenceIndex.from_corpus(small_web_corpus)
        coherent = column_coherence(index, ["United States", "Canada", "Mexico", "Brazil"])
        incoherent = column_coherence(
            index, ["United States", "Hydrogen", "MSFT", "gentle breeze", "zzz-unknown"]
        )
        assert coherent > incoherent

    def test_single_value_column(self):
        index = CooccurrenceIndex()
        index.add_column(["a"])
        assert column_coherence(index, ["a", "a", "a"]) == 1.0

    def test_empty_column(self):
        assert column_coherence(CooccurrenceIndex(), []) == 0.0

    def test_sampling_is_deterministic(self, small_web_corpus):
        index = CooccurrenceIndex.from_corpus(small_web_corpus)
        values = [f"value-{i}" for i in range(60)] + ["United States", "Canada"]
        assert column_coherence(index, values) == column_coherence(index, values)


class TestFd:
    def test_perfect_fd(self):
        rows = [("a", "1"), ("b", "2"), ("c", "3")]
        assert column_pair_fd_ratio(rows) == 1.0
        assert satisfies_fd(rows)

    def test_violation_ratio(self):
        rows = [("a", "1"), ("a", "2"), ("b", "3"), ("c", "4")]
        assert column_pair_fd_ratio(rows) == pytest.approx(0.75)
        assert not satisfies_fd(rows, theta=0.95)
        assert satisfies_fd(rows, theta=0.7)

    def test_duplicate_rows_do_not_mask_violations(self):
        rows = [("a", "1")] * 10 + [("a", "2")]
        assert column_pair_fd_ratio(rows) == pytest.approx(0.5)

    def test_empty_rows(self):
        assert column_pair_fd_ratio([]) == 1.0

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            satisfies_fd([("a", "1")], theta=0.0)

    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("123")), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_ratio_in_unit_interval(self, rows):
        assert 0.0 <= column_pair_fd_ratio(rows) <= 1.0

    @given(st.lists(st.tuples(st.text(max_size=3), st.text(max_size=3)), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_functional_rows_always_ratio_one(self, rows):
        functional = {left: right for left, right in rows}
        assert column_pair_fd_ratio(list(functional.items())) == 1.0


class TestCandidateExtractor:
    def test_extracts_fd_pairs_from_simple_table(self, simple_table):
        config = SynthesisConfig(use_pmi_filter=False, min_rows=3)
        extractor = CandidateExtractor(config)
        candidates = extractor.extract_from_table(simple_table)
        ids = {candidate.table_id for candidate in candidates}
        # (Country, Code) and (Code, Country) must be present; pairs involving the
        # unique Population column also satisfy a local FD.
        assert "t-simple#0->1" in ids
        assert "t-simple#1->0" in ids

    def test_non_functional_pair_filtered(self):
        table = Table.from_rows(
            "t-nf",
            ["Home", "Away"],
            [
                ("Bears", "Packers"),
                ("Bears", "Lions"),
                ("Bears", "Vikings"),
                ("Lions", "Packers"),
                ("Lions", "Bears"),
                ("Packers", "Bears"),
            ],
        )
        extractor = CandidateExtractor(SynthesisConfig(use_pmi_filter=False, min_rows=3))
        candidates = extractor.extract_from_table(table)
        assert candidates == []

    def test_min_rows_filter(self, simple_table):
        extractor = CandidateExtractor(SynthesisConfig(use_pmi_filter=False, min_rows=10))
        assert extractor.extract_from_table(simple_table) == []

    def test_fd_filter_can_be_disabled(self):
        table = Table.from_rows(
            "t-nf",
            ["Home", "Away"],
            [("Bears", "Packers"), ("Bears", "Lions"), ("Bears", "Vikings"),
             ("Lions", "Packers"), ("Lions", "Bears")],
        )
        config = SynthesisConfig(use_pmi_filter=False, use_fd_filter=False, min_rows=3)
        candidates = CandidateExtractor(config).extract_from_table(table)
        assert candidates

    def test_extract_full_corpus_with_stats(self, small_web_corpus):
        extractor = CandidateExtractor(SynthesisConfig())
        candidates, stats = extractor.extract(small_web_corpus)
        assert candidates
        assert stats.num_tables == len(small_web_corpus)
        assert stats.candidates == len(candidates)
        assert stats.raw_pairs > stats.candidates
        # The paper reports that a large share of raw pairs is filtered out (§3.2);
        # the synthetic corpus is dominated by already-clean two-column tables, so
        # the fraction here is smaller but must still be material.
        assert stats.filtered_fraction > 0.05
        assert 0.0 <= stats.filtered_fraction <= 1.0
        assert stats.pairs_removed_by_fd > 0

    def test_candidate_provenance(self, small_web_corpus):
        extractor = CandidateExtractor(SynthesisConfig())
        candidates, _ = extractor.extract(small_web_corpus)
        sample = candidates[0]
        assert sample.source_table_id in small_web_corpus
        assert sample.domain
        assert "#" in sample.table_id

    def test_blank_cells_dropped(self):
        table = Table.from_rows(
            "t-blank",
            ["a", "b"],
            [("x", "1"), ("", "2"), ("y", ""), ("z", "3"), ("w", "4"), ("v", "5")],
        )
        config = SynthesisConfig(use_pmi_filter=False, min_rows=3)
        candidates = CandidateExtractor(config).extract_from_table(table)
        forward = next(c for c in candidates if c.table_id.endswith("#0->1"))
        assert ("", "2") not in forward.pair_set()
        assert ("y", "") not in forward.pair_set()

    def test_stats_as_dict_keys(self):
        from repro.extraction.candidates import ExtractionStats

        stats = ExtractionStats()
        data = stats.as_dict()
        assert {"num_tables", "raw_pairs", "candidates", "filtered_fraction"} <= set(data)
        assert stats.filtered_fraction == 0.0
