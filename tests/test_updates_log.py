"""Delta-log suite: durable framing, crash recovery, and injected write faults.

The streaming delta log (:mod:`repro.updates.deltalog`) is the commit point of
the whole update path, so this suite locks its two safety properties:

* **no half-written delta is ever valid** — replay stops at the first torn or
  checksum-failed record, and reopening truncates the damaged tail so appends
  continue the valid chain;
* **log-first ordering** — when an append fails (injected
  ``delta_append_failure``), the engine and serving tier are untouched, so a
  recovered process replaying the log reconstructs exactly the state the
  writer reached.

Chaos scenarios run under a pinned :class:`FaultPlan` seed (``REPRO_FAULT_SEED``
in the chaos CI leg) so every injected tear and corruption is replayable.
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import SynthesisConfig
from repro.faults import FaultPlan, injected_faults
from repro.updates import (
    DeltaLog,
    DeltaLogError,
    IncrementalEngine,
    TableDelta,
    UpdateStream,
    decode_delta_record,
    encode_delta_record,
)

from store_helpers import make_fragment_corpus, seed_fragments

pytestmark = [pytest.mark.updates, pytest.mark.faults]

FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260808"))

DELTAS = [
    TableDelta(table_id="t-a", upserts=(("Alpha", "AA"), ("Beta", "BB"))),
    TableDelta(table_id="t-b", deletes=("Gamma",)),
    TableDelta(
        table_id="t-new",
        header=("name", "code"),
        upserts=(("Delta", "DD"),),
        domain="new.example",
        title="created",
    ),
    TableDelta(table_id="t-a", drop=True),
]


# ---------------------------------------------------------------------------------------
# Codec + framing
# ---------------------------------------------------------------------------------------
def test_record_codec_roundtrip():
    for seq, delta in enumerate(DELTAS, start=1):
        assert decode_delta_record(encode_delta_record(seq, delta)) == (seq, delta)


def test_delta_validation():
    with pytest.raises(ValueError):
        TableDelta(table_id="")
    with pytest.raises(ValueError):
        TableDelta(table_id="t", drop=True, upserts=(("a", "b"),))


def test_append_replay_roundtrip(tmp_path):
    log = DeltaLog(tmp_path / "updates.log")
    for delta in DELTAS:
        log.append(delta)
    assert [seq for seq, _ in log.records()] == [1, 2, 3, 4]

    reopened = DeltaLog(tmp_path / "updates.log")
    assert reopened.records() == log.records()
    assert reopened.truncated_on_open == 0
    assert reopened.next_seq == 5


def test_truncate_preserves_sequence_numbers(tmp_path):
    log = DeltaLog(tmp_path / "updates.log")
    for delta in DELTAS[:3]:
        log.append(delta)
    log.truncate()
    assert len(log) == 0 and log.base_seq == 3

    # Sequence numbers keep counting after compaction, even across a reopen.
    assert log.append(DELTAS[3]) == 4
    reopened = DeltaLog(tmp_path / "updates.log")
    assert reopened.base_seq == 3
    assert [seq for seq, _ in reopened.records()] == [4]


def test_torn_tail_is_truncated_on_open(tmp_path):
    path = tmp_path / "updates.log"
    log = DeltaLog(path)
    for delta in DELTAS[:2]:
        log.append(delta)
    intact = path.stat().st_size
    log.append(DELTAS[2])
    # Chop the last record mid-payload, as a crash mid-append would.
    with open(path, "r+b") as handle:
        handle.truncate(intact + 7)

    recovered = DeltaLog(path)
    assert [seq for seq, _ in recovered.records()] == [1, 2]
    assert recovered.truncated_on_open == 7
    assert path.stat().st_size == intact
    # Appends continue the valid chain.
    assert recovered.append(DELTAS[2]) == 3


def test_flipped_byte_discards_record_and_tail(tmp_path):
    path = tmp_path / "updates.log"
    log = DeltaLog(path)
    before_second = None
    for index, delta in enumerate(DELTAS[:3]):
        if index == 1:
            before_second = path.stat().st_size
        log.append(delta)
    data = bytearray(path.read_bytes())
    data[before_second + 40] ^= 0xFF  # inside record 2's payload
    path.write_bytes(bytes(data))

    recovered = DeltaLog(path)
    # The checksum catches the flip; record 2 and everything after it go.
    assert [seq for seq, _ in recovered.records()] == [1]


# ---------------------------------------------------------------------------------------
# Injected write faults (chaos)
# ---------------------------------------------------------------------------------------
def test_injected_append_failure_then_reopen_recovers(tmp_path):
    path = tmp_path / "updates.log"
    log = DeltaLog(path)
    log.append(DELTAS[0])

    plan = FaultPlan(seed=FAULT_SEED, delta_append_failure_rate=1.0, max_faults=1)
    with injected_faults(plan):
        with pytest.raises(DeltaLogError):
            log.append(DELTAS[1])
        # The in-process log behaves like a crashed writer: no appends until
        # reopened, even though the injector's fault budget is spent.
        with pytest.raises(DeltaLogError):
            log.append(DELTAS[1])

    recovered = DeltaLog(path)
    assert recovered.truncated_on_open > 0
    assert [seq for seq, _ in recovered.records()] == [1]
    assert recovered.append(DELTAS[1]) == 2


def test_injected_corruption_is_discarded_at_replay(tmp_path):
    path = tmp_path / "updates.log"
    log = DeltaLog(path)
    log.append(DELTAS[0])
    plan = FaultPlan(seed=FAULT_SEED, corrupt_delta_rate=1.0, max_faults=1)
    with injected_faults(plan):
        # The writer does not notice silent corruption...
        assert log.append(DELTAS[1]) == 2
    log.append(DELTAS[2])

    # ...but replay's checksum does: the damaged record and its tail are gone.
    recovered = DeltaLog(path)
    assert [seq for seq, _ in recovered.records()] == [1]


def test_delta_fault_rates_validated():
    with pytest.raises(ValueError):
        FaultPlan(delta_append_failure_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corrupt_delta_rate=-0.1)


# ---------------------------------------------------------------------------------------
# Log-first ordering through the stream
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def stream_corpus():
    fragments = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    return make_fragment_corpus(fragments, name="updates-log-corpus")


def test_failed_append_leaves_engine_untouched(stream_corpus, tmp_path):
    """The log append is the commit point: on failure nothing else moves."""
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    stream = UpdateStream(
        IncrementalEngine(stream_corpus, config), DeltaLog(tmp_path / "s.log")
    )
    stream.apply(TableDelta(table_id="sa0-state_abbrev", upserts=(("Zor", "ZR"),)))
    pool_before = list(stream.engine.pool)
    tables_before = [table.table_id for table in stream.engine.corpus]

    plan = FaultPlan(seed=FAULT_SEED, delta_append_failure_rate=1.0, max_faults=1)
    with injected_faults(plan):
        with pytest.raises(DeltaLogError):
            stream.apply(
                TableDelta(table_id="ci0-country_iso3", deletes=("Albania",))
            )
    assert stream.engine.pool == pool_before
    assert [table.table_id for table in stream.engine.corpus] == tables_before

    # Recovery replays only the durable prefix and reconstructs the same state.
    recovered = UpdateStream.recover(stream_corpus, tmp_path / "s.log", config)
    assert recovered.last_seq == 1
    assert recovered.engine.pool == pool_before
