"""Tests for the seed relations, noise model, and corpus generators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import (
    CorpusGenerationSpec,
    EnterpriseCorpusGenerator,
    WebCorpusGenerator,
)
from repro.corpus.noise import NoiseModel
from repro.corpus.seeds import all_seed_relations, get_seed_relation, seed_relation_names


class TestSeedRelations:
    def test_relations_exist(self):
        assert len(all_seed_relations()) >= 30

    def test_categories(self):
        categories = {relation.category for relation in all_seed_relations()}
        assert categories == {"geocoding", "querylog", "enterprise"}

    def test_get_by_name(self):
        relation = get_seed_relation("country_iso3")
        assert relation.left_attr == "country"
        assert ("Japan", "JPN") in relation.canonical_pairs()

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_seed_relation("no_such_relation")

    def test_names_unique(self):
        names = seed_relation_names()
        assert len(names) == len(set(names))

    def test_one_to_one_relations_are_functional_both_ways(self):
        for relation in all_seed_relations():
            if not relation.one_to_one:
                continue
            lefts = [left for left, _ in relation.pairs]
            rights = [right for _, right in relation.pairs]
            assert len(set(lefts)) == len(lefts), relation.name
            assert len(set(rights)) == len(rights), relation.name

    def test_all_relations_functional_left_to_right(self):
        for relation in all_seed_relations():
            lefts = [left for left, _ in relation.pairs]
            assert len(set(lefts)) == len(lefts), f"{relation.name} violates FD"

    def test_synonym_expansion_supersets_canonical(self):
        relation = get_seed_relation("country_iso3")
        expanded = relation.ground_truth_pairs(include_synonyms=True)
        assert relation.canonical_pairs() <= expanded
        assert ("Republic of Korea", "KOR") in expanded

    def test_ground_truth_without_synonyms(self):
        relation = get_seed_relation("country_iso3")
        assert relation.ground_truth_pairs(include_synonyms=False) == relation.canonical_pairs()

    def test_code_standards_disagree_somewhere(self):
        """ISO3 and IOC codes must differ for some countries (the paper's Figure 2)."""
        iso3 = dict(get_seed_relation("country_iso3").pairs)
        ioc = dict(get_seed_relation("country_ioc").pairs)
        shared = set(iso3) & set(ioc)
        assert shared
        assert any(iso3[country] != ioc[country] for country in shared)
        assert any(iso3[country] == ioc[country] for country in shared)

    def test_capital_and_largest_city_mostly_differ(self):
        capital = dict(get_seed_relation("state_capital").pairs)
        largest = dict(get_seed_relation("state_largest_city").pairs)
        differing = [state for state in capital if capital[state] != largest.get(state)]
        agreeing = [state for state in capital if capital[state] == largest.get(state)]
        assert differing and agreeing

    def test_city_state_has_ambiguity_handled(self):
        """Portland belongs to exactly one state in the seeds (FD kept clean)."""
        cities = dict(get_seed_relation("city_state").pairs)
        assert cities["Portland"] in {"Oregon", "Maine"}

    def test_enterprise_relations_present(self):
        names = set(seed_relation_names(category="enterprise"))
        assert "product_family_code" in names
        assert "data_center_region" in names


class TestNoiseModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            NoiseModel(typo_rate=1.5)
        with pytest.raises(ValueError):
            NoiseModel(error_rate=-0.1)

    def test_clean_model_is_identity(self):
        noise = NoiseModel.clean()
        for value in ("South Korea", "USA", "Los Angeles International Airport"):
            assert noise.perturb_value(value, ("synonym",)) == value
        assert not noise.should_corrupt()

    def test_deterministic_given_seed(self):
        first = NoiseModel(seed=5)
        second = NoiseModel(seed=5)
        values = ["United States", "Canada", "Mexico", "Brazil"] * 10
        assert [first.perturb_value(v) for v in values] == [
            second.perturb_value(v) for v in values
        ]

    def test_synonym_substitution_happens(self):
        noise = NoiseModel(typo_rate=0, footnote_rate=0, case_rate=0, synonym_rate=1.0,
                           error_rate=0, seed=1)
        assert noise.perturb_value("South Korea", ("Republic of Korea",)) == "Republic of Korea"

    def test_corrupt_value_picks_alternative(self):
        noise = NoiseModel(seed=3)
        corrupted = noise.corrupt_value("AAA", ["AAA", "BBB", "CCC"])
        assert corrupted in {"BBB", "CCC"}

    def test_corrupt_value_without_alternatives(self):
        noise = NoiseModel(seed=3)
        assert noise.corrupt_value("ABCD", ["ABCD"]) != ""

    def test_clone_changes_seed_only(self):
        noise = NoiseModel(typo_rate=0.5, seed=1)
        clone = noise.clone(seed=2)
        assert clone.typo_rate == 0.5
        assert clone.seed == 2

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_perturb_always_returns_string(self, value):
        noise = NoiseModel(seed=9)
        assert isinstance(noise.perturb_value(value), str)


class TestCorpusGenerationSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CorpusGenerationSpec(tables_per_relation=0)
        with pytest.raises(ValueError):
            CorpusGenerationSpec(min_rows=10, max_rows=5)

    def test_small_and_benchmark_presets(self):
        assert CorpusGenerationSpec.small().tables_per_relation < \
            CorpusGenerationSpec.benchmark().tables_per_relation


class TestWebCorpusGenerator:
    def test_generation_is_deterministic(self):
        spec = CorpusGenerationSpec.small(seed=11)
        first = WebCorpusGenerator(spec).generate()
        second = WebCorpusGenerator(CorpusGenerationSpec.small(seed=11)).generate()
        assert first.table_ids() == second.table_ids()
        assert list(first.tables()[0].rows()) == list(second.tables()[0].rows())

    def test_covers_all_web_relations(self, small_web_corpus):
        seed_names = {
            table.metadata.get("seed_relation")
            for table in small_web_corpus
            if not table.metadata.get("seed_relation", "").startswith("__")
        }
        expected = set(seed_relation_names("geocoding")) | set(seed_relation_names("querylog"))
        assert expected <= seed_names

    def test_popular_relations_get_more_tables(self, small_web_corpus):
        by_relation: dict[str, int] = {}
        for table in small_web_corpus:
            name = table.metadata.get("seed_relation", "")
            by_relation[name] = by_relation.get(name, 0) + 1
        assert by_relation["country_iso3"] > by_relation["wind_beaufort"]

    def test_contains_spurious_and_formatting_tables(self, small_web_corpus):
        kinds = {table.metadata.get("seed_relation") for table in small_web_corpus}
        assert "__spurious__" in kinds
        assert "__formatting__" in kinds

    def test_contains_mixed_tables(self, small_web_corpus):
        mixed = [
            table
            for table in small_web_corpus
            if table.metadata.get("seed_relation", "").startswith("__mixed__")
        ]
        assert mixed

    def test_mixed_tables_keep_local_fd(self, clean_web_corpus):
        """The mixed tables must survive the FD filter to be a meaningful trap."""
        from repro.extraction.fd import column_pair_fd_ratio

        mixed = [
            table
            for table in clean_web_corpus
            if table.metadata.get("seed_relation", "").startswith("__mixed__")
        ]
        assert mixed
        for table in mixed:
            rows = table.column_pair_rows(0, 1)
            assert column_pair_fd_ratio(rows) >= 0.95

    def test_tables_have_domains_and_rows(self, small_web_corpus):
        for table in small_web_corpus:
            assert table.domain
            assert table.num_rows >= 2
            assert table.num_columns >= 2

    def test_clean_corpus_values_come_from_seeds(self, clean_web_corpus):
        """Without noise, relation tables contain only canonical seed values."""
        relation = get_seed_relation("state_abbrev")
        valid_pairs = set(relation.pairs)
        for table in clean_web_corpus:
            if table.metadata.get("seed_relation") != "state_abbrev":
                continue
            header = table.column_names()
            left_idx, right_idx = (0, 1)
            rows = table.column_pair_rows(left_idx, right_idx)
            forward_ok = all(pair in valid_pairs for pair in rows)
            backward_ok = all((right, left) in valid_pairs for left, right in rows)
            assert forward_ok or backward_ok, header


class TestEnterpriseCorpusGenerator:
    def test_generates_enterprise_relations(self):
        corpus = EnterpriseCorpusGenerator(CorpusGenerationSpec.small(seed=2)).generate()
        seed_names = {
            table.metadata.get("seed_relation")
            for table in corpus
            if not table.metadata.get("seed_relation", "").startswith("__")
        }
        assert set(seed_relation_names("enterprise")) <= seed_names

    def test_pivot_corruption_rate_validated(self):
        with pytest.raises(ValueError):
            EnterpriseCorpusGenerator(pivot_corruption_rate=1.2)

    def test_pivot_corruption_leaks_headers(self):
        generator = EnterpriseCorpusGenerator(
            CorpusGenerationSpec.small(seed=4), pivot_corruption_rate=1.0
        )
        corpus = generator.generate()
        corrupted = [t for t in corpus if t.metadata.get("pivot_corrupted") == "true"]
        assert corrupted
        table = corrupted[0]
        assert table.columns[0].values[0] == table.columns[0].name
