"""Unit tests for the :mod:`repro.exec` execution-backend API.

Covers spec parsing, the backend registry, the three built-in backends'
protocol methods (ordered ``map_blocks``, unordered ``map_unordered``,
``submit``, lifecycle), initializer plumbing, and the
:class:`~repro.core.config.SynthesisConfig` integration — the ``executor``
field, the ``REPRO_EXECUTOR`` environment hook, and the deprecated
``num_workers`` shim.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import EXECUTOR_ENV_VAR, SynthesisConfig
from repro.exec import (
    ExecutionBackend,
    ExecutorSpecError,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    chunk_evenly,
    create_backend,
    parse_executor_spec,
    register_backend,
    registered_backends,
)
from repro.exec import backend as backend_module


def _square(value: int) -> int:
    return value * value


def _read_token(_: object = None) -> str:
    # Reads state installed by _install_token — exercises initializer plumbing.
    return os.environ.get("_REPRO_EXEC_TEST_TOKEN", "missing")


def _install_token(token: str) -> None:
    # Environ survives in forked/spawned workers and threads alike.
    os.environ["_REPRO_EXEC_TEST_TOKEN"] = token


ALL_SPECS = ("serial", "thread:3", "process:2")


class TestSpecParsing:
    def test_kinds_and_counts(self):
        assert parse_executor_spec("serial") == ("serial", 1)
        assert parse_executor_spec("thread:8") == ("thread", 8)
        assert parse_executor_spec("process:4") == ("process", 4)
        assert parse_executor_spec(" Thread:2 ") == ("thread", 2)

    def test_bare_parallel_kind_defaults_to_cpu_count(self):
        kind, workers = parse_executor_spec("process")
        assert kind == "process"
        assert workers == (os.cpu_count() or 1)

    @pytest.mark.parametrize(
        "spec",
        ["", "  ", "rocket:4", "thread:0", "thread:-1", "thread:two", "serial:3",
         "thread:", "process: "],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ExecutorSpecError):
            parse_executor_spec(spec)

    def test_spec_error_is_a_value_error(self):
        assert issubclass(ExecutorSpecError, ValueError)


class TestChunkEvenly:
    def test_contiguous_and_complete(self):
        items = list(range(10))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items
        assert len(chunks) <= 4  # ceil-sized contiguous slices

    def test_fewer_items_than_chunks(self):
        assert chunk_evenly([1, 2], 8) == [[1], [2]]

    def test_empty(self):
        assert chunk_evenly([], 4) == []

    def test_invalid_chunks(self):
        with pytest.raises(ValueError):
            chunk_evenly([1], 0)


class TestChunkEvenlyProperties:
    """Hypothesis invariants for the chunker every fan-out path relies on."""

    @given(
        items=st.lists(st.integers(), max_size=50),
        chunks=st.integers(min_value=1, max_value=64),
    )
    def test_order_preserved_and_nothing_lost(self, items, chunks):
        result = chunk_evenly(items, chunks)
        assert [x for chunk in result for x in chunk] == items

    @given(
        items=st.lists(st.integers(), max_size=50),
        chunks=st.integers(min_value=1, max_value=64),
    )
    def test_no_empty_chunks_and_at_most_requested(self, items, chunks):
        result = chunk_evenly(items, chunks)
        assert all(chunk for chunk in result)
        assert len(result) <= chunks

    @given(
        items=st.lists(st.integers(), min_size=1, max_size=50),
        chunks=st.integers(min_value=1, max_value=64),
    )
    def test_sizes_even_within_one(self, items, chunks):
        sizes = [len(chunk) for chunk in chunk_evenly(items, chunks)]
        assert max(sizes) - min(sizes) <= 1

    @given(items=st.lists(st.integers(), max_size=20))
    def test_more_chunks_than_items_yields_singletons(self, items):
        result = chunk_evenly(items, len(items) + 5)
        assert result == [[item] for item in items]

    @given(
        items=st.lists(st.integers(), max_size=10),
        chunks=st.integers(max_value=0),
    )
    def test_nonpositive_chunks_always_raise(self, items, chunks):
        with pytest.raises(ValueError):
            chunk_evenly(items, chunks)


class TestBackendProtocol:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_map_blocks_preserves_order(self, spec):
        with create_backend(spec) as backend:
            assert backend.map_blocks(sum, [[1, 2], [3], [4, 5, 6]]) == [3, 3, 15]

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_map_unordered_covers_all_items(self, spec):
        with create_backend(spec) as backend:
            assert sorted(backend.map_unordered(_square, range(6))) == [
                0, 1, 4, 9, 16, 25,
            ]

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_submit_returns_future(self, spec):
        with create_backend(spec) as backend:
            assert backend.submit(_square, 7).result(timeout=30) == 49

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_submit_propagates_exceptions(self, spec):
        with create_backend(spec) as backend:
            future = backend.submit(_square, "not-an-int")
            with pytest.raises(TypeError):
                future.result(timeout=30)

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_initializer_runs_before_tasks(self, spec):
        backend = create_backend(
            spec, initializer=_install_token, initargs=(f"token-{spec}",)
        )
        with backend:
            results = set(backend.map_unordered(_read_token, range(3)))
        assert results == {f"token-{spec}"}

    def test_all_backends_agree(self):
        blocks = [list(range(i, i + 4)) for i in range(0, 20, 4)]
        reference = SerialBackend().map_blocks(sum, blocks)
        for spec in ("thread:2", "process:2"):
            with create_backend(spec) as backend:
                assert backend.map_blocks(sum, blocks) == reference

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ThreadBackend(0)

    def test_close_is_idempotent_and_final(self):
        backend = ProcessBackend(2)
        backend.close()
        backend.close()
        with pytest.raises(RuntimeError):
            backend.submit(_square, 1)

    def test_serial_backend_is_always_single_worker(self):
        assert SerialBackend(workers=1).workers == 1

    def test_pool_is_lazy(self):
        # A backend that never runs anything must never spawn its pool.
        backend = ProcessBackend(2)
        assert backend._pool is None
        backend.close()
        assert backend._pool is None

    def test_process_pool_uses_spawn_when_other_threads_are_alive(self):
        # Forking a multi-threaded process can clone a held lock into the
        # child and hang the pool; with any other thread alive the backend
        # must pick the spawn start method instead of the platform default.
        import threading

        release = threading.Event()
        keeper = threading.Thread(target=release.wait, daemon=True)
        keeper.start()
        backend = ProcessBackend(1)
        try:
            assert backend.pool._mp_context.get_start_method() == "spawn"
            assert backend.submit(_square, 5).result(timeout=60) == 25
        finally:
            backend.close()
            release.set()
            keeper.join()

    def test_explicit_start_method_is_respected(self):
        backend = ProcessBackend(1, start_method="fork")
        try:
            assert backend.pool._mp_context.get_start_method() == "fork"
        finally:
            backend.close()


class TestRegistry:
    def test_builtins_registered(self):
        assert {"serial", "thread", "process"} <= set(registered_backends())

    def test_register_custom_backend(self):
        class EchoBackend(SerialBackend):
            kind = "echo"

        register_backend("echo", EchoBackend)
        try:
            backend = create_backend("echo:1")
            assert isinstance(backend, EchoBackend)
            assert backend.map_blocks(sum, [[1, 2]]) == [3]
        finally:
            backend_module._BACKENDS.pop("echo", None)

    def test_register_rejects_spec_like_names(self):
        with pytest.raises(ValueError):
            register_backend("bad:name", SerialBackend)

    def test_create_backend_unknown_kind(self):
        with pytest.raises(ExecutorSpecError):
            create_backend("warp:9")


class TestConfigExecutorField:
    @pytest.fixture(autouse=True)
    def _clean_executor_env(self, monkeypatch):
        # These tests pin the *default* resolution order; a REPRO_EXECUTOR set
        # in the environment (the CI process matrix leg exports process:2
        # job-wide) would legitimately pre-empt it, so clear it here and test
        # the env behavior explicitly via monkeypatch.setenv below.
        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)

    def test_hash_regression_with_extra_dict(self):
        # `extra` is a dict field on a frozen dataclass: without hash=False the
        # generated __hash__ raised TypeError (the PR 4 latent bug).
        assert isinstance(hash(SynthesisConfig()), int)
        assert isinstance(hash(SynthesisConfig(extra={"sweep": 1})), int)
        assert hash(SynthesisConfig()) == hash(SynthesisConfig())

    def test_extra_still_participates_in_equality(self):
        assert SynthesisConfig(extra={"a": 1}) != SynthesisConfig(extra={"a": 2})

    def test_invalid_executor_spec_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            SynthesisConfig(executor="rocket:4")
        with pytest.raises(ValueError):
            SynthesisConfig(executor="thread:0")

    def test_effective_executor_explicit_spec_wins(self):
        config = SynthesisConfig(executor="thread:3", num_workers=8)
        assert config.effective_executor("process") == "thread:3"
        assert config.executor_workers("process") == 3

    def test_effective_executor_defaults_to_serial(self):
        config = SynthesisConfig()
        assert config.effective_executor("process") == "serial"
        assert config.executor_workers() == 1

    def test_legacy_num_workers_warns_once_at_construction(self):
        import warnings

        with pytest.deprecated_call():
            config = SynthesisConfig(num_workers=4)
        # The shim maps per stage without further warnings — the deprecation
        # notice points at the config's construction site, not at whichever
        # pipeline stage happens to consult it first.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert config.effective_executor("process") == "process:4"
            assert config.effective_executor("thread") == "thread:4"

    def test_explicit_executor_silences_the_num_workers_deprecation(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            SynthesisConfig(executor="thread:2", num_workers=8)

    def test_legacy_num_workers_stays_serial_for_opted_out_stages(self):
        # Stages that never parallelized under num_workers (extraction) pass
        # default_kind=None: the shim must leave them serial — the "configs
        # that still set it behave exactly as before" contract.
        config = SynthesisConfig(num_workers=8)
        assert config.effective_executor(default_kind=None) == "serial"

    def test_explicit_spec_still_wins_for_opted_out_stages(self):
        config = SynthesisConfig(executor="process:2", num_workers=8)
        assert config.effective_executor(default_kind=None) == "process:2"

    def test_env_override_fills_unset_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process:2")
        config = SynthesisConfig()
        assert config.executor == "process:2"
        assert config.effective_executor("thread") == "process:2"

    def test_env_override_loses_to_explicit_executor(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "process:2")
        assert SynthesisConfig(executor="thread:3").executor == "thread:3"

    def test_env_override_beats_num_workers_shim(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "serial")
        config = SynthesisConfig(num_workers=8)
        assert config.effective_executor("process") == "serial"

    def test_invalid_env_spec_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV_VAR, "bogus:2")
        with pytest.raises(ValueError):
            SynthesisConfig()

    def test_with_overrides_preserves_executor(self):
        config = SynthesisConfig(executor="process:2").with_overrides(fd_theta=0.9)
        assert config.executor == "process:2"


class TestExecutionBackendBase:
    def test_base_methods_are_abstract(self):
        backend = ExecutionBackend(1)
        with pytest.raises(NotImplementedError):
            backend.map_blocks(sum, [[1]])
        with pytest.raises(NotImplementedError):
            backend.submit(sum, [1])

    def test_concurrent_first_use_creates_one_pool(self):
        # The lazy pool property is shared by many threads (daemon dispatchers
        # submit to one per-generation backend); a check-then-create race must
        # not construct (and orphan) a second executor.
        from concurrent.futures import ThreadPoolExecutor

        backend = ThreadBackend(2)
        try:
            with ThreadPoolExecutor(max_workers=8) as racers:
                pools = list(
                    racers.map(lambda _: backend.pool, range(16))
                )
            assert len({id(pool) for pool in pools}) == 1
        finally:
            backend.close()


class TestDaemonExecutorSizing:
    def test_executor_spec_worker_count_is_honored(self):
        # Regression: the old `workers: int = 2` default silently overrode the
        # count in an explicit spec, quietly serving "process:8" on 2 workers.
        from repro.applications.service import MappingService
        from repro.serving import SynthesisDaemon

        daemon = SynthesisDaemon(MappingService([]), executor="process:3")
        try:
            assert daemon.workers == 3
            assert daemon.executor_kind == "process"
        finally:
            daemon.close()

    def test_explicit_workers_still_win_over_spec(self):
        from repro.applications.service import MappingService
        from repro.serving import SynthesisDaemon

        daemon = SynthesisDaemon(MappingService([]), workers=2, executor="process:8")
        try:
            assert daemon.workers == 2
        finally:
            daemon.close()

    def test_explicit_workers_survive_a_serial_spec(self):
        # Regression: a serial spec used to clamp an explicitly requested
        # worker count down to 1 with no error — an io-bound deployment that
        # asked for 4 overlapping dispatchers silently lost 3 of them.
        from repro.applications.service import MappingService
        from repro.serving import SynthesisDaemon

        daemon = SynthesisDaemon(MappingService([]), workers=4, executor="serial")
        try:
            assert daemon.workers == 4
        finally:
            daemon.close()

    def test_default_without_executor_is_two_thread_workers(self):
        from repro.applications.service import MappingService
        from repro.serving import SynthesisDaemon

        daemon = SynthesisDaemon(MappingService([]))
        try:
            assert daemon.workers == 2
            assert daemon.executor_kind == "thread"
        finally:
            daemon.close()

    def test_from_artifact_explicit_serial_beats_legacy_num_workers(
        self, tmp_path, monkeypatch
    ):
        # Regression: from_artifact used to map an explicit "serial" spec to
        # None and let the deprecated num_workers resurrect a 4-worker daemon.
        from repro.core.config import SynthesisConfig
        from repro.core.pipeline import SynthesisPipeline
        from repro.corpus.corpus import TableCorpus
        from repro.corpus.seeds import get_seed_relation
        from repro.corpus.table import Table
        from repro.serving import SynthesisDaemon

        monkeypatch.delenv(EXECUTOR_ENV_VAR, raising=False)
        corpus = TableCorpus(
            [
                Table.from_rows(
                    table_id=f"t{i}",
                    header=["name", "code"],
                    rows=[list(r) for r in get_seed_relation("state_abbrev").pairs[:6]],
                    domain=f"d{i}.example",
                )
                for i in range(2)
            ],
            name="tiny",
        )
        config = SynthesisConfig(
            executor="serial", num_workers=4, use_pmi_filter=False,
            min_domains=1, min_mapping_size=2,
        )
        pipeline = SynthesisPipeline(config)
        pipeline.run(corpus)
        path = pipeline.save_artifact(tmp_path / "tiny.gz")
        daemon = SynthesisDaemon.from_artifact(path, config=config, watch=False)
        try:
            assert daemon.executor_kind == "serial"
            assert daemon.workers == 1
        finally:
            daemon.close()


class TestMapReducePicklabilityProbe:
    def test_closure_job_degrades_to_threads_without_pool_churn(self):
        # A closure-capturing job cannot pickle; the engine must detect that
        # before spawning a process pool and still fan out (threads), with the
        # degradation observable and the output identical to serial.
        from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

        bonus = 10  # captured -> mapper is a closure -> unpicklable

        def mapper(record):
            yield record % 3, record + bonus

        def reducer(key, values):
            yield (key, sorted(values))

        job = MapReduceJob(mapper=mapper, reducer=reducer, name="closure")
        records = list(range(20))
        serial = MapReduceEngine().run(job, records)
        engine = MapReduceEngine(executor="process:2")
        assert engine.run(job, records) == serial
        assert engine.last_map_fallback

    def test_picklable_job_runs_on_process_backend(self):
        from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

        job = MapReduceJob(mapper=_count_mapper, reducer=_sum_reducer, name="wc")
        records = ["a b a", "b c", "a"] * 4
        serial = MapReduceEngine().run(job, records)
        engine = MapReduceEngine(executor="process:2")
        assert engine.run(job, records) == serial
        assert not engine.last_map_fallback


def _count_mapper(line):
    for word in line.split():
        yield word, 1


def _sum_reducer(key, values):
    yield (key, sum(values))


# ---------------------------------------------------------------------------------------
# FanOut: the shared gate + chunk + serial-fallback skeleton
# ---------------------------------------------------------------------------------------
class _BrokenBackend(ExecutionBackend):
    """A registered backend whose every operation fails (pool-failure stand-in)."""

    kind = "broken"

    def map_blocks(self, fn, blocks):
        raise RuntimeError("broken pool")

    def map_unordered(self, fn, items):
        raise RuntimeError("broken pool")
        yield  # pragma: no cover - makes this a generator like the real ones


class TestFanOut:
    def test_serial_and_single_worker_never_fan_out(self):
        from repro.exec import FanOut

        assert not FanOut("serial").should_fan_out(10_000)
        assert not FanOut("thread:1").should_fan_out(10_000)

    def test_gate_requires_two_items_per_worker_by_default(self):
        from repro.exec import FanOut

        fan = FanOut("thread:3")
        assert not fan.should_fan_out(5)
        assert fan.should_fan_out(6)
        # Call sites with historically different gates pass min_items.
        assert fan.should_fan_out(2, min_items=2)

    def test_chunking_matches_chunk_evenly(self):
        from repro.exec import FanOut

        fan = FanOut("thread:2", chunks_per_worker=4)
        items = list(range(100))
        assert fan.chunk(items) == chunk_evenly(items, 8)
        one_per_worker = FanOut("thread:3", chunks_per_worker=1)
        assert one_per_worker.chunk(items) == chunk_evenly(items, 3)

    @pytest.mark.parametrize("spec", ["thread:2", "process:2"])
    def test_run_blocks_matches_serial(self, spec):
        from repro.exec import FanOut

        fan = FanOut(spec)
        blocks = [[1, 2], [3], [4, 5, 6]]
        assert fan.run_blocks(_sum_block, blocks) == [3, 3, 15]
        assert not fan.fallback

    def test_run_unordered_covers_all_blocks(self):
        from repro.exec import FanOut

        fan = FanOut("thread:2")
        blocks = [[n] for n in range(10)]
        results = fan.run_unordered(_sum_block, blocks)
        assert sorted(results) == list(range(10))
        assert not fan.fallback

    def test_pool_failure_returns_none_and_sets_fallback(self):
        from repro.exec import FanOut

        register_backend("broken", _BrokenBackend)
        try:
            fan = FanOut("broken:2")
            assert fan.run_blocks(_sum_block, [[1], [2]]) is None
            assert fan.fallback
            fan_unordered = FanOut("broken:2")
            assert fan_unordered.run_unordered(_sum_block, [[1], [2]]) is None
            assert fan_unordered.fallback
        finally:
            backend_module._BACKENDS.pop("broken", None)

    def test_spec_override_clamps_workers(self):
        from repro.exec import FanOut

        fan = FanOut("thread:8", chunks_per_worker=1)
        # The Map-Reduce site clamps pool width to the record count via spec=.
        assert fan.run_blocks(_sum_block, [[1], [2]], spec="thread:2") == [1, 2]
        assert not fan.fallback

    def test_invalid_spec_fails_at_construction(self):
        from repro.exec import FanOut

        with pytest.raises(ExecutorSpecError):
            FanOut("thread:zero")
        with pytest.raises(ValueError, match="chunks_per_worker"):
            FanOut("thread:2", chunks_per_worker=0)

    def test_initializer_reaches_workers(self):
        from repro.exec import FanOut

        fan = FanOut("process:2")
        results = fan.run_blocks(
            _read_token, [None, None], initializer=_install_token, initargs=("fanout",)
        )
        if results is None:  # pragma: no cover - sandboxed environments
            assert fan.fallback
        else:
            assert results == ["fanout", "fanout"]


def _sum_block(block):
    return sum(block)
