"""Golden-file regression test for the quickstart example.

PR 1 rebuilt the scoring engine with the guarantee that `examples/quickstart.py`
output stays byte-identical; this test turns that claim into an executed check.
The pipeline is deterministic end to end (seeded corpus generation, sorted
blocking, total-order mapping ranking), so the golden file must match exactly —
any diff means a behavior change that needs a deliberate golden update.

To regenerate after an intentional change::

    PYTHONPATH=src python examples/quickstart.py > tests/golden/quickstart.out
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden" / "quickstart.out"


def test_quickstart_stdout_matches_golden():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    # A fixed hash seed is NOT set on purpose: the output must be deterministic
    # regardless of hash randomization.
    completed = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout == GOLDEN.read_text(), (
        "quickstart.py stdout diverged from tests/golden/quickstart.out; "
        "if the change is intentional, regenerate the golden file"
    )
