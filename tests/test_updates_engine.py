"""Equivalence suite for the incremental update engine, journal, and stream.

The update path's central promise is **exactness**: after any sequence of
streamed deltas, the incremental engine's outputs are equal to a cold
:class:`~repro.core.pipeline.SynthesisPipeline` run over the updated corpus —
not approximately, but mapping-for-mapping (and, at the artifact level,
byte-for-byte per section, except ``stats`` whose timings record *how* the
artifact was produced).  Hypothesis drives arbitrary interleavings of a delta
catalog (row upserts, deletes, table creates, table drops) to lock that
promise; directed tests cover the journal round-trip, auto-compaction, crash
recovery, and the no-op refresh decode-counter regression.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.store.artifact import SynthesisArtifact, save_artifact
from repro.store.format import ArtifactReader
from repro.store.incremental import refresh_artifact
from repro.updates import (
    ArtifactDeltaView,
    DeltaLog,
    IncrementalEngine,
    TableDelta,
    UpdateStream,
    append_delta_section,
    read_delta_sections,
)

from store_helpers import make_fragment_corpus, seed_fragments

pytestmark = pytest.mark.updates

CONFIG = SynthesisConfig(
    use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
)

#: Deltas designed so any subset, in any order, applies cleanly to the base
#: corpus: upserted tables are never dropped, each drop/create targets a
#: dedicated table, and deletes of absent keys are no-ops by construction.
DELTA_CATALOG = [
    TableDelta(
        table_id="sa0-state_abbrev", upserts=(("Zorblat", "ZB"), ("Quux", "QX"))
    ),
    TableDelta(table_id="ci0-country_iso3", deletes=("Albania",)),
    TableDelta(
        table_id="ci1-country_iso3",
        deletes=("Algeria",),
        upserts=(("Algeria", "DZZ"),),
    ),
    TableDelta(
        table_id="nt-fresh",
        header=("name", "code"),
        upserts=(
            ("Arcadia", "ARC"),
            ("Borduria", "BOR"),
            ("Carpathia", "CAR"),
            ("Drachmland", "DRA"),
            ("Elbonia", "ELB"),
        ),
        domain="nt.example",
        title="fresh table",
    ),
    TableDelta(table_id="sa2-state_abbrev", drop=True),
    TableDelta(table_id="sa1-state_abbrev", upserts=(("Alabama", "AX"),)),
    TableDelta(
        table_id="nt-tiny",
        header=("name", "code"),
        upserts=(
            ("Arcadia", "ARC"),
            ("Borduria", "BOR"),
            ("Carpathia", "CAR"),
            ("Drachmland", "DRA"),
        ),
        domain="tiny.example",
    ),
    TableDelta(table_id="ci2-country_iso3", deletes=("Angola", "Argentina")),
]


@pytest.fixture(scope="module")
def base_corpus():
    fragments = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    return make_fragment_corpus(fragments, name="updates-engine-corpus")


def cold_outputs(corpus):
    pipeline = SynthesisPipeline(CONFIG)
    result = pipeline.run(corpus)
    return result, pipeline


# ---------------------------------------------------------------------------------------
# Engine guardrails
# ---------------------------------------------------------------------------------------
def test_engine_rejects_corpus_global_configs(base_corpus):
    with pytest.raises(ValueError):
        IncrementalEngine(base_corpus, SynthesisConfig(use_pmi_filter=True))
    with pytest.raises(ValueError):
        IncrementalEngine(
            base_corpus, SynthesisConfig(use_pmi_filter=False, expand_tables=True)
        )


def test_identity_upsert_is_an_empty_patch(base_corpus):
    engine = IncrementalEngine(base_corpus, CONFIG)
    table = next(iter(base_corpus))
    row = next(iter(table.rows()))
    patch = engine.apply(TableDelta(table_id=table.table_id, upserts=(row,)))
    assert patch.is_empty
    assert engine.last_stats.candidates_changed == 0
    assert engine.last_stats.partitions_recomputed == 0


def test_inconsistent_delta_changes_nothing(base_corpus):
    engine = IncrementalEngine(base_corpus, CONFIG)
    pool_before = list(engine.pool)
    with pytest.raises(Exception):
        engine.apply(TableDelta(table_id="no-such-table", drop=True))
    assert engine.pool == pool_before


# ---------------------------------------------------------------------------------------
# The equivalence property (satellite of record for the whole subsystem)
# ---------------------------------------------------------------------------------------
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    picks=st.lists(
        st.sampled_from(range(len(DELTA_CATALOG))),
        unique=True,
        min_size=1,
        max_size=len(DELTA_CATALOG),
    )
)
def test_any_delta_interleaving_equals_cold_rebuild(picks, base_corpus):
    """Any interleaving of catalog deltas converges to the cold pipeline."""
    engine = IncrementalEngine(base_corpus, CONFIG)
    for pick in picks:
        engine.apply(DELTA_CATALOG[pick])
    cold, _ = cold_outputs(engine.corpus)
    assert engine.mappings == cold.mappings
    assert engine.curated == cold.curated


def test_accumulated_deltas_artifact_matches_cold_sections(base_corpus, tmp_path):
    """After every catalog delta, the artifact is section-byte-identical.

    Every section except ``stats`` — the one section recording run timings,
    which legitimately differ between an incremental apply and a cold run —
    must match a cold rebuild byte for byte.
    """
    engine = IncrementalEngine(base_corpus, CONFIG)
    for delta in DELTA_CATALOG:
        engine.apply(delta)
    incremental_path = save_artifact(engine.artifact(), tmp_path / "inc.bin")

    _, pipeline = cold_outputs(engine.corpus)
    cold_path = pipeline.save_artifact(tmp_path / "cold.bin")

    incremental = ArtifactReader.from_path(incremental_path)
    cold = ArtifactReader.from_path(cold_path)
    assert list(incremental.sections) == list(cold.sections)
    for name in incremental.sections:
        if name == "stats":
            continue
        assert incremental.payload_bytes(name) == cold.payload_bytes(name), name


# ---------------------------------------------------------------------------------------
# Journal: delta sections on the artifact
# ---------------------------------------------------------------------------------------
def test_journal_roundtrip_and_merged_view(base_corpus, tmp_path):
    engine = IncrementalEngine(base_corpus, CONFIG)
    path = save_artifact(engine.artifact(), tmp_path / "served.bin")

    applied = []
    for seq, delta in enumerate(DELTA_CATALOG[:4], start=1):
        patch = engine.apply(delta)
        applied.append((seq, delta, patch))
        append_delta_section(path, seq=seq, delta=delta, patch=patch)

    records = read_delta_sections(path)
    assert [(r.seq, r.delta) for r in records] == [
        (seq, delta) for seq, delta, _ in applied
    ]
    for record, (_, _, patch) in zip(records, applied):
        assert list(record.patch.upserts) == list(patch.upserts)
        assert record.patch.removed == patch.removed
        assert record.patch.pool_size == patch.pool_size

    view = ArtifactDeltaView(path)
    assert view.last_seq == 4
    merged = {m.mapping_id: m for m in view.merged_pool()}
    assert merged == {m.mapping_id: m for m in engine.pool}
    # Checksums cover delta sections like any other section.
    view.reader.verify()
    # The base artifact under the journal still decodes cleanly.
    assert view.base.candidate_count() > 0


# ---------------------------------------------------------------------------------------
# Stream: auto-compaction and crash recovery
# ---------------------------------------------------------------------------------------
def test_stream_auto_compaction_folds_journal(base_corpus, tmp_path):
    config = SynthesisConfig(
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        delta_compact_threshold=3,
    )
    engine = IncrementalEngine(base_corpus, config)
    path = save_artifact(engine.artifact(), tmp_path / "served.bin")
    stream = UpdateStream(
        engine, DeltaLog(tmp_path / "served.log"), artifact_path=path
    )

    for delta in DELTA_CATALOG[:2]:
        stream.apply(delta)
    assert len(read_delta_sections(path)) == 2
    stream.apply(DELTA_CATALOG[2])

    # Threshold reached: the journal folded into the base and the log reset,
    # with sequence numbers preserved for the next append.
    assert stream.compactions == 1
    assert len(stream.log) == 0 and stream.log.base_seq == 3
    assert read_delta_sections(path) == []
    assert stream.apply(DELTA_CATALOG[3]) is not None
    assert stream.last_seq == 4

    # The compacted base equals a cold artifact, section for section (the cold
    # run must carry the same config for the config section to match).
    stream.compact()
    pipeline = SynthesisPipeline(config)
    pipeline.run(engine.corpus)
    cold_path = pipeline.save_artifact(tmp_path / "cold.bin")
    compacted = ArtifactReader.from_path(path)
    cold = ArtifactReader.from_path(cold_path)
    for name in compacted.sections:
        if name == "stats":
            continue
        assert compacted.payload_bytes(name) == cold.payload_bytes(name), name


def test_recovery_replays_durable_log(base_corpus, tmp_path):
    stream = UpdateStream(
        IncrementalEngine(base_corpus, CONFIG), DeltaLog(tmp_path / "r.log")
    )
    for delta in DELTA_CATALOG[:5]:
        stream.apply(delta)

    recovered = UpdateStream.recover(base_corpus, tmp_path / "r.log", CONFIG)
    assert recovered.last_seq == stream.last_seq
    assert recovered.engine.pool == stream.engine.pool
    assert [t.table_id for t in recovered.engine.corpus] == [
        t.table_id for t in stream.engine.corpus
    ]


# ---------------------------------------------------------------------------------------
# Satellite regression: a no-op refresh decodes (almost) nothing
# ---------------------------------------------------------------------------------------
def test_noop_refresh_short_circuit_decodes_only_metadata(base_corpus, tmp_path):
    """An unchanged corpus must not force decoding of any heavy section.

    The no-op path needs the stored config (for the scoring-config check) and
    the table fingerprints (to see that nothing changed); candidates,
    profiles, edges, mappings, and curation must stay encoded.
    """
    _, pipeline = cold_outputs(base_corpus)
    path = pipeline.save_artifact(tmp_path / "noop.bin")

    reader = ArtifactReader.from_path(path)
    artifact = SynthesisArtifact.from_reader(reader)
    refreshed, stats = refresh_artifact(artifact, base_corpus, CONFIG)

    assert stats.noop
    assert refreshed is artifact
    assert set(reader.decode_counts) <= {"config", "fingerprints"}
    assert all(count == 1 for count in reader.decode_counts.values())
