"""Tests for the batched MappingService (applications/service.py)."""

from __future__ import annotations

import pytest

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.applications.autofill import FillResult
from repro.applications.autojoin import JoinResult
from repro.core.binary_table import ValuePair
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation


def mapping_from_seed(name: str, domains: set[str] | None = None) -> MappingRelationship:
    relation = get_seed_relation(name)
    return MappingRelationship(
        mapping_id=name,
        pairs=[ValuePair(left, right) for left, right in relation.pairs],
        domains=domains if domains is not None else {"seed"},
    )


@pytest.fixture(scope="module")
def service() -> MappingService:
    return MappingService(
        [
            mapping_from_seed("state_abbrev"),
            mapping_from_seed("country_iso3"),
            mapping_from_seed("city_state"),
            mapping_from_seed("company_ticker"),
        ]
    )


class TestBatchedServing:
    def test_autofill_batch(self, service):
        responses = service.autofill(
            [
                # The example disambiguates: state names are in state_abbrev's
                # left column AND city_state's right column.
                FillRequest(
                    keys=("California", "Texas", "Ohio", "Washington"),
                    examples={0: "CA"},
                ),
                FillRequest(
                    keys=("San Francisco", "Seattle", "Houston"),
                    examples={0: "California"},
                ),
            ]
        )
        assert len(responses) == 2
        assert all(response.ok for response in responses)
        assert responses[0].result.mapping_id == "state_abbrev"
        assert responses[0].result.filled[1] == "TX"
        assert responses[1].result.mapping_id == "city_state"
        assert responses[1].result.filled[1] == "Washington"
        assert [response.request_index for response in responses] == [0, 1]

    def test_autojoin_batch(self, service):
        responses = service.autojoin(
            [JoinRequest(left_keys=("MSFT", "ORCL"), right_keys=("Oracle", "Microsoft Corp"))]
        )
        assert responses[0].ok
        assert responses[0].result.mapping_id == "company_ticker"
        assert set(responses[0].result.row_pairs) == {(0, 1), (1, 0)}

    def test_autocorrect_batch(self, service):
        responses = service.autocorrect(
            [CorrectRequest(values=("California", "Washington", "Oregon", "CA", "WA"))]
        )
        assert responses[0].ok
        fixes = {s.original: s.suggestion for s in responses[0].result}
        assert fixes == {"CA": "California", "WA": "Washington"}

    def test_empty_batches(self, service):
        assert service.autofill([]) == []
        assert service.autojoin([]) == []
        assert service.autocorrect([]) == []

    def test_no_consistent_mapping(self, service):
        responses = service.autofill([FillRequest(keys=("qqq", "zzz", "vvv"))])
        assert responses[0].ok
        result = responses[0].result
        assert result.mapping_id is None
        assert result.fill_rate == 0.0
        join = service.autojoin(
            [JoinRequest(left_keys=("qqq", "zzz"), right_keys=("aaa", "bbb"))]
        )[0]
        assert join.ok
        assert join.result.mapping_id is None
        assert join.result.row_pairs == []

    def test_invalid_request_does_not_poison_batch(self, service):
        responses = service.autofill(
            [
                FillRequest(keys=("California",), examples={7: "CA"}),
                FillRequest(
                    keys=("California", "Texas", "Ohio", "Nevada"), examples={0: "CA"}
                ),
            ]
        )
        assert not responses[0].ok
        assert "out of range" in responses[0].error
        assert responses[0].result is None
        assert responses[1].ok
        assert responses[1].result.filled[1] == "TX"

    def test_unexpected_exception_does_not_poison_batch(self, service):
        """Non-ValueError failures (e.g. non-string values) are also isolated."""
        responses = service.autofill(
            [
                FillRequest(keys=("California",), examples={0: 123}),
                FillRequest(
                    keys=("California", "Texas", "Ohio", "Nevada"), examples={0: "CA"}
                ),
            ]
        )
        assert not responses[0].ok
        assert responses[0].error
        assert responses[1].ok
        assert responses[1].result.filled[1] == "TX"

    def test_stats_accumulate(self):
        fresh = MappingService([mapping_from_seed("state_abbrev")])
        fresh.autofill([FillRequest(keys=("California", "Texas", "Ohio", "Nevada"))])
        fresh.autojoin([])
        fresh.autocorrect(
            [CorrectRequest(values=("California", "CA", "Washington", "WA", "Oregon"))]
        )
        stats = fresh.stats
        assert stats.index_size == 1
        assert stats.batches == 3
        assert stats.requests == {"autofill": 1, "autocorrect": 1}
        assert stats.errors == {}
        assert stats.total_requests == 2
        as_dict = stats.as_dict()
        assert as_dict["total_requests"] == 2
        assert as_dict["source"] == "memory"

    def test_deterministic_across_pool_order(self):
        mappings = [
            mapping_from_seed("state_abbrev", domains={"a", "b"}),
            mapping_from_seed("city_state", domains={"c", "d"}),
            mapping_from_seed("company_ticker", domains={"e", "f"}),
        ]
        forward = MappingService(mappings)
        shuffled = MappingService(list(reversed(mappings)))
        requests = [FillRequest(keys=("California", "Texas", "Ohio", "Nevada"))]
        assert [r.result for r in forward.autofill(requests)] == [
            r.result for r in shuffled.autofill(requests)
        ]
        assert [m.mapping_id for m in forward.index.mappings] == [
            m.mapping_id for m in shuffled.index.mappings
        ]


class TestServiceFromPipeline:
    def test_artifact_answers_match_fresh_run(self, store_corpus, store_config, tmp_path):
        pipeline = SynthesisPipeline(store_config)
        result = pipeline.run(store_corpus)
        path = pipeline.save_artifact(tmp_path / "serving.artifact")

        fresh = MappingService.from_result(result)
        loaded = MappingService.from_artifact(path)
        assert len(fresh) == len(loaded) > 0
        assert loaded.stats.load_seconds > 0.0
        assert loaded.stats.source.startswith("artifact:")

        fill_requests = [
            FillRequest(keys=("California", "Texas", "Ohio", "Washington")),
            FillRequest(keys=("Kenya", "Brazil", "Japan", "Norway")),
            FillRequest(keys=()),
        ]
        join_requests = [
            JoinRequest(left_keys=("California", "Texas"), right_keys=("TX", "CA")),
        ]
        correct_requests = [
            CorrectRequest(values=("California", "Washington", "Oregon", "CA", "WA")),
        ]
        for kind, requests in [
            ("autofill", fill_requests),
            ("autojoin", join_requests),
            ("autocorrect", correct_requests),
        ]:
            fresh_batch = getattr(fresh, kind)(requests)
            loaded_batch = getattr(loaded, kind)(requests)
            assert [r.result for r in fresh_batch] == [r.result for r in loaded_batch]
            assert all(r.ok for r in loaded_batch)

    def test_from_result_prefers_curated(self, store_corpus, store_config):
        pipeline = SynthesisPipeline(store_config)
        result = pipeline.run(store_corpus)
        assert result.curated
        service = MappingService.from_result(result)
        assert len(service) == len(result.curated)
        everything = MappingService.from_result(result, prefer_curated=False)
        assert len(everything) == len(result.mappings)

    def test_served_types(self, store_corpus, store_config):
        service = MappingService.from_result(
            SynthesisPipeline(store_config).run(store_corpus)
        )
        fill = service.autofill([FillRequest(keys=("California", "Texas", "Ohio", "Nevada"))])[0]
        assert isinstance(fill.result, FillResult)
        join = service.autojoin(
            [JoinRequest(left_keys=("California",), right_keys=("CA",))]
        )[0]
        assert isinstance(join.result, JoinResult)
        assert fill.elapsed_seconds >= 0.0
        assert fill.kind == "autofill"
