"""Equivalence of the indexed/cached/parallel scoring engine with the naive oracle.

The profiled fast path in :mod:`repro.graph.compatibility` and the reworked
builder in :mod:`repro.graph.build` are pure optimizations: on any input they
must produce the exact same scores, edges and weights as the seed implementation
preserved in :mod:`repro.graph.reference`.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.evaluation.experiments import (
    ExperimentScale,
    experiment_config,
    make_web_corpus,
)
from repro.extraction.candidates import CandidateExtractor
from repro.graph.build import GraphBuilder
from repro.graph.compatibility import CompatibilityScorer
from repro.graph.reference import NaiveCompatibilityScorer, naive_build_graph
from repro.text.edit_distance import banded_edit_distance, edit_distance
from repro.text.synonyms import SynonymDictionary


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


# ---------------------------------------------------------------------------------------
# Banded edit distance vs the unbanded oracle
# ---------------------------------------------------------------------------------------
class TestBandedEditDistanceOracle:
    @given(
        st.text(alphabet="abcde ", max_size=24),
        st.text(alphabet="abcde ", max_size=24),
        st.integers(min_value=0, max_value=12),
    )
    @settings(max_examples=300, deadline=None)
    def test_agrees_with_unbanded_oracle(self, first, second, threshold):
        """Within the band the exact distance is returned; beyond it, ``None``."""
        exact = edit_distance(first, second)
        banded = banded_edit_distance(first, second, threshold)
        if exact <= threshold:
            assert banded == exact
        else:
            assert banded is None

    def test_agrees_on_random_strings(self):
        rng = random.Random(20260728)
        alphabet = "abcdefghij-"
        for _ in range(500):
            first = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 30))
            )
            second = "".join(
                rng.choice(alphabet) for _ in range(rng.randrange(0, 30))
            )
            threshold = rng.randrange(0, 15)
            exact = edit_distance(first, second)
            banded = banded_edit_distance(first, second, threshold)
            assert banded == (exact if exact <= threshold else None)


# ---------------------------------------------------------------------------------------
# Profiled scorer vs the naive scorer
# ---------------------------------------------------------------------------------------
ROW_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from(
            ["Algeria", "Algeria[1]", "Albania", "American Samoa",
             "American Samoa (US)", "South Korea", "x", "yz"]
        ),
        st.sampled_from(["ALG", "DZA", "ALB", "ASA", "ASM", "KOR", "K0R", "1"]),
    ),
    min_size=1,
    max_size=8,
)


class TestScorerEquivalence:
    @given(ROW_STRATEGY, ROW_STRATEGY, st.booleans())
    @settings(max_examples=120, deadline=None)
    def test_scores_match_naive_reference(self, rows_a, rows_b, approximate):
        config = SynthesisConfig(use_approximate_matching=approximate)
        first, second = make_binary("a", rows_a), make_binary("b", rows_b)
        fast = CompatibilityScorer(config)
        naive = NaiveCompatibilityScorer(config)
        assert fast.positive(first, second) == pytest.approx(
            naive.positive(first, second)
        )
        assert fast.negative(first, second) == pytest.approx(
            naive.negative(first, second)
        )
        assert fast.conflict_lefts(first, second) == naive.conflict_lefts(first, second)

    def test_scores_match_with_synonyms(self, iso_tables):
        synonyms = SynonymDictionary(
            [["US Virgin Islands", "United States Virgin Islands"],
             ["South Korea", "Korea, Republic of (South)"]]
        )
        config = SynthesisConfig()
        fast = CompatibilityScorer(config, synonyms)
        naive = NaiveCompatibilityScorer(config, synonyms)
        for first in iso_tables:
            for second in iso_tables:
                if first is second:
                    continue
                assert fast.positive(first, second) == pytest.approx(
                    naive.positive(first, second)
                )
                assert fast.conflict_lefts(first, second) == naive.conflict_lefts(
                    first, second
                )

    def test_match_cache_is_exercised(self, iso_tables):
        scorer = CompatibilityScorer(SynthesisConfig())
        for first in iso_tables:
            for second in iso_tables:
                if first is not second:
                    scorer.score(first, second)
        assert scorer.match_cache_hits > 0


# ---------------------------------------------------------------------------------------
# Full graph equivalence on a seeded corpus
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def seeded_candidates():
    config = experiment_config()
    corpus = make_web_corpus(ExperimentScale(tables_per_relation=3, max_rows=14, seed=13))
    candidates, _ = CandidateExtractor(config).extract(corpus)
    assert candidates, "seeded corpus produced no candidates"
    return config, candidates


class TestGraphEquivalence:
    def test_builder_matches_naive_build(self, seeded_candidates):
        """The fast builder yields the exact same edges and weights as the seed."""
        config, candidates = seeded_candidates
        reference = naive_build_graph(candidates, config)
        graph = GraphBuilder(config).build(candidates)
        assert graph.positive_edges == reference.positive_edges
        assert graph.negative_edges == reference.negative_edges

    def test_parallel_build_matches_sequential(self, seeded_candidates):
        """Fanning blocked pairs across workers cannot change the graph."""
        config, candidates = seeded_candidates
        sequential = GraphBuilder(config).build(candidates)
        builder = GraphBuilder(config.with_overrides(num_workers=2))
        parallel = builder.build(candidates)
        # The pool must actually have run — a silent sequential fallback would
        # make this comparison vacuous.
        assert not builder.last_build_stats.parallel_fallback
        assert builder.last_build_stats.num_workers == 2
        assert parallel.positive_edges == sequential.positive_edges
        assert parallel.negative_edges == sequential.negative_edges

    def test_build_stats_populated(self, seeded_candidates):
        config, candidates = seeded_candidates
        builder = GraphBuilder(config)
        builder.build(candidates)
        stats = builder.last_build_stats
        assert stats.num_tables == len(candidates)
        assert stats.pairs_scored >= stats.pairs_blocked_positive
        assert 0.0 <= stats.cache_hit_rate <= 1.0

    def test_positive_only_config_matches(self, seeded_candidates):
        config, candidates = seeded_candidates
        ablation = config.with_overrides(use_negative_edges=False)
        reference = naive_build_graph(candidates, ablation)
        graph = GraphBuilder(ablation).build(candidates)
        assert graph.positive_edges == reference.positive_edges
        assert graph.negative_edges == {} == reference.negative_edges
