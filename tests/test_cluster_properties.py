"""Property tests: 3-shard cluster answers ≡ synchronous MappingService answers.

Hypothesis generates arbitrary programs of :class:`FillRequest` /
:class:`JoinRequest` / :class:`CorrectRequest` batches — valid, junk-valued,
and malformed alike — and pushes them through a live 3-shard
:class:`ClusterRouter` (replication 2), from one client and from racing
client threads, across rolling artifact rollouts published under a
deterministic :class:`FaultPlan` (injected publish failures exercise the
watcher's retry path mid-roll), and with one replica killed mid-stream.
Every batch's envelopes must be byte-identical (same ``repr``) to a direct
synchronous :class:`MappingService` call over the full artifact.

The whole module runs once per transport: ``inproc`` replicas (daemons in
this process) and ``tcp`` replicas (one :mod:`repro.net.server` subprocess
each, reached through framed sockets).  The oracle, the programs, and every
assertion are transport-blind — that is the cluster's wire-level serving
contract.  The chaos differs per transport only because fault injection is
process-local: the inproc roll injects watcher publish failures, the tcp
roll injects connection resets / torn frames / network stalls at the client
sockets (faults in the router process cannot reach a subprocess watcher).
"""

from __future__ import annotations

import os
import string
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.cluster import ClusterRouter
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.faults import FaultPlan, injected_faults

pytestmark = pytest.mark.cluster

#: Pinned by the chaos CI leg (REPRO_FAULT_SEED) so every injected publish
#: failure during the rolling-rollout property is reproducible.
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", "20260808"))

TRANSPORTS = ("inproc", "tcp")


def chaos_plan(transport: str) -> FaultPlan:
    """The rolling-rollout fault plan for one transport.

    Injection is process-local, so each transport gets the chaos that can
    actually reach it: inproc replicas share the router's process (watcher
    publish failures land), tcp replicas live in subprocesses (only the
    client-side socket sites — resets, torn frames, stalls — land).
    """
    if transport == "inproc":
        return FaultPlan(seed=FAULT_SEED, publish_failure_rate=0.25)
    return FaultPlan(
        seed=FAULT_SEED,
        conn_reset_rate=0.05,
        torn_frame_rate=0.05,
        slow_network_rate=0.10,
        slow_network_seconds=0.005,
        max_faults=6,
    )

# ---------------------------------------------------------------------------------------
# Strategies (mirrors test_daemon_properties.py: same shapes, same junk)
# ---------------------------------------------------------------------------------------
_SEED_VALUES = tuple(
    value
    for relation in ("state_abbrev", "country_iso3")
    for left, right in get_seed_relation(relation).pairs
    for value in (left, right)
)

values = st.one_of(
    st.sampled_from(_SEED_VALUES),
    st.text(alphabet=string.ascii_letters + " -.", min_size=0, max_size=10),
)

fill_requests = st.builds(
    FillRequest,
    keys=st.lists(values, max_size=6).map(tuple),
    # Out-of-range example rows must error identically through the router.
    examples=st.none() | st.dictionaries(st.integers(-1, 8), values, max_size=2),
)
join_requests = st.builds(
    JoinRequest,
    left_keys=st.lists(values, max_size=5).map(tuple),
    right_keys=st.lists(values, max_size=5).map(tuple),
)
correct_requests = st.builds(
    CorrectRequest, values=st.lists(values, max_size=8).map(tuple)
)

envelopes = st.one_of(
    st.tuples(st.just("autofill"), st.lists(fill_requests, max_size=3)),
    st.tuples(st.just("autojoin"), st.lists(join_requests, max_size=3)),
    st.tuples(st.just("autocorrect"), st.lists(correct_requests, max_size=3)),
)
programs = st.lists(envelopes, min_size=1, max_size=6)


def canonical(responses) -> str:
    """Byte-comparable form of a batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


# ---------------------------------------------------------------------------------------
# Fixtures: one artifact, one router, one sync oracle for the whole module
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def served_artifact_path(store_corpus, tmp_path_factory):
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(store_corpus)
    return pipeline.save_artifact(tmp_path_factory.mktemp("cluster-props") / "a.gz")


@pytest.fixture(scope="module")
def oracle(served_artifact_path) -> MappingService:
    return MappingService.from_artifact(served_artifact_path)


@pytest.fixture(scope="module", params=TRANSPORTS)
def transport(request) -> str:
    """Run the whole module once per transport (inproc and tcp replicas)."""
    return request.param


@pytest.fixture(scope="module")
def router(served_artifact_path, tmp_path_factory, transport):
    router = ClusterRouter.from_artifact(
        served_artifact_path,
        num_shards=3,
        replication=2,
        shard_dir=tmp_path_factory.mktemp(f"cluster-props-shards-{transport}"),
        watch=False,
        workers=2,
        transport=transport,
    )
    yield router
    router.close()


# ---------------------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------------------
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs)
def test_cluster_program_equals_oracle(program, router, oracle):
    """Any request program through the cluster returns the oracle's answers."""
    for kind, batch in program:
        assert canonical(router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs)
def test_threaded_cluster_clients_equal_oracle(program, router, oracle):
    """Batches racing from many client threads change nothing."""
    with ThreadPoolExecutor(max_workers=4) as clients:
        handles = [
            clients.submit(router.serve, kind, batch) for kind, batch in program
        ]
        responses = [handle.result(timeout=60) for handle in handles]
    for (kind, batch), got in zip(program, responses):
        assert canonical(got) == canonical(getattr(oracle, kind)(batch))


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs, roll_after=st.integers(0, 5))
def test_rolling_rollout_of_same_artifact_is_invisible(
    program, roll_after, rolling_router, served_artifact_path, oracle
):
    """A mid-program rolling rollout never changes any answer.

    Each replica's generation advances one at a time, under deterministically
    injected publish failures (the watcher retries past them), and every
    envelope before, during, and after the roll matches the sync oracle.
    """
    split = roll_after % (len(program) + 1)
    for kind, batch in program[:split]:
        assert canonical(rolling_router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )
    with injected_faults(chaos_plan(rolling_router.transport)):
        rolling_router.rollout(served_artifact_path, timeout=60)
        # Over tcp the socket faults land on the serve path, not the roll:
        # a post-roll slice served *inside* the chaos window must survive
        # injected resets / torn frames / stalls via breaker-guided retry.
        for kind, batch in program[split:]:
            assert canonical(rolling_router.serve(kind, batch)) == canonical(
                getattr(oracle, kind)(batch)
            )
    for kind, batch in program[split:]:
        assert canonical(rolling_router.serve(kind, batch)) == canonical(
            getattr(oracle, kind)(batch)
        )


@pytest.fixture(scope="module")
def rolling_router(served_artifact_path, tmp_path_factory, transport):
    router = ClusterRouter.from_artifact(
        served_artifact_path,
        num_shards=3,
        replication=2,
        shard_dir=tmp_path_factory.mktemp(f"cluster-props-rolling-{transport}"),
        watch=True,
        poll_seconds=0.05,
        workers=2,
        transport=transport,
        # Socket chaos opens breakers; a short cooldown keeps a healthy
        # cover reachable within one retry schedule.
        breaker_cooldown=0.1,
    )
    yield router
    router.close()


def test_one_replica_killed_mid_stream_changes_nothing(
    served_artifact_path, oracle, tmp_path, transport
):
    """Killing a replica mid-program: replication 2 still covers every shard.

    Directed rather than hypothesis-driven because the kill is one-way state;
    the program mixes every kind plus malformed requests either side of it.
    Over tcp the kill takes the replica's server process down with it, so
    failover is exercised against real dead sockets.
    """
    program = [
        ("autofill", [
            FillRequest(keys=("California", "Texas", "Ohio")),
            FillRequest(keys=("California",), examples={9: "CA"}),
        ]),
        ("autojoin", [
            JoinRequest(left_keys=("California", "Texas"), right_keys=("TX", "CA")),
        ]),
        ("autocorrect", [
            CorrectRequest(values=("California", "Washington", "CA", "junk")),
        ]),
    ]
    router = ClusterRouter.from_artifact(
        served_artifact_path,
        num_shards=3,
        replication=2,
        shard_dir=tmp_path / "shards",
        watch=False,
        workers=2,
        transport=transport,
    )
    with router:
        for kind, batch in program:
            assert canonical(router.serve(kind, batch)) == canonical(
                getattr(oracle, kind)(batch)
            )
        router.kill(0)
        router.kill(0)  # idempotent: a second kill is a silent no-op
        for kind, batch in program:
            assert canonical(router.serve(kind, batch)) == canonical(
                getattr(oracle, kind)(batch)
            )
        health = router.health()
        assert health["status"] == "degraded"
        assert any("replica 0" in reason for reason in health["degraded_reasons"])
    router.close()  # double close (after __exit__) must be a no-op too
