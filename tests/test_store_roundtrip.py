"""Round-trip, corruption, and version-gating tests for the artifact store.

The property tests build randomized artifacts (random corpora of candidate
tables, random graphs, random mappings), push them through save → load, and
require the loaded artifact to be semantically identical — the guarantee the
serving layer's "artifact == fresh run" contract rests on.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import SynthesisPipeline
from repro.graph.build import CompatibilityGraph
from repro.graph.compatibility import CompatibilityScorer
from repro.store import (
    ARTIFACT_VERSION,
    ArtifactCorruptionError,
    ArtifactError,
    ArtifactVersionError,
    SynthesisArtifact,
    load_artifact,
    save_artifact,
)
from repro.store.artifact import ARTIFACT_MAGIC

# ---------------------------------------------------------------------------------------
# Hypothesis strategies
# ---------------------------------------------------------------------------------------
_value = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x24F),
    min_size=1,
    max_size=12,
)
_row = st.tuples(_value, _value)


@st.composite
def binary_tables(draw, index: int) -> BinaryTable:
    rows = draw(st.lists(_row, min_size=1, max_size=8))
    return BinaryTable(
        table_id=f"cand-{index:03d}",
        pairs=[ValuePair(left, right) for left, right in rows],
        left_name=draw(_value),
        right_name=draw(_value),
        source_table_id=f"src-{index % 3}",
        domain=draw(st.sampled_from(["a.example", "b.example", ""])),
    )


@st.composite
def artifacts(draw) -> SynthesisArtifact:
    num_candidates = draw(st.integers(min_value=1, max_value=5))
    candidates = [draw(binary_tables(index)) for index in range(num_candidates)]

    graph = CompatibilityGraph(tables=list(candidates))
    if num_candidates >= 2:
        pair_indices = st.tuples(
            st.integers(0, num_candidates - 1), st.integers(0, num_candidates - 1)
        ).filter(lambda pair: pair[0] != pair[1])
        for first, second in draw(st.lists(pair_indices, max_size=4, unique=True)):
            graph.add_positive(first, second, draw(st.floats(0.0, 1.0)))
        for first, second in draw(st.lists(pair_indices, max_size=3, unique=True)):
            graph.add_negative(first, second, draw(st.floats(-1.0, 0.0)))

    config = draw(
        st.sampled_from(
            [
                SynthesisConfig(),
                SynthesisConfig(edge_threshold=0.85, conflict_threshold=-0.05),
                SynthesisConfig(use_pmi_filter=False, min_domains=1, num_workers=2),
            ]
        )
    )

    num_mappings = draw(st.integers(min_value=0, max_value=4))
    mappings = []
    for index in range(num_mappings):
        rows = draw(st.lists(_row, min_size=1, max_size=10))
        mappings.append(
            MappingRelationship(
                mapping_id=f"mapping-{index:05d}",
                pairs=[ValuePair(left, right) for left, right in rows],
                source_tables=[c.table_id for c in candidates[: index + 1]],
                domains=set(draw(st.lists(_value, max_size=3))),
                column_names=(draw(_value), draw(_value)),
            )
        )
    curated = [m for m in mappings if draw(st.booleans())]

    scorer = CompatibilityScorer(config)
    profiles = {c.table_id: scorer.profile(c) for c in candidates}
    return SynthesisArtifact.from_run(
        config=config,
        corpus_name="hypothesis-corpus",
        corpus_fingerprint="f" * 64,
        table_fingerprints={f"src-{i}": f"{i:064d}" for i in range(3)},
        candidates=candidates,
        graph=graph,
        profiles=profiles,
        mappings=mappings,
        curated=curated,
        extraction_stats={"raw_pairs": 12.0},
        timings={"extraction": 0.25},
        metadata={"num_tables": 3.0},
    )


def make_sample_artifact() -> SynthesisArtifact:
    """A small deterministic artifact for the non-property tests."""
    candidates = [
        BinaryTable(
            table_id=f"cand-{i:03d}",
            pairs=[ValuePair(f"left-{i}-{j}", f"right-{i}-{j}") for j in range(4)],
            source_table_id=f"src-{i % 2}",
            domain="sample.example",
        )
        for i in range(3)
    ]
    graph = CompatibilityGraph(tables=list(candidates))
    graph.add_positive(0, 1, 0.75)
    graph.add_negative(1, 2, -0.25)
    mappings = [
        MappingRelationship(
            mapping_id="mapping-00000",
            pairs=[ValuePair("a", "b"), ValuePair("c", "d")],
            source_tables=["cand-000", "cand-001"],
            domains={"sample.example"},
            column_names=("name", "code"),
        )
    ]
    config = SynthesisConfig()
    scorer = CompatibilityScorer(config)
    return SynthesisArtifact.from_run(
        config=config,
        corpus_name="sample-corpus",
        corpus_fingerprint="f" * 64,
        table_fingerprints={"src-0": "0" * 64, "src-1": "1" * 64},
        candidates=candidates,
        graph=graph,
        profiles={c.table_id: scorer.profile(c) for c in candidates},
        mappings=mappings,
        curated=mappings,
        extraction_stats={"raw_pairs": 6.0},
        timings={"extraction": 0.1},
        metadata={"num_tables": 2.0},
    )


def assert_artifacts_identical(
    loaded: SynthesisArtifact, original: SynthesisArtifact
) -> None:
    assert loaded.config == original.config
    assert loaded.corpus_name == original.corpus_name
    assert loaded.corpus_fingerprint == original.corpus_fingerprint
    assert loaded.table_fingerprints == original.table_fingerprints
    assert loaded.positive_edges == original.positive_edges
    assert loaded.negative_edges == original.negative_edges
    # MappingRelationship is a plain dataclass: == compares all fields deeply.
    assert loaded.mappings == original.mappings
    assert loaded.curated_ids == original.curated_ids
    assert loaded.extraction_stats == original.extraction_stats
    assert loaded.timings == original.timings
    assert loaded.metadata == original.metadata
    # BinaryTable.__eq__ is id-based, so compare the candidates field by field.
    assert len(loaded.candidates) == len(original.candidates)
    for mine, theirs in zip(loaded.candidates, original.candidates):
        assert mine.table_id == theirs.table_id
        assert mine.pairs == theirs.pairs
        assert (mine.left_name, mine.right_name) == (theirs.left_name, theirs.right_name)
        assert mine.source_table_id == theirs.source_table_id
        assert mine.domain == theirs.domain
    # Stored profiles must reconstruct exactly what a fresh scorer derives.
    scorer = CompatibilityScorer(loaded.config)
    for candidate in loaded.candidates:
        reconstructed = loaded.profile_for(candidate)
        assert reconstructed is not None
        fresh = scorer.profile(candidate)
        assert reconstructed.left_keys == fresh.left_keys
        assert reconstructed.right_keys == fresh.right_keys
        assert reconstructed.compact_lefts == fresh.compact_lefts
        assert reconstructed.pair_keys == fresh.pair_keys
        assert reconstructed.left_key_set == fresh.left_key_set
        assert reconstructed.by_left_key == fresh.by_left_key
        assert reconstructed.left_length_buckets == fresh.left_length_buckets


# ---------------------------------------------------------------------------------------
# Property-based round trips
# ---------------------------------------------------------------------------------------
class TestRoundTrip:
    @given(artifact=artifacts())
    @settings(max_examples=30, deadline=None)
    def test_payload_roundtrip(self, artifact):
        """Encode → JSON → decode is the identity on the artifact's contents."""
        payload = json.loads(json.dumps(artifact.to_payload()))
        assert_artifacts_identical(SynthesisArtifact.from_payload(payload), artifact)

    @given(artifact=artifacts(), compress=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_file_roundtrip(self, artifact, compress, tmp_path_factory):
        path = tmp_path_factory.mktemp("store") / "run.artifact"
        save_artifact(artifact, path, compress=compress)
        assert_artifacts_identical(load_artifact(path), artifact)

    @given(artifact=artifacts())
    @settings(max_examples=10, deadline=None)
    def test_graph_reconstruction(self, artifact):
        graph = artifact.build_graph()
        rebuilt_positive = {
            tuple(
                sorted(
                    (graph.tables[a].table_id, graph.tables[b].table_id)
                )
            ): weight
            for (a, b), weight in graph.positive_edges.items()
        }
        assert rebuilt_positive == {
            tuple(key): weight for key, weight in artifact.positive_edges.items()
        }
        assert graph.num_negative_edges == len(artifact.negative_edges)

    def test_save_is_deterministic(self, tmp_path):
        artifact = make_sample_artifact()
        first = save_artifact(artifact, tmp_path / "a1", compress=True).read_bytes()
        second = save_artifact(artifact, tmp_path / "a2", compress=True).read_bytes()
        assert first == second


# ---------------------------------------------------------------------------------------
# End-to-end: pipeline → artifact → pipeline
# ---------------------------------------------------------------------------------------
class TestPipelineRoundTrip:
    def test_run_save_load_identical(self, store_corpus, store_config, tmp_path):
        pipeline = SynthesisPipeline(store_config)
        result = pipeline.run(store_corpus)
        assert result.mappings, "store corpus must synthesize at least one mapping"
        path = pipeline.save_artifact(tmp_path / "run.artifact.gz")

        restored = SynthesisPipeline.from_artifact(path)
        assert restored.config == store_config
        loaded = restored.last_result
        assert loaded.mappings == result.mappings
        assert loaded.curated == result.curated
        assert loaded.extraction_stats == result.extraction_stats
        assert [c.table_id for c in loaded.candidates] == [
            c.table_id for c in result.candidates
        ]
        assert loaded.top_mappings(5) == result.top_mappings(5)
        # The persisted graph matches the one the run built.
        graph = pipeline.last_artifact.build_graph()
        loaded_graph = restored.last_artifact.build_graph()
        assert loaded_graph.positive_edges == graph.positive_edges
        assert loaded_graph.negative_edges == graph.negative_edges

    def test_autosave_via_config(self, store_corpus, store_config, tmp_path):
        target = tmp_path / "auto" / "run.artifact"
        config = store_config.with_overrides(artifact_path=str(target))
        SynthesisPipeline(config).run(store_corpus)
        assert target.exists()
        assert load_artifact(target).corpus_name == store_corpus.name

    def test_save_without_run_raises(self, store_config, tmp_path):
        with pytest.raises(RuntimeError, match="no run to persist"):
            SynthesisPipeline(store_config).save_artifact(tmp_path / "x")

    def test_save_without_path_raises(self, store_corpus, store_config):
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(store_corpus)
        with pytest.raises(ValueError, match="no artifact path"):
            pipeline.save_artifact()


# ---------------------------------------------------------------------------------------
# Corruption and version gating
# ---------------------------------------------------------------------------------------
@pytest.fixture()
def saved(tmp_path):
    """A v1 (single JSON document) artifact — these tests tamper with its JSON.

    The v2 container's section-level corruption/version paths are covered in
    test_store_v2.py.
    """
    artifact = make_sample_artifact()
    path = tmp_path / "run.artifact"
    save_artifact(artifact, path, compress=False, version=1)
    return path


class TestErrorPaths:
    def test_flipped_payload_byte_fails_checksum(self, saved):
        document = json.loads(saved.read_text())
        document["payload"]["corpus_name"] = "tampered"
        saved.write_text(json.dumps(document))
        with pytest.raises(ArtifactCorruptionError, match="checksum"):
            load_artifact(saved)

    def test_truncated_file(self, saved):
        saved.write_bytes(saved.read_bytes()[:-40])
        with pytest.raises(ArtifactCorruptionError):
            load_artifact(saved)

    def test_truncated_gzip(self, tmp_path):
        path = tmp_path / "run.artifact.gz"
        save_artifact(make_sample_artifact(), path, compress=True, version=1)
        path.write_bytes(path.read_bytes()[: -(path.stat().st_size // 2)])
        with pytest.raises(ArtifactCorruptionError):
            load_artifact(path)

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage"
        path.write_bytes(b"\x00\x01definitely not an artifact\xff")
        with pytest.raises(ArtifactCorruptionError):
            load_artifact(path)

    def test_wrong_magic(self, saved):
        document = json.loads(saved.read_text())
        document["magic"] = "some-other-format"
        saved.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="not a synthesis artifact"):
            load_artifact(saved)

    def test_version_mismatch(self, saved):
        document = json.loads(saved.read_text())
        document["version"] = ARTIFACT_VERSION + 1
        saved.write_text(json.dumps(document))
        with pytest.raises(ArtifactVersionError, match="format version"):
            load_artifact(saved)

    def test_version_error_is_not_corruption(self, saved):
        document = json.loads(saved.read_text())
        document["version"] = ARTIFACT_VERSION + 1
        saved.write_text(json.dumps(document))
        with pytest.raises(ArtifactVersionError):
            load_artifact(saved)
        assert not issubclass(ArtifactVersionError, ArtifactCorruptionError)

    def test_missing_payload(self, saved):
        # Version literal 1: this exercises the v1 document path specifically.
        saved.write_text(json.dumps({"magic": ARTIFACT_MAGIC, "version": 1}))
        with pytest.raises(ArtifactCorruptionError, match="no payload"):
            load_artifact(saved)

    def test_malformed_payload_fields(self, saved):
        document = json.loads(saved.read_text())
        payload = document["payload"]
        del payload["mappings"]
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        import hashlib

        document["checksum"] = hashlib.sha256(body).hexdigest()
        saved.write_text(json.dumps(document))
        with pytest.raises(ArtifactCorruptionError, match="malformed"):
            load_artifact(saved)
