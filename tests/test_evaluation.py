"""Tests for metrics, benchmark construction, the runner, and reporting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SynthesisMethod, WebTableBaseline
from repro.core.binary_table import ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.evaluation.benchmark import build_enterprise_benchmark, build_web_benchmark
from repro.evaluation.metrics import MappingScore, best_mapping_score, score_mapping
from repro.evaluation.reporting import (
    format_comparison_table,
    format_per_case_table,
    format_simple_table,
)
from repro.evaluation.runner import EvaluationRunner, MethodEvaluation


class TestScoreMapping:
    def test_perfect_match(self):
        truth = [("a", "1"), ("b", "2")]
        score = score_mapping(truth, truth)
        assert score.precision == score.recall == score.f_score == 1.0

    def test_partial_overlap(self):
        candidate = [("a", "1"), ("b", "2"), ("c", "3"), ("d", "wrong")]
        truth = [("a", "1"), ("b", "2"), ("e", "5")]
        score = score_mapping(candidate, truth)
        assert score.precision == pytest.approx(2 / 4)
        assert score.recall == pytest.approx(2 / 3)

    def test_no_overlap(self):
        score = score_mapping([("a", "1")], [("x", "9")])
        assert score == MappingScore(0.0, 0.0, 0.0)

    def test_empty_candidate_or_truth(self):
        assert score_mapping([], [("a", "1")]).f_score == 0.0
        assert score_mapping([("a", "1")], []).f_score == 0.0

    def test_normalization_applied(self):
        score = score_mapping([("South Korea[1]", "kor")], [("south korea", "KOR")])
        assert score.f_score == 1.0

    def test_swapped_orientation(self):
        candidate = [("1", "a"), ("2", "b")]
        truth = [("a", "1"), ("b", "2")]
        assert score_mapping(candidate, truth).f_score == 1.0
        assert score_mapping(candidate, truth, allow_swapped=False).f_score == 0.0

    def test_accepts_mapping_relationship(self):
        mapping = MappingRelationship("m", [ValuePair("a", "1")])
        score = score_mapping(mapping, [("a", "1")])
        assert score.f_score == 1.0
        assert score.mapping_id == "m"

    @given(
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("123")), max_size=10),
        st.lists(st.tuples(st.sampled_from("abcd"), st.sampled_from("123")), max_size=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_scores_in_unit_interval(self, candidate, truth):
        score = score_mapping(candidate, truth)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f_score <= 1.0

    @given(st.lists(st.tuples(st.text(min_size=1, max_size=4), st.text(min_size=1, max_size=4)),
                    min_size=1, max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_truth_against_itself_is_perfect(self, truth):
        normalized_nonempty = [
            pair for pair in truth
            if score_mapping([pair], [pair]).f_score == 1.0
        ]
        if normalized_nonempty:
            score = score_mapping(normalized_nonempty, normalized_nonempty)
            assert score.f_score == pytest.approx(1.0)


class TestBestMappingScore:
    def test_picks_best_candidate(self):
        truth = [("a", "1"), ("b", "2"), ("c", "3")]
        good = MappingRelationship("good", [ValuePair("a", "1"), ValuePair("b", "2")])
        bad = MappingRelationship("bad", [ValuePair("x", "9")])
        best = best_mapping_score([bad, good], truth)
        assert best.mapping_id == "good"

    def test_empty_mapping_list(self):
        assert best_mapping_score([], [("a", "1")]) == MappingScore.zero()

    def test_tie_broken_by_precision(self):
        truth = [("a", "1"), ("b", "2")]
        precise = MappingRelationship("precise", [ValuePair("a", "1")])
        noisy = MappingRelationship(
            "noisy", [ValuePair("a", "1"), ValuePair("z", "wrong")]
        )
        best = best_mapping_score([noisy, precise], truth)
        assert best.mapping_id == "precise"


class TestBenchmarkConstruction:
    def test_web_benchmark_covers_web_relations(self):
        cases = build_web_benchmark()
        names = {case.name for case in cases}
        assert "country_iso3" in names
        assert "state_abbrev" in names
        assert all(case.category in ("geocoding", "querylog") for case in cases)
        assert len(cases) >= 25

    def test_enterprise_benchmark(self):
        cases = build_enterprise_benchmark()
        assert {case.category for case in cases} == {"enterprise"}
        assert len(cases) >= 5

    def test_synonym_expansion_included_without_corpus(self):
        cases = {case.name: case for case in build_web_benchmark()}
        truth = cases["country_iso3"].truth
        assert ("Republic of Korea", "KOR") in truth

    def test_corpus_restricts_synonym_expansion(self, clean_web_corpus):
        unrestricted = {case.name: case for case in build_web_benchmark()}
        restricted = {case.name: case for case in build_web_benchmark(clean_web_corpus)}
        for name in restricted:
            assert restricted[name].truth <= unrestricted[name].truth
        # Canonical pairs always survive.
        assert set(
            pair for pair in restricted["country_iso3"].truth
        ) >= {("Japan", "JPN"), ("Canada", "CAN")}

    def test_cases_sorted_and_sized(self):
        cases = build_web_benchmark()
        assert [case.name for case in cases] == sorted(case.name for case in cases)
        assert all(len(case) >= 10 for case in cases)


class TestEvaluationRunner:
    def test_runner_requires_cases(self, small_web_corpus):
        with pytest.raises(ValueError):
            EvaluationRunner(small_web_corpus, [])

    def test_candidates_cached(self, small_web_corpus):
        runner = EvaluationRunner(
            small_web_corpus, build_web_benchmark(small_web_corpus), SynthesisConfig()
        )
        first = runner.candidates
        second = runner.candidates
        assert first is second

    def test_evaluate_single_table_method(self, small_web_corpus):
        benchmark = build_web_benchmark(small_web_corpus)
        runner = EvaluationRunner(small_web_corpus, benchmark, SynthesisConfig())
        evaluation = runner.evaluate_method(WebTableBaseline(SynthesisConfig()))
        assert evaluation.num_relationships > 0
        assert set(evaluation.case_scores) == {case.name for case in benchmark}
        assert 0.0 <= evaluation.avg_f_score <= 1.0
        assert evaluation.avg_precision >= evaluation.avg_f_score * 0.5

    def test_method_family_picks_best(self, small_web_corpus):
        benchmark = build_web_benchmark(small_web_corpus)
        runner = EvaluationRunner(small_web_corpus, benchmark, SynthesisConfig())
        strong = WebTableBaseline(SynthesisConfig())
        weak = WebTableBaseline(SynthesisConfig(min_rows=40))
        family = runner.evaluate_method_family([weak, strong], family_name="Family")
        strong_alone = runner.evaluate_method(strong)
        assert family.method_name == "Family"
        assert family.avg_f_score == pytest.approx(strong_alone.avg_f_score)

    def test_method_family_empty(self, small_web_corpus):
        runner = EvaluationRunner(
            small_web_corpus, build_web_benchmark(small_web_corpus), SynthesisConfig()
        )
        with pytest.raises(ValueError):
            runner.evaluate_method_family([])

    def test_evaluate_all_mixed(self, small_web_corpus):
        benchmark = build_web_benchmark(small_web_corpus)
        runner = EvaluationRunner(small_web_corpus, benchmark, SynthesisConfig())
        results = runner.evaluate_all(
            {
                "WebTable": WebTableBaseline(SynthesisConfig()),
                "Family": [WebTableBaseline(SynthesisConfig())],
            }
        )
        assert set(results) == {"WebTable", "Family"}
        assert all(isinstance(evaluation, MethodEvaluation) for evaluation in results.values())


class TestMethodEvaluationAggregates:
    def _evaluation(self) -> MethodEvaluation:
        evaluation = MethodEvaluation(method_name="test")
        evaluation.case_scores = {
            "covered": MappingScore(0.9, 0.8, 0.85),
            "missed": MappingScore(0.0, 0.0, 0.0),
        }
        return evaluation

    def test_averages(self):
        evaluation = self._evaluation()
        assert evaluation.avg_f_score == pytest.approx(0.425)
        assert evaluation.avg_recall == pytest.approx(0.4)
        # Zero-precision cases excluded (paper footnote 5).
        assert evaluation.avg_precision == pytest.approx(0.9)

    def test_empty_evaluation(self):
        empty = MethodEvaluation(method_name="empty")
        assert empty.avg_f_score == 0.0
        assert empty.avg_precision == 0.0
        assert empty.avg_recall == 0.0

    def test_summary_keys(self):
        summary = self._evaluation().summary()
        assert {"avg_f_score", "avg_precision", "avg_recall", "runtime_seconds"} <= set(summary)


class TestReporting:
    def _results(self) -> dict[str, MethodEvaluation]:
        first = MethodEvaluation("A", {"case1": MappingScore(1, 1, 1), "case2": MappingScore(0.5, 0.5, 0.5)})
        second = MethodEvaluation("B", {"case1": MappingScore(0.2, 0.2, 0.2), "case2": MappingScore(0.4, 0.4, 0.4)})
        return {"A": first, "B": second}

    def test_simple_table_formatting(self):
        text = format_simple_table(["x", "y"], [["1", "2"], ["3", "4"]], title="T")
        assert "T" in text
        assert "x" in text and "4" in text

    def test_comparison_table_sorted_by_fscore(self):
        text = format_comparison_table(self._results())
        lines = [line for line in text.splitlines() if line.startswith(("A", "B"))]
        assert lines[0].startswith("A")

    def test_per_case_table(self):
        text = format_per_case_table(self._results(), sort_by="A")
        assert "case1" in text and "case2" in text
        # Line 0 is the title, 1 the header, 2 the separator, 3 the best case.
        assert text.splitlines()[3].startswith("case1")

    def test_per_case_table_empty(self):
        assert format_per_case_table({}, title="empty") == "empty"
