"""Tests for the bloom filter, mapping index, and the three applications."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.autocorrect import AutoCorrector
from repro.applications.autofill import AutoFiller
from repro.applications.autojoin import AutoJoiner
from repro.applications.bloom import BloomFilter
from repro.applications.index import MappingIndex
from repro.core.binary_table import ValuePair
from repro.core.mapping import MappingRelationship
from repro.corpus.seeds import get_seed_relation


def mapping_from_seed(name: str) -> MappingRelationship:
    relation = get_seed_relation(name)
    return MappingRelationship(
        mapping_id=name,
        pairs=[ValuePair(left, right) for left, right in relation.pairs],
        domains={"seed"},
    )


@pytest.fixture(scope="module")
def index() -> MappingIndex:
    return MappingIndex(
        [
            mapping_from_seed("state_abbrev"),
            mapping_from_seed("country_iso3"),
            mapping_from_seed("city_state"),
            mapping_from_seed("company_ticker"),
        ]
    )


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=100)
        values = [f"value-{i}" for i in range(100)]
        bloom.update(values)
        assert all(value in bloom for value in values)

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        bloom.update(f"in-{i}" for i in range(500))
        false_hits = sum(1 for i in range(2000) if f"out-{i}" in bloom)
        assert false_hits / 2000 < 0.05

    def test_non_string_not_contained(self):
        bloom = BloomFilter()
        bloom.add("x")
        assert 42 not in bloom

    def test_len_tracks_insertions(self):
        bloom = BloomFilter()
        bloom.update(["a", "b", "c"])
        assert len(bloom) == 3

    def test_estimated_false_positive_rate_increases(self):
        bloom = BloomFilter(expected_items=10)
        before = bloom.estimated_false_positive_rate()
        bloom.update(f"v{i}" for i in range(10))
        assert bloom.estimated_false_positive_rate() >= before

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BloomFilter(expected_items=0)
        with pytest.raises(ValueError):
            BloomFilter(false_positive_rate=1.5)

    @given(st.sets(st.text(min_size=1, max_size=10), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_membership_property(self, values):
        bloom = BloomFilter(expected_items=max(1, len(values)))
        bloom.update(values)
        assert all(value in bloom for value in values)


class TestMappingIndex:
    def test_lookup_left_side(self, index):
        matches = index.lookup(["California", "Texas", "Ohio", "Nevada"])
        assert matches
        assert matches[0].mapping.mapping_id == "state_abbrev"
        assert matches[0].direction == "forward"

    def test_lookup_right_side(self, index):
        matches = index.lookup(["CA", "TX", "OH", "NV", "WA"])
        assert matches
        best = matches[0]
        assert best.mapping.mapping_id == "state_abbrev"
        assert best.direction == "reverse"

    def test_lookup_no_match(self, index):
        assert index.lookup(["zzz", "qqq", "xxx"]) == []

    def test_lookup_empty_values(self, index):
        assert index.lookup([]) == []
        assert index.lookup(["", "  "]) == []

    def test_lookup_invalid_containment(self, index):
        with pytest.raises(ValueError):
            index.lookup(["California"], min_containment=1.5)

    def test_lookup_pairs_forward(self, index):
        matches = index.lookup_pairs([("San Francisco", "California"), ("Seattle", "Washington")])
        assert matches
        assert matches[0].mapping.mapping_id == "city_state"
        assert matches[0].direction == "forward"

    def test_lookup_pairs_reverse(self, index):
        matches = index.lookup_pairs([("California", "San Francisco")])
        assert matches
        assert matches[0].direction == "reverse"

    def test_len(self, index):
        assert len(index) == 4


class TestAutoCorrector:
    def test_detects_mixed_column(self, index):
        corrector = AutoCorrector(index)
        # The paper's Table 3: full state names mixed with abbreviations.
        column = ["California", "Washington", "Oregon", "CA", "WA"]
        mapping = corrector.detect(column)
        assert mapping is not None
        assert mapping.mapping_id == "state_abbrev"

    def test_suggests_minority_rewrites(self, index):
        corrector = AutoCorrector(index)
        column = ["California", "Washington", "Oregon", "CA", "WA"]
        suggestions = corrector.suggest(column)
        fixes = {s.original: s.suggestion for s in suggestions}
        assert fixes == {"CA": "California", "WA": "Washington"}

    def test_apply(self, index):
        corrector = AutoCorrector(index)
        corrected = corrector.apply(["California", "Washington", "Oregon", "CA", "WA"])
        assert corrected == ["California", "Washington", "Oregon", "California", "Washington"]

    def test_consistent_column_untouched(self, index):
        corrector = AutoCorrector(index)
        column = ["California", "Washington", "Oregon", "Texas"]
        assert corrector.suggest(column) == []
        assert corrector.apply(column) == column

    def test_unknown_column_untouched(self, index):
        corrector = AutoCorrector(index)
        column = ["alpha", "beta", "gamma"]
        assert corrector.detect(column) is None
        assert corrector.apply(column) == column

    def test_majority_abbreviations_converts_to_abbrev(self, index):
        corrector = AutoCorrector(index)
        corrected = corrector.apply(["CA", "WA", "OR", "TX", "Nevada"])
        assert corrected == ["CA", "WA", "OR", "TX", "NV"]


class TestAutoFiller:
    def test_fill_with_examples(self, index):
        """The paper's Table 4: fill states from cities given one example."""
        filler = AutoFiller(index)
        keys = ["San Francisco", "Seattle", "Los Angeles", "Houston", "Denver"]
        result = filler.fill(keys, examples={0: "California"})
        assert result.mapping_id == "city_state"
        assert result.filled[1] == "Washington"
        assert result.filled[3] == "Texas"
        assert result.filled[4] == "Colorado"
        assert result.fill_rate == 1.0

    def test_fill_without_examples(self, index):
        filler = AutoFiller(index)
        result = filler.fill(["California", "Texas", "Ohio", "Washington"])
        assert result.mapping_id == "state_abbrev"
        assert result.filled[0] == "CA"

    def test_examples_disambiguate_direction(self, index):
        filler = AutoFiller(index)
        result = filler.fill(["CA", "TX", "WA"], examples={0: "California"})
        assert result.filled[1] == "Texas"

    def test_unmatched_keys_reported(self, index):
        filler = AutoFiller(index)
        result = filler.fill(["San Francisco", "Atlantis City"], examples={0: "California"})
        assert 1 in result.unmatched_rows
        assert result.fill_rate == pytest.approx(0.5)

    def test_no_mapping_found(self, index):
        filler = AutoFiller(index)
        result = filler.fill(["qqq", "zzz"])
        assert result.mapping_id is None
        assert result.fill_rate == 0.0

    def test_invalid_agreement(self, index):
        with pytest.raises(ValueError):
            AutoFiller(index, min_example_agreement=0.0)

    def test_example_row_beyond_keys_raises(self, index):
        """Out-of-range example rows used to be dropped silently; now explicit."""
        filler = AutoFiller(index)
        keys = ["San Francisco", "Seattle"]
        with pytest.raises(ValueError, match=r"\[2\].*out of range"):
            filler.fill(keys, examples={2: "California"})

    def test_negative_example_row_raises(self, index):
        filler = AutoFiller(index)
        with pytest.raises(ValueError, match="out of range"):
            filler.fill(["San Francisco"], examples={-1: "California"})

    def test_example_on_last_row_is_valid(self, index):
        filler = AutoFiller(index)
        result = filler.fill(["Seattle", "San Francisco"], examples={1: "California"})
        assert result.mapping_id == "city_state"
        assert result.filled[0] == "Washington"
        assert result.filled[1] == "California"

    def test_example_rows_on_empty_keys_raise(self, index):
        filler = AutoFiller(index)
        with pytest.raises(ValueError, match="out of range"):
            filler.fill([], examples={0: "California"})


class TestAutoJoiner:
    def test_join_through_mapping(self, index):
        """The paper's Table 5: join tickers with company names via the mapping."""
        joiner = AutoJoiner(index)
        left = ["MSFT", "ORCL", "GE", "UPS"]
        right = ["General Electric", "Microsoft Corp", "Oracle", "Walmart"]
        result = joiner.join(left, right)
        assert result.mapping_id == "company_ticker"
        pairs = set(result.row_pairs)
        assert (0, 1) in pairs  # MSFT - Microsoft Corp
        assert (1, 2) in pairs  # ORCL - Oracle
        assert (2, 0) in pairs  # GE - General Electric
        assert 3 in result.unmatched_left  # UPS has no partner row
        assert 3 in result.unmatched_right  # Walmart has no partner row

    def test_join_rate(self, index):
        joiner = AutoJoiner(index)
        result = joiner.join(["MSFT", "ORCL"], ["Oracle", "Microsoft Corp"])
        assert result.join_rate == 1.0

    def test_join_same_direction_columns(self, index):
        joiner = AutoJoiner(index)
        left = ["California", "Texas"]
        right = ["CA", "TX"]
        result = joiner.join(left, right)
        assert result.mapping_id == "state_abbrev"
        assert set(result.row_pairs) == {(0, 0), (1, 1)}

    def test_join_without_mapping(self, index):
        joiner = AutoJoiner(index)
        result = joiner.join(["aaa", "bbb"], ["ccc", "ddd"])
        assert result.mapping_id is None
        assert result.row_pairs == []
        assert result.unmatched_left == [0, 1]
