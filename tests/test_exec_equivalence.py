"""Backend equivalence: serial, thread, and process executors are byte-identical.

The whole point of :mod:`repro.exec` is that the executor spec is a pure
performance knob.  These tests pin that down at every level the backends are
wired into:

* full :class:`PipelineResult`s (extraction sharding + blocked-pair scoring),
* incremental refresh results (:func:`repro.store.incremental.refresh_artifact`),
* daemon-served responses (thread-mode and process-mode serving pools), via a
  hypothesis property over arbitrary request programs.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.applications import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.core.config import SynthesisConfig
from repro.core.pipeline import PipelineResult, SynthesisPipeline
from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import get_seed_relation
from repro.corpus.table import Table
from repro.serving import SynthesisDaemon

BACKENDS = ("serial", "thread:2", "process:2")


def canonical_result(result: PipelineResult, *, with_stats: bool = True) -> str:
    """Byte-comparable form of a pipeline run (everything except timings).

    ``with_stats=False`` drops the extraction accounting: an incremental
    refresh only *extracts* the changed tables (reusing the rest), so its
    stats legitimately cover fewer tables than a cold run's while the
    mappings, curation, and candidates are identical.
    """
    def mapping_repr(mapping):
        return (
            mapping.mapping_id,
            sorted((pair.left, pair.right) for pair in mapping.pairs),
            sorted(mapping.source_tables),
            sorted(mapping.domains),
        )

    return repr(
        (
            [mapping_repr(m) for m in result.mappings],
            [mapping_repr(m) for m in result.curated],
            [
                (c.table_id, c.source_table_id, [(p.left, p.right) for p in c.pairs])
                for c in result.candidates
            ],
            sorted(result.extraction_stats.items()) if with_stats else (),
        )
    )


def canonical_responses(responses) -> str:
    """Byte-comparable form of a served batch: everything except timing."""
    return repr([(r.kind, r.request_index, r.result, r.error) for r in responses])


def _config(executor: str, **overrides) -> SynthesisConfig:
    # PMI off keeps refresh exactly equal to a cold run (its filter is
    # corpus-global); small thresholds keep the fragment corpus productive.
    return SynthesisConfig(
        executor=executor,
        use_pmi_filter=False,
        min_domains=1,
        min_mapping_size=2,
        min_rows=4,
        **overrides,
    )


def _grown(corpus: TableCorpus, rows: list[tuple[str, str]]) -> TableCorpus:
    extra = Table.from_rows(
        table_id="delta-0-growth",
        header=["name", "code"],
        rows=[list(row) for row in rows],
        domain="delta.example",
    )
    return TableCorpus(corpus.tables() + [extra], name=f"{corpus.name}+delta")


# ---------------------------------------------------------------------------------------
# Pipeline and refresh equivalence
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def serial_reference(store_corpus):
    pipeline = SynthesisPipeline(_config("serial"))
    result = pipeline.run(store_corpus)
    return pipeline, canonical_result(result)


@pytest.mark.parametrize("executor", BACKENDS[1:])
def test_pipeline_result_identical_across_backends(
    executor, store_corpus, serial_reference
):
    _, expected = serial_reference
    result = SynthesisPipeline(_config(executor)).run(store_corpus)
    assert canonical_result(result) == expected


@pytest.mark.parametrize("executor", BACKENDS[1:])
def test_pipeline_with_pmi_filter_identical_across_backends(
    executor, small_web_corpus
):
    # The PMI index is shipped read-only to extraction shards; results must
    # not depend on which worker computed which shard.
    serial = SynthesisPipeline(SynthesisConfig(executor="serial")).run(small_web_corpus)
    parallel = SynthesisPipeline(SynthesisConfig(executor=executor)).run(small_web_corpus)
    assert canonical_result(parallel) == canonical_result(serial)


@pytest.mark.parametrize("executor", BACKENDS[1:])
def test_sharded_extraction_really_ran_on_its_backend(executor, small_web_corpus):
    """The fallback flag must stay False — a silent serial fallback would make
    every sharding equivalence test vacuous."""
    from repro.extraction.candidates import CandidateExtractor

    reference = CandidateExtractor(SynthesisConfig(executor="serial"))
    expected, expected_stats = reference.extract(small_web_corpus)
    sharded = CandidateExtractor(SynthesisConfig(executor=executor))
    candidates, stats = sharded.extract(small_web_corpus)
    assert not sharded.last_parallel_fallback
    assert [c.table_id for c in candidates] == [c.table_id for c in expected]
    assert stats.as_dict() == expected_stats.as_dict()


grown_rows = st.lists(
    st.sampled_from(list(get_seed_relation("state_abbrev").pairs)),
    min_size=4,
    max_size=10,
    unique=True,
)


@pytest.fixture(scope="module")
def base_runs(store_corpus):
    """One persisted base run per backend, refreshed repeatedly by the property."""
    runs = {}
    for executor in BACKENDS:
        pipeline = SynthesisPipeline(_config(executor))
        pipeline.run(store_corpus)
        runs[executor] = (pipeline, pipeline.last_artifact)
    return runs


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(rows=grown_rows)
def test_refresh_identical_across_backends(rows, store_corpus, base_runs):
    """Refreshing under any backend equals a cold serial run on the new corpus."""
    grown = _grown(store_corpus, [list(row) for row in rows])
    cold = canonical_result(
        SynthesisPipeline(_config("serial")).run(grown), with_stats=False
    )
    for executor, (pipeline, base_artifact) in base_runs.items():
        refreshed, stats = pipeline.refresh(grown, base_artifact)
        assert canonical_result(refreshed, with_stats=False) == cold, executor
        assert stats.tables_added == 1
        assert not stats.full_rebuild


def test_refresh_reuses_scores_under_process_backend(store_corpus):
    pipeline = SynthesisPipeline(_config("process:2"))
    pipeline.run(store_corpus)
    grown = _grown(store_corpus, list(get_seed_relation("state_abbrev").pairs)[:6])
    _, stats = pipeline.refresh(grown)
    assert stats.pairs_reused > 0  # the backend change must not disable reuse


# ---------------------------------------------------------------------------------------
# Daemon equivalence (thread-mode and process-mode serving)
# ---------------------------------------------------------------------------------------
_SEED_VALUES = tuple(
    value
    for relation in ("state_abbrev", "country_iso3")
    for left, right in get_seed_relation(relation).pairs
    for value in (left, right)
)

values = st.one_of(
    st.sampled_from(_SEED_VALUES),
    st.text(alphabet=string.ascii_letters + " -.", min_size=0, max_size=8),
)
fill_requests = st.builds(
    FillRequest,
    keys=st.lists(values, max_size=5).map(tuple),
    examples=st.none() | st.dictionaries(st.integers(-1, 6), values, max_size=2),
)
join_requests = st.builds(
    JoinRequest,
    left_keys=st.lists(values, max_size=4).map(tuple),
    right_keys=st.lists(values, max_size=4).map(tuple),
)
correct_requests = st.builds(
    CorrectRequest, values=st.lists(values, max_size=6).map(tuple)
)
envelopes = st.one_of(
    st.tuples(st.just("autofill"), st.lists(fill_requests, max_size=2)),
    st.tuples(st.just("autojoin"), st.lists(join_requests, max_size=2)),
    st.tuples(st.just("autocorrect"), st.lists(correct_requests, max_size=2)),
)
programs = st.lists(envelopes, min_size=1, max_size=5)


@pytest.fixture(scope="module")
def served_artifact(store_corpus, tmp_path_factory):
    pipeline = SynthesisPipeline(_config("serial"))
    pipeline.run(store_corpus)
    return pipeline.save_artifact(
        tmp_path_factory.mktemp("exec-equivalence") / "served.gz"
    )


@pytest.fixture(scope="module")
def sync_service(served_artifact) -> MappingService:
    return MappingService.from_artifact(served_artifact)


@pytest.fixture(scope="module")
def backend_daemons(served_artifact):
    daemons = {
        spec: SynthesisDaemon.from_artifact(
            served_artifact, watch=False, executor=spec, queue_size=64
        )
        for spec in ("serial", "thread:2", "process:2")
    }
    yield daemons
    for daemon in daemons.values():
        daemon.close()


@pytest.mark.daemon
def test_daemon_executor_kinds(backend_daemons):
    assert backend_daemons["serial"].executor_kind == "serial"
    assert backend_daemons["serial"].workers == 1
    assert backend_daemons["thread:2"].executor_kind == "thread"
    assert backend_daemons["process:2"].executor_kind == "process"
    assert backend_daemons["process:2"].generation.backend is not None
    assert backend_daemons["thread:2"].generation.backend is None


@pytest.mark.daemon
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs)
def test_daemon_responses_identical_across_backends(
    program, backend_daemons, sync_service
):
    """Every backend's daemon answers exactly like the synchronous service."""
    tickets = {
        spec: [daemon.submit(kind, batch, block=True) for kind, batch in program]
        for spec, daemon in backend_daemons.items()
    }
    for (kind, batch), *per_backend in zip(program, *tickets.values()):
        expected = canonical_responses(getattr(sync_service, kind)(batch))
        for spec, ticket in zip(tickets, per_backend):
            result = ticket.result(timeout=60)
            assert canonical_responses(result.responses) == expected, spec


@pytest.mark.daemon
@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(program=programs, swap_after=st.integers(0, 4))
def test_process_daemon_hot_reload_is_invisible(
    program, swap_after, backend_daemons, served_artifact, sync_service
):
    """Reloading swaps the process pool atomically without changing answers."""
    daemon = backend_daemons["process:2"]
    tickets = []
    for position, (kind, batch) in enumerate(program):
        if position == swap_after % max(1, len(program)):
            daemon.reload(
                MappingService.from_artifact(served_artifact), source="swap"
            )
        tickets.append(daemon.submit(kind, batch, block=True))
    for (kind, batch), ticket in zip(program, tickets):
        result = ticket.result(timeout=60)
        expected = canonical_responses(getattr(sync_service, kind)(batch))
        assert canonical_responses(result.responses) == expected


@pytest.mark.daemon
def test_process_daemon_stats_recorded_daemon_side(served_artifact):
    """Worker processes can't mutate daemon-side stats; the dispatcher must."""
    daemon = SynthesisDaemon.from_artifact(
        served_artifact, watch=False, executor="process:2"
    )
    try:
        probe = [
            FillRequest(keys=("California", "Texas", "Ohio")),
            FillRequest(keys=("x",), examples={5: "y"}),
        ]
        daemon.autofill(probe, block=True).result(timeout=60)
        snapshot = daemon.stats.as_dict()
        assert snapshot["requests"] == {"autofill": 2}
        assert snapshot["batches"] == 1
        assert daemon.backend_fallbacks == 0
    finally:
        daemon.close()
