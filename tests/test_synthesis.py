"""Tests for the synthesizer, conflict resolution, expansion, and curation."""

from __future__ import annotations

import pytest

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.synthesis.conflict import majority_vote_resolution, resolve_conflicts_greedy
from repro.synthesis.curation import curate_mappings, popularity_rank
from repro.synthesis.expansion import TableExpander
from repro.synthesis.synthesizer import TableSynthesizer
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


class TestConflictResolutionGreedy:
    def _partition(self) -> list[BinaryTable]:
        good_1 = make_binary("g1", [("Hydrogen", "H"), ("Helium", "He"), ("Carbon", "C")])
        good_2 = make_binary("g2", [("Hydrogen", "H"), ("Oxygen", "O"), ("Carbon", "C")])
        good_3 = make_binary("g3", [("Helium", "He"), ("Oxygen", "O"), ("Nitrogen", "N")])
        # The bad table has wrong symbols (the paper's Figure 4 scenario).
        bad = make_binary("bad", [("Hydrogen", "X"), ("Helium", "Y"), ("Carbon", "C")])
        return [good_1, good_2, good_3, bad]

    def test_removes_offending_table(self):
        resolution = resolve_conflicts_greedy(self._partition())
        removed_ids = {table.table_id for table in resolution.removed_tables}
        assert removed_ids == {"bad"}
        assert len(resolution.kept_tables) == 3

    def test_result_has_no_conflicts(self):
        resolution = resolve_conflicts_greedy(self._partition())
        mapping = MappingRelationship("m", resolution.pairs)
        assert mapping.is_functional()

    def test_no_conflicts_keeps_everything(self):
        tables = self._partition()[:3]
        resolution = resolve_conflicts_greedy(tables)
        assert resolution.removed_tables == []
        assert resolution.iterations == 0

    def test_single_table_untouched(self):
        table = make_binary("only", [("a", "1"), ("a", "2")])
        resolution = resolve_conflicts_greedy([table])
        assert resolution.kept_tables == [table]

    def test_synonymous_rights_not_treated_as_conflicts(self):
        first = make_binary("a", [("Washington", "Olympia")])
        second = make_binary("b", [("Washington", "Olympia City")])
        synonyms = SynonymDictionary([["Olympia", "Olympia City"]])
        resolution = resolve_conflicts_greedy([first, second], ValueMatcher(), synonyms)
        assert resolution.removed_tables == []

    def test_max_iterations_respected(self):
        tables = self._partition()
        resolution = resolve_conflicts_greedy(tables, max_iterations=0)
        assert resolution.kept_tables == tables

    def test_state_capital_vs_largest_city_scenario(self):
        """§5.6: (state, capital) confused with (state, largest-city) on a few rows."""
        capital_tables = [
            make_binary(f"cap{i}", [("Washington", "Olympia"), ("Illinois", "Springfield"),
                                    ("Arizona", "Phoenix"), ("Texas", "Austin")])
            for i in range(3)
        ]
        intruder = make_binary(
            "largest", [("Washington", "Seattle"), ("Illinois", "Chicago"),
                        ("Arizona", "Phoenix"), ("Texas", "Houston")]
        )
        resolution = resolve_conflicts_greedy(capital_tables + [intruder])
        removed_ids = {table.table_id for table in resolution.removed_tables}
        assert removed_ids == {"largest"}


class TestMajorityVoteResolution:
    def test_minority_value_dropped(self):
        tables = [
            make_binary("a", [("Washington", "Olympia")]),
            make_binary("b", [("Washington", "Olympia")]),
            make_binary("c", [("Washington", "Seattle")]),
        ]
        resolution = majority_vote_resolution(tables)
        pairs = {pair.as_tuple() for pair in resolution.pairs}
        assert ("Washington", "Olympia") in pairs
        assert ("Washington", "Seattle") not in pairs

    def test_keeps_all_tables(self):
        tables = [
            make_binary("a", [("x", "1")]),
            make_binary("b", [("x", "2")]),
        ]
        resolution = majority_vote_resolution(tables)
        assert len(resolution.kept_tables) == 2
        assert resolution.removed_tables == []

    def test_result_is_functional(self):
        tables = [
            make_binary("a", [("x", "1"), ("y", "2")]),
            make_binary("b", [("x", "1"), ("y", "3")]),
            make_binary("c", [("x", "1"), ("y", "2")]),
        ]
        resolution = majority_vote_resolution(tables)
        mapping = MappingRelationship("m", resolution.pairs)
        assert mapping.is_functional()


class TestTableSynthesizer:
    def test_iso_ioc_separation(self, iso_tables):
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        result = TableSynthesizer(config).synthesize(iso_tables)
        assert len(result.mappings) == 2
        sizes = sorted(mapping.num_source_tables for mapping in result.mappings)
        assert sizes == [1, 2]

    def test_synthesized_mapping_contains_synonyms(self, iso_tables):
        """Merging B1 and B2 yields both 'South Korea' and 'Korea, Republic of (South)'."""
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        result = TableSynthesizer(config).synthesize(iso_tables)
        merged = max(result.mappings, key=len)
        lefts = {pair.left for pair in merged.pairs}
        assert "South Korea" in lefts
        assert "Korea, Republic of (South)" in lefts

    def test_positive_only_merges_everything(self, iso_tables):
        config = SynthesisConfig(
            overlap_threshold=2, edge_threshold=0.3, use_negative_edges=False
        )
        result = TableSynthesizer(config).synthesize(iso_tables)
        assert len(result.mappings) == 1

    def test_majority_strategy(self, iso_tables):
        config = SynthesisConfig(
            overlap_threshold=2, edge_threshold=0.3, conflict_strategy="majority"
        )
        result = TableSynthesizer(config).synthesize(iso_tables)
        for mapping in result.mappings:
            assert len(mapping) > 0

    def test_provenance_preserved(self, iso_tables):
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        result = TableSynthesizer(config).synthesize(iso_tables)
        merged = max(result.mappings, key=lambda m: m.num_source_tables)
        assert set(merged.source_tables) == {"B1", "B2"}
        assert merged.domains == {"ioc1.example", "ioc2.example"}

    def test_empty_input(self):
        result = TableSynthesizer().synthesize([])
        assert result.mappings == []
        assert result.graph.num_vertices == 0

    def test_metadata_counts(self, iso_tables):
        result = TableSynthesizer(SynthesisConfig(edge_threshold=0.3)).synthesize(iso_tables)
        assert result.metadata["num_candidates"] == 3
        assert result.metadata["num_mappings"] == len(result.mappings)

    def test_top_by_popularity(self, iso_tables):
        result = TableSynthesizer(SynthesisConfig(edge_threshold=0.3)).synthesize(iso_tables)
        top = result.top_by_popularity(1)
        assert len(top) == 1
        assert top[0].popularity == max(m.popularity for m in result.mappings)


class TestTableExpander:
    def _core(self) -> MappingRelationship:
        return MappingRelationship(
            "core",
            [ValuePair("Hydrogen", "H"), ValuePair("Helium", "He"), ValuePair("Carbon", "C")],
            domains={"web"},
        )

    def test_compatible_source_expands_core(self):
        trusted = make_binary(
            "trusted",
            [("Hydrogen", "H"), ("Helium", "He"), ("Carbon", "C"),
             ("Oxygen", "O"), ("Nitrogen", "N")],
            domain="data.gov",
        )
        expander = TableExpander([trusted])
        expanded, merged = expander.expand_mapping(self._core())
        assert merged == ["trusted"]
        assert ("Oxygen", "O") in expanded.pair_set()
        assert len(expanded) == 5

    def test_conflicting_source_rejected(self):
        conflicting = make_binary(
            "bad-feed",
            [("Hydrogen", "X"), ("Helium", "Y"), ("Carbon", "Z"), ("Oxygen", "O")],
        )
        expander = TableExpander([conflicting])
        expanded, merged = expander.expand_mapping(self._core())
        assert merged == []
        assert len(expanded) == 3

    def test_unrelated_source_rejected(self):
        unrelated = make_binary("unrelated", [("January", "01"), ("February", "02")])
        expander = TableExpander([unrelated])
        _, merged = expander.expand_mapping(self._core())
        assert merged == []

    def test_expand_all_reports(self):
        trusted = make_binary(
            "trusted", [("Hydrogen", "H"), ("Helium", "He"), ("Carbon", "C"), ("Gold", "Au")]
        )
        expander = TableExpander([trusted])
        expanded, report = expander.expand_all([self._core()])
        assert report.total_added() == 1
        assert "core" in report.merged
        assert len(expanded) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TableExpander([], min_overlap=0.0)
        with pytest.raises(ValueError):
            TableExpander([], max_conflict=0.5)


class TestCuration:
    def _mappings(self) -> list[MappingRelationship]:
        popular = MappingRelationship(
            "popular",
            [ValuePair(f"k{i}", f"v{i}") for i in range(20)],
            source_tables=[f"t{i}" for i in range(10)],
            domains={f"d{i}" for i in range(6)},
        )
        unpopular = MappingRelationship(
            "unpopular",
            [ValuePair(f"x{i}", f"y{i}") for i in range(10)],
            source_tables=["t-a"],
            domains={"only-one"},
        )
        tiny = MappingRelationship("tiny", [ValuePair("a", "1")], domains={"d1", "d2"})
        numeric = MappingRelationship(
            "numeric",
            [ValuePair(str(i), f"row {i}") for i in range(10)],
            domains={"d1", "d2", "d3"},
        )
        return [popular, unpopular, tiny, numeric]

    def test_popularity_rank(self):
        ranked = popularity_rank(self._mappings())
        assert ranked[0].mapping_id == "popular"

    def test_curation_filters(self):
        report = curate_mappings(self._mappings(), min_domains=2, min_size=5)
        kept_ids = {mapping.mapping_id for mapping in report.kept}
        assert kept_ids == {"popular"}
        assert report.dropped_low_popularity == 1
        assert report.dropped_small == 1
        assert report.dropped_numeric == 1
        assert report.total_dropped == 3

    def test_numeric_filter_can_be_disabled(self):
        report = curate_mappings(
            self._mappings(), min_domains=2, min_size=5, drop_numeric_left=False
        )
        kept_ids = {mapping.mapping_id for mapping in report.kept}
        assert "numeric" in kept_ids

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            curate_mappings([], min_domains=0)
        with pytest.raises(ValueError):
            curate_mappings([], min_size=0)
