"""v1 → v2 compatibility: old artifacts must load and serve identically.

Two layers of protection:

* a **committed v1 fixture** (``tests/fixtures/v1_sample.artifact.json``) —
  the exact bytes an old build wrote.  If decoding of the frozen v1 format
  ever drifts, these tests fail on the fixture even though every round-trip
  test (which writes with the *current* code) would still pass.
* **cross-format property tests** — the same artifact saved as v1 and as v2
  must serve byte-identical responses, both through the synchronous
  :class:`MappingService` and through a live :class:`SynthesisDaemon` (the
  ISSUE's compat criterion).
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from test_store_roundtrip import assert_artifacts_identical, make_sample_artifact

from repro.applications.service import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    MappingService,
)
from repro.core.config import SynthesisConfig
from repro.core.pipeline import SynthesisPipeline
from repro.corpus.seeds import get_seed_relation
from repro.serving.daemon import SynthesisDaemon
from repro.store import load_artifact, save_artifact

FIXTURE = Path(__file__).parent / "fixtures" / "v1_sample.artifact.json"


def _response_views(responses):
    """The deterministic parts of served responses (latency excluded)."""
    return [(r.kind, r.request_index, r.result, r.error) for r in responses]


# ---------------------------------------------------------------------------------------
# The committed fixture
# ---------------------------------------------------------------------------------------
class TestCommittedV1Fixture:
    def test_fixture_loads_and_matches_its_source(self):
        loaded = load_artifact(FIXTURE)
        assert loaded.reader is None, "v1 loads through the eager compat path"
        assert_artifacts_identical(loaded, make_sample_artifact())

    def test_fixture_upgrades_to_v2_losslessly(self, tmp_path):
        loaded = load_artifact(FIXTURE)
        v2 = save_artifact(loaded, tmp_path / "upgraded.artifact")
        upgraded = load_artifact(v2)
        assert upgraded.reader is not None
        assert_artifacts_identical(upgraded, loaded)

    def test_fixture_serves(self):
        service = MappingService.from_artifact(FIXTURE)
        assert len(service) == 1
        responses = service.autofill([FillRequest(keys=("a", "c"))])
        assert all(r.ok for r in responses)

    @pytest.mark.daemon
    def test_fixture_serves_identically_through_daemon(self, tmp_path):
        v2 = save_artifact(load_artifact(FIXTURE), tmp_path / "up.artifact")
        requests = [FillRequest(keys=("a", "c")), FillRequest(keys=("c",))]
        with SynthesisDaemon.from_artifact(FIXTURE, watch=False, workers=1) as old:
            from_v1 = old.autofill(requests).result(timeout=30)
        with SynthesisDaemon.from_artifact(v2, watch=False, workers=1) as new:
            from_v2 = new.autofill(requests).result(timeout=30)
        assert _response_views(from_v1.responses) == _response_views(from_v2.responses)


# ---------------------------------------------------------------------------------------
# Cross-format properties on a real pipeline artifact
# ---------------------------------------------------------------------------------------
@pytest.fixture(scope="module")
def format_pair(tmp_path_factory):
    """One pipeline run saved as both v1 and v2 files."""
    from store_helpers import make_fragment_corpus, seed_fragments

    fragments = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    corpus = make_fragment_corpus(fragments, name="compat-corpus")
    config = SynthesisConfig(
        use_pmi_filter=False, min_domains=1, min_mapping_size=2, min_rows=4
    )
    pipeline = SynthesisPipeline(config)
    pipeline.run(corpus)
    base = tmp_path_factory.mktemp("compat")
    v1 = save_artifact(pipeline.last_artifact, base / "run.v1", version=1)
    v2 = save_artifact(pipeline.last_artifact, base / "run.v2")
    return v1, v2


_states = [left for left, _ in get_seed_relation("state_abbrev").pairs[:20]]
_abbrevs = [right for _, right in get_seed_relation("state_abbrev").pairs[:20]]
_values = st.sampled_from(_states + _abbrevs + ["unknown-value"])
_fill = st.builds(
    FillRequest, keys=st.lists(_values, min_size=1, max_size=5).map(tuple)
)
_join = st.builds(
    JoinRequest,
    left_keys=st.lists(_values, min_size=1, max_size=4).map(tuple),
    right_keys=st.lists(_values, min_size=1, max_size=4).map(tuple),
)
_correct = st.builds(
    CorrectRequest, values=st.lists(_values, min_size=1, max_size=5).map(tuple)
)
_program = st.lists(
    st.one_of(
        st.tuples(st.just("autofill"), st.lists(_fill, min_size=1, max_size=3)),
        st.tuples(st.just("autojoin"), st.lists(_join, min_size=1, max_size=3)),
        st.tuples(st.just("autocorrect"), st.lists(_correct, min_size=1, max_size=3)),
    ),
    min_size=1,
    max_size=4,
)


class TestCrossFormatServing:
    @given(program=_program)
    @settings(max_examples=15, deadline=None)
    def test_v1_and_v2_services_answer_identically(self, format_pair, program):
        v1, v2 = format_pair
        old = MappingService.from_artifact(v1)
        new = MappingService.from_artifact(v2)
        for kind, batch in program:
            assert _response_views(getattr(old, kind)(batch)) == _response_views(
                getattr(new, kind)(batch)
            )

    @pytest.mark.daemon
    @given(program=_program)
    @settings(max_examples=5, deadline=None)
    def test_v1_file_serves_byte_identical_daemon_responses(self, format_pair, program):
        """The ISSUE's compat criterion, against a live daemon on each format."""
        v1, v2 = format_pair
        with SynthesisDaemon.from_artifact(v1, watch=False, workers=2) as old:
            with SynthesisDaemon.from_artifact(v2, watch=False, workers=2) as new:
                for kind, batch in program:
                    old_result = old.submit(kind, batch).result(timeout=30)
                    new_result = new.submit(kind, batch).result(timeout=30)
                    assert _response_views(old_result.responses) == _response_views(
                        new_result.responses
                    )
