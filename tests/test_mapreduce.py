"""Tests for the local Map-Reduce engine and the paper's jobs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.compatibility import CompatibilityScorer
from repro.graph.connected import connected_components
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.jobs import (
    hash_to_min_connected_components,
    inverted_index_job,
    pairwise_compatibility_job,
)


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


class TestMapReduceEngine:
    def test_word_count(self):
        job = MapReduceJob(
            mapper=lambda line: [(word, 1) for word in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
            name="word-count",
        )
        engine = MapReduceEngine()
        result = dict(engine.run(job, ["a b a", "b c", "a"]))
        assert result == {"a": 3, "b": 2, "c": 1}

    def test_counters(self):
        job = MapReduceJob(
            mapper=lambda x: [(x % 2, x)],
            reducer=lambda key, values: [sum(values)],
            name="sum",
        )
        engine = MapReduceEngine()
        engine.run(job, range(10))
        counters = engine.counters["sum"]
        assert counters.input_records == 10
        assert counters.mapped_pairs == 10
        assert counters.shuffled_keys == 2
        assert counters.output_records == 2

    def test_combiner_reduces_shuffle_volume(self):
        job = MapReduceJob(
            mapper=lambda line: [(word, 1) for word in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
            combiner=lambda word, counts: [sum(counts)],
            name="word-count-combined",
        )
        result = dict(MapReduceEngine(num_partitions=2).run(job, ["a a a a", "a b"]))
        assert result == {"a": 5, "b": 1}

    def test_run_chain(self):
        first = MapReduceJob(
            mapper=lambda x: [(x, x)],
            reducer=lambda key, values: [key * 2],
            name="double",
        )
        second = MapReduceJob(
            mapper=lambda x: [(0, x)],
            reducer=lambda key, values: [sum(values)],
            name="sum",
        )
        result = MapReduceEngine().run_chain([first, second], [1, 2, 3])
        assert result == [12]

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            MapReduceEngine(num_partitions=0)

    def test_iterate_converges(self):
        def job_factory(iteration: int) -> MapReduceJob:
            return MapReduceJob(
                mapper=lambda x: [(0, min(x, 3))],
                reducer=lambda key, values: [min(values)] * len(values),
                name=f"min-{iteration}",
            )

        engine = MapReduceEngine()
        result, iterations = engine.iterate(
            job_factory, [5, 4, 3], converged=lambda prev, cur: prev == cur
        )
        assert iterations <= 3
        assert set(result) == {3}

    @given(st.lists(st.text(alphabet="abc ", max_size=12), max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_word_count_matches_counter(self, lines):
        from collections import Counter

        expected = Counter(word for line in lines for word in line.split())
        job = MapReduceJob(
            mapper=lambda line: [(word, 1) for word in line.split()],
            reducer=lambda word, counts: [(word, sum(counts))],
            name="wc",
        )
        result = dict(MapReduceEngine().run(job, lines))
        assert result == dict(expected)


class TestInvertedIndexJob:
    def test_blocks_only_overlapping_tables(self):
        tables = [
            make_binary("a", [("x", "1"), ("y", "2")]),
            make_binary("b", [("x", "1"), ("z", "3")]),
            make_binary("c", [("p", "7")]),
        ]
        scorer = CompatibilityScorer(SynthesisConfig())
        counts = inverted_index_job(tables, scorer)
        assert counts == {(0, 1): 1}

    def test_min_shared_filter(self):
        tables = [
            make_binary("a", [("x", "1"), ("y", "2"), ("z", "3")]),
            make_binary("b", [("x", "1"), ("y", "2"), ("q", "9")]),
        ]
        scorer = CompatibilityScorer(SynthesisConfig())
        assert inverted_index_job(tables, scorer, min_shared=2) == {(0, 1): 2}
        assert inverted_index_job(tables, scorer, min_shared=3) == {}

    def test_matches_graph_builder_blocking(self, iso_tables):
        scorer = CompatibilityScorer(SynthesisConfig())
        counts = inverted_index_job(iso_tables, scorer)
        assert (0, 1) in counts and (0, 2) in counts

    def test_invalid_min_shared(self):
        with pytest.raises(ValueError):
            inverted_index_job([], CompatibilityScorer(), min_shared=0)


class TestPairwiseCompatibilityJob:
    def test_scores_match_direct_scorer(self, iso_tables):
        config = SynthesisConfig(use_approximate_matching=False)
        scorer = CompatibilityScorer(config)
        scores = pairwise_compatibility_job(iso_tables, [(0, 1), (0, 2)], config, scorer)
        assert scores[(0, 1)][0] == pytest.approx(scorer.positive(iso_tables[0], iso_tables[1]))
        assert scores[(0, 2)][1] == pytest.approx(scorer.negative(iso_tables[0], iso_tables[2]))

    def test_empty_pairs(self, iso_tables):
        assert pairwise_compatibility_job(iso_tables, []) == {}


class TestHashToMin:
    def test_simple_components(self):
        representative = hash_to_min_connected_components(
            range(6), [(0, 1), (1, 2), (4, 5)]
        )
        assert representative[0] == representative[1] == representative[2] == 0
        assert representative[3] == 3
        assert representative[4] == representative[5] == 4

    def test_chain_converges(self):
        edges = [(i, i + 1) for i in range(9)]
        representative = hash_to_min_connected_components(range(10), edges)
        assert set(representative.values()) == {0}

    def test_no_edges(self):
        representative = hash_to_min_connected_components([3, 7, 9], [])
        assert representative == {3: 3, 7: 7, 9: 9}

    @given(st.lists(st.tuples(st.integers(0, 12), st.integers(0, 12)), max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_agrees_with_union_find(self, edges):
        vertices = list(range(13))
        representative = hash_to_min_connected_components(vertices, edges)
        expected_components = {
            frozenset(component) for component in connected_components(vertices, edges)
        }
        actual_components: dict[int, set[int]] = {}
        for vertex, root in representative.items():
            actual_components.setdefault(root, set()).add(vertex)
        assert {frozenset(c) for c in actual_components.values()} == expected_components
