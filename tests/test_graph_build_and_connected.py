"""Tests for the sparse graph builder, union-find, and connected components."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph, GraphBuilder
from repro.graph.connected import UnionFind, connected_components


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


class TestUnionFind:
    def test_union_and_find(self):
        finder = UnionFind(["a", "b", "c"])
        finder.union("a", "b")
        assert finder.connected("a", "b")
        assert not finder.connected("a", "c")

    def test_union_is_transitive(self):
        finder = UnionFind()
        finder.union("a", "b")
        finder.union("b", "c")
        assert finder.connected("a", "c")

    def test_find_unknown_raises(self):
        with pytest.raises(KeyError):
            UnionFind().find("missing")

    def test_groups(self):
        finder = UnionFind(range(5))
        finder.union(0, 1)
        finder.union(2, 3)
        groups = {frozenset(group) for group in finder.groups()}
        assert groups == {frozenset({0, 1}), frozenset({2, 3}), frozenset({4})}

    def test_len_and_contains(self):
        finder = UnionFind(["a"])
        assert len(finder) == 1
        assert "a" in finder
        assert "b" not in finder

    def test_add_idempotent(self):
        finder = UnionFind()
        finder.add("a")
        finder.add("a")
        assert len(finder) == 1

    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_groups_partition_all_items(self, edges):
        vertices = set(range(16))
        finder = UnionFind(vertices)
        for first, second in edges:
            finder.union(first, second)
        groups = finder.groups()
        flattened = [item for group in groups for item in group]
        assert sorted(flattened) == sorted(vertices)


class TestConnectedComponents:
    def test_basic(self):
        components = connected_components(range(5), [(0, 1), (1, 2)])
        as_sets = {frozenset(component) for component in components}
        assert as_sets == {frozenset({0, 1, 2}), frozenset({3}), frozenset({4})}

    def test_no_edges(self):
        components = connected_components(["a", "b"], [])
        assert {frozenset(c) for c in components} == {frozenset({"a"}), frozenset({"b"})}

    @given(st.lists(st.tuples(st.integers(0, 10), st.integers(0, 10)), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_matches_networkx(self, edges):
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(11))
        graph.add_edges_from(edges)
        expected = {frozenset(c) for c in nx.connected_components(graph)}
        actual = {frozenset(c) for c in connected_components(range(11), edges)}
        assert actual == expected


class TestCompatibilityGraph:
    def _graph(self) -> CompatibilityGraph:
        tables = [make_binary(f"t{i}", [(f"k{i}", f"v{i}")]) for i in range(4)]
        graph = CompatibilityGraph(tables=tables)
        graph.add_positive(0, 1, 0.8)
        graph.add_positive(2, 1, 0.6)
        graph.add_negative(0, 3, -0.5)
        return graph

    def test_edge_lookup_is_symmetric(self):
        graph = self._graph()
        assert graph.positive(0, 1) == graph.positive(1, 0) == 0.8
        assert graph.negative(3, 0) == -0.5
        assert graph.positive(0, 3) == 0.0

    def test_invalid_edges_rejected(self):
        graph = self._graph()
        with pytest.raises(ValueError):
            graph.add_positive(0, 0, 0.5)
        with pytest.raises(ValueError):
            graph.add_positive(0, 1, -0.5)
        with pytest.raises(ValueError):
            graph.add_negative(0, 1, 0.5)

    def test_neighbors(self):
        graph = self._graph()
        assert graph.neighbors(0) == {1, 3}
        assert graph.neighbors(1) == {0, 2}

    def test_positive_components(self):
        graph = self._graph()
        components = {frozenset(c) for c in graph.positive_components()}
        assert components == {frozenset({0, 1, 2}), frozenset({3})}

    def test_subgraph(self):
        graph = self._graph()
        sub = graph.subgraph([0, 1, 3])
        assert sub.num_vertices == 3
        assert sub.positive(0, 1) == 0.8
        assert sub.negative(0, 2) == -0.5  # vertex 3 renumbered to 2
        assert sub.num_positive_edges == 1

    def test_counts(self):
        graph = self._graph()
        assert graph.num_vertices == 4
        assert graph.num_positive_edges == 2
        assert graph.num_negative_edges == 1


class TestGraphBuilder:
    def test_iso_ioc_example_graph(self, iso_tables):
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        graph = GraphBuilder(config).build(iso_tables)
        assert graph.num_vertices == 3
        # B1-B2 (same IOC relation) must share a positive edge.
        assert graph.positive(0, 1) > 0.3
        # B1-B3 conflict (ISO vs IOC) must produce a negative edge.
        assert graph.negative(0, 2) < -0.2

    def test_edge_threshold_prunes_positive_edges(self, iso_tables):
        permissive = GraphBuilder(SynthesisConfig(edge_threshold=0.1)).build(iso_tables)
        strict = GraphBuilder(SynthesisConfig(edge_threshold=0.99)).build(iso_tables)
        assert strict.num_positive_edges <= permissive.num_positive_edges

    def test_negative_edges_disabled(self, iso_tables):
        config = SynthesisConfig(use_negative_edges=False)
        graph = GraphBuilder(config).build(iso_tables)
        assert graph.num_negative_edges == 0

    def test_overlap_threshold_blocks_small_overlaps(self):
        first = make_binary("a", [("x", "1"), ("y", "2"), ("z", "3")])
        second = make_binary("b", [("x", "1"), ("p", "9"), ("q", "8")])
        sparse = GraphBuilder(SynthesisConfig(overlap_threshold=2, edge_threshold=0.0)).build(
            [first, second]
        )
        dense = GraphBuilder(SynthesisConfig(overlap_threshold=1, edge_threshold=0.0)).build(
            [first, second]
        )
        assert sparse.num_positive_edges == 0
        assert dense.num_positive_edges == 1

    def test_disjoint_tables_produce_no_edges(self):
        tables = [
            make_binary("a", [("x", "1"), ("y", "2")]),
            make_binary("b", [("p", "7"), ("q", "8")]),
        ]
        graph = GraphBuilder(SynthesisConfig()).build(tables)
        assert graph.num_positive_edges == 0
        assert graph.num_negative_edges == 0

    def test_empty_input(self):
        graph = GraphBuilder(SynthesisConfig()).build([])
        assert graph.num_vertices == 0
        assert graph.positive_components() == []
