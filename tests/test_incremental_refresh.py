"""Tests for incremental artifact refresh (repro.store.incremental).

The headline property: refreshing an artifact against an updated corpus yields
the same mappings and graph as a cold pipeline run on that corpus (exact when
the corpus-global PMI filter is off — see the module docstring of
repro.store.incremental), while actually reusing unchanged work.
"""

from __future__ import annotations

import pytest

from store_helpers import make_fragment_corpus, seed_fragments
from repro.core.pipeline import SynthesisPipeline
from repro.store import refresh_artifact
from repro.store.incremental import RefreshStats


@pytest.fixture()
def base_fragments() -> dict[str, list[tuple[str, str]]]:
    fragments: dict[str, list[tuple[str, str]]] = {}
    fragments.update(seed_fragments("state_abbrev", "sa"))
    fragments.update(seed_fragments("country_iso3", "ci"))
    return fragments


def evolved_corpus(base_fragments):
    """The base corpus with one table edited and one new table added."""
    fragments = dict(base_fragments)
    changed_id = sorted(fragments)[0]
    fragments[changed_id] = fragments[changed_id][:-1] + [("Zanzibar", "ZZB")]
    fragments.update(seed_fragments("company_ticker", "ct", chunk=6, chunks=2))
    return make_fragment_corpus(fragments, name="store-corpus-v2")


class TestRefreshEquivalence:
    def test_refresh_matches_cold_run(self, base_fragments, store_config):
        base_corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(base_corpus)
        base_artifact = pipeline.last_artifact

        new_corpus = evolved_corpus(base_fragments)
        refreshed, stats = refresh_artifact(base_artifact, new_corpus)

        cold = SynthesisPipeline(store_config).run(new_corpus)
        assert refreshed.mappings == cold.mappings
        assert refreshed.curated == cold.curated
        assert [c.table_id for c in refreshed.candidates] == [
            c.table_id for c in cold.candidates
        ]
        # Work was actually reused, not recomputed.
        assert stats.tables_unchanged > 0
        assert stats.candidates_reused > 0
        assert stats.pairs_reused > 0
        assert stats.profiles_primed == stats.candidates_reused
        assert not stats.full_rebuild

    def test_refresh_graph_matches_cold_run(self, base_fragments, store_config):
        base_corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(base_corpus)

        new_corpus = evolved_corpus(base_fragments)
        refreshed, _ = refresh_artifact(pipeline.last_artifact, new_corpus)

        cold_pipeline = SynthesisPipeline(store_config)
        cold_pipeline.run(new_corpus)
        cold_artifact = cold_pipeline.last_artifact
        assert refreshed.positive_edges == cold_artifact.positive_edges
        assert refreshed.negative_edges == cold_artifact.negative_edges

    def test_noop_refresh_returns_same_artifact(self, base_fragments, store_config):
        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(corpus)
        refreshed, stats = refresh_artifact(pipeline.last_artifact, corpus)
        assert refreshed is pipeline.last_artifact
        assert stats.noop
        assert stats.candidates_reused == stats.candidates_total

    def test_config_change_forces_full_rebuild(self, base_fragments, store_config):
        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(corpus)
        stricter = store_config.with_overrides(edge_threshold=0.9)
        refreshed, stats = refresh_artifact(
            pipeline.last_artifact, corpus, config=stricter
        )
        assert stats.full_rebuild
        assert stats.pairs_reused == 0
        assert stats.candidates_reused == 0
        cold = SynthesisPipeline(stricter).run(corpus)
        assert refreshed.mappings == cold.mappings

    def test_synonym_change_forces_full_rebuild(self, base_fragments, store_config):
        """Cached scores embed synonym canonicalization; a different dictionary
        must invalidate them rather than silently mixing scoring regimes."""
        from repro.text.synonyms import SynonymDictionary

        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(corpus)

        synonyms = SynonymDictionary([["California", "Golden State"]])
        refreshed, stats = refresh_artifact(
            pipeline.last_artifact, corpus, synonyms=synonyms
        )
        assert stats.full_rebuild
        assert "synonym" in stats.reason
        assert stats.pairs_reused == 0
        cold = SynthesisPipeline(store_config, synonyms=synonyms).run(corpus)
        assert refreshed.mappings == cold.mappings
        # A subsequent refresh with the same dictionary reuses again.
        assert refreshed.synonyms_fingerprint
        again, again_stats = refresh_artifact(refreshed, corpus, synonyms=synonyms)
        assert again is refreshed
        assert again_stats.noop

    def test_worker_count_change_does_not_invalidate(self, base_fragments, store_config):
        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(corpus)
        parallel = store_config.with_overrides(num_workers=4)
        refreshed, stats = refresh_artifact(
            pipeline.last_artifact, corpus, config=parallel
        )
        assert stats.noop
        assert refreshed is pipeline.last_artifact

    def test_removed_tables_drop_their_candidates(self, base_fragments, store_config):
        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        pipeline = SynthesisPipeline(store_config)
        pipeline.run(corpus)

        remaining = {
            table_id: rows
            for table_id, rows in base_fragments.items()
            if not table_id.startswith("ci")
        }
        shrunk = make_fragment_corpus(remaining, name="store-corpus-shrunk")
        refreshed, stats = refresh_artifact(pipeline.last_artifact, shrunk)
        assert stats.tables_removed > 0
        sources = {c.source_table_id for c in refreshed.candidates}
        assert all(not source.startswith("ci") for source in sources)
        cold = SynthesisPipeline(store_config).run(shrunk)
        assert refreshed.mappings == cold.mappings


class TestPipelineRefresh:
    def test_pipeline_refresh_updates_state(self, base_fragments, store_config, tmp_path):
        corpus = make_fragment_corpus(base_fragments, name="store-corpus")
        target = tmp_path / "serving.artifact"
        config = store_config.with_overrides(artifact_path=str(target))
        pipeline = SynthesisPipeline(config)
        pipeline.run(corpus)
        first_bytes = target.read_bytes()

        result, stats = pipeline.refresh(evolved_corpus(base_fragments))
        assert isinstance(stats, RefreshStats)
        assert not stats.noop
        assert pipeline.last_result is result
        assert result.mappings == pipeline.last_artifact.mappings
        # The refreshed artifact was re-persisted to the configured path.
        assert target.read_bytes() != first_bytes

    def test_refresh_without_artifact_raises(self, store_config, base_fragments):
        pipeline = SynthesisPipeline(store_config)
        with pytest.raises(RuntimeError, match="no artifact to refresh"):
            pipeline.refresh(make_fragment_corpus(base_fragments))
