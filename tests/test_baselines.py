"""Tests for every baseline method (paper §5.1 "Methods compared")."""

from __future__ import annotations

import pytest

from repro.baselines import (
    CorrelationClusteringBaseline,
    EntTableBaseline,
    FreebaseBaseline,
    SchemaCCBaseline,
    SynthesisMethod,
    SynthesisPosMethod,
    SyntheticKnowledgeBase,
    UnionDomainBaseline,
    UnionWebBaseline,
    WebTableBaseline,
    WikiTableBaseline,
    WiseIntegratorBaseline,
    YagoBaseline,
)
from repro.baselines.base import candidates_from_corpus
from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table


def make_binary(table_id, rows, **kwargs):
    return BinaryTable.from_rows(table_id=table_id, rows=rows, **kwargs)


@pytest.fixture(scope="module")
def shared_candidates(request):
    corpus = request.getfixturevalue("small_web_corpus")
    return candidates_from_corpus(corpus, SynthesisConfig())


class TestSingleTableBaselines:
    def test_webtable_offers_each_candidate(self, small_web_corpus, shared_candidates):
        baseline = WebTableBaseline(SynthesisConfig())
        mappings = baseline.synthesize(small_web_corpus, candidates=shared_candidates)
        assert len(mappings) == len(shared_candidates)
        assert all(mapping.num_source_tables == 1 for mapping in mappings)

    def test_wikitable_restricts_to_wikipedia(self, small_web_corpus, shared_candidates):
        baseline = WikiTableBaseline(SynthesisConfig())
        mappings = baseline.synthesize(small_web_corpus, candidates=shared_candidates)
        wiki_tables = {
            table.table_id
            for table in small_web_corpus
            if table.domain == "en.wikipedia.org"
        }
        assert all(
            mapping.source_tables[0].split("#")[0] in wiki_tables for mapping in mappings
        )
        assert len(mappings) < len(shared_candidates)

    def test_enttable_same_as_webtable_on_corpus(self, small_web_corpus, shared_candidates):
        ent = EntTableBaseline(SynthesisConfig()).synthesize(
            small_web_corpus, candidates=shared_candidates
        )
        web = WebTableBaseline(SynthesisConfig()).synthesize(
            small_web_corpus, candidates=shared_candidates
        )
        assert len(ent) == len(web)

    def test_without_shared_candidates(self, small_web_corpus):
        mappings = WebTableBaseline(SynthesisConfig()).synthesize(small_web_corpus)
        assert mappings


class TestUnionBaselines:
    def _candidates(self) -> list[BinaryTable]:
        return [
            make_binary("a1", [("x", "1"), ("y", "2")], left_name="name", right_name="code",
                        domain="site-a.org"),
            make_binary("a2", [("z", "3")], left_name="name", right_name="code",
                        domain="site-a.org"),
            make_binary("b1", [("p", "9")], left_name="name", right_name="code",
                        domain="site-b.org"),
            make_binary("c1", [("q", "7")], left_name="city", right_name="state",
                        domain="site-a.org"),
        ]

    def test_union_domain_groups_by_domain_and_headers(self):
        corpus = TableCorpus(name="empty")
        mappings = UnionDomainBaseline(SynthesisConfig()).synthesize(
            corpus, candidates=self._candidates()
        )
        sizes = sorted(len(mapping.source_tables) for mapping in mappings)
        assert sizes == [1, 1, 2]

    def test_union_web_groups_by_headers_only(self):
        corpus = TableCorpus(name="empty")
        mappings = UnionWebBaseline(SynthesisConfig()).synthesize(
            corpus, candidates=self._candidates()
        )
        sizes = sorted(len(mapping.source_tables) for mapping in mappings)
        assert sizes == [1, 3]

    def test_union_web_over_groups_generic_headers(self, small_web_corpus, shared_candidates):
        """Generic (name, code) headers lump unrelated relations together."""
        mappings = UnionWebBaseline(SynthesisConfig()).synthesize(
            small_web_corpus, candidates=shared_candidates
        )
        largest = max(mappings, key=lambda mapping: mapping.num_source_tables)
        sources = {table_id.split("#")[0].split("-")[1] for table_id in largest.source_tables}
        assert largest.num_source_tables > 3


class TestSchemaMatchingBaselines:
    def test_schema_cc_transitive_merge(self):
        # a-b and b-c are matches; transitivity also places a with c.
        a = make_binary("a", [("x", "1"), ("y", "2"), ("z", "3")])
        b = make_binary("b", [("x", "1"), ("y", "2"), ("w", "4")])
        c = make_binary("c", [("w", "4"), ("v", "5"), ("u", "6")])
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=1)
        mappings = SchemaCCBaseline(0.3, True, config).synthesize(corpus, candidates=[a, b, c])
        assert len(mappings) == 1
        assert mappings[0].num_source_tables == 3

    def test_schema_cc_threshold_controls_merging(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2)
        loose = SchemaCCBaseline(0.1, False, config).synthesize(corpus, candidates=iso_tables)
        strict = SchemaCCBaseline(0.95, False, config).synthesize(corpus, candidates=iso_tables)
        assert len(loose) < len(strict)

    def test_schema_pos_cc_merges_conflicting_standards(self, iso_tables):
        """Without the negative signal, ISO and IOC tables merge (the paper's point)."""
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2)
        pos_only = SchemaCCBaseline(0.4, False, config)
        mappings = pos_only.synthesize(corpus, candidates=iso_tables)
        assert max(mapping.num_source_tables for mapping in mappings) == 3

    def test_schema_cc_with_negatives_keeps_them_apart(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2)
        with_neg = SchemaCCBaseline(0.4, True, config)
        mappings = with_neg.synthesize(corpus, candidates=iso_tables)
        assert max(mapping.num_source_tables for mapping in mappings) == 2

    def test_sweep_constructor(self):
        family = SchemaCCBaseline.sweep_thresholds(use_negative=True, thresholds=(0.2, 0.8))
        assert len(family) == 2
        assert {method.threshold for method in family} == {0.2, 0.8}
        assert all(method.name == "SchemaCC" for method in family)
        pos_family = SchemaCCBaseline.sweep_thresholds(use_negative=False, thresholds=(0.5,))
        assert pos_family[0].name == "SchemaPosCC"

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            SchemaCCBaseline(threshold=1.5)

    def test_wise_integrator_clusters_by_headers(self):
        a = make_binary("a", [("x", "1")], left_name="Country", right_name="Code")
        b = make_binary("b", [("y", "2")], left_name="country", right_name="code")
        c = make_binary("c", [("Chicago", "Illinois")], left_name="City", right_name="State")
        corpus = TableCorpus(name="empty")
        mappings = WiseIntegratorBaseline(config=SynthesisConfig()).synthesize(
            corpus, candidates=[a, b, c]
        )
        sizes = sorted(mapping.num_source_tables for mapping in mappings)
        assert sizes == [1, 2]

    def test_wise_integrator_invalid_threshold(self):
        with pytest.raises(ValueError):
            WiseIntegratorBaseline(similarity_threshold=2.0)


class TestCorrelationClustering:
    def test_clusters_cover_all_candidates(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2)
        mappings = CorrelationClusteringBaseline(config).synthesize(
            corpus, candidates=iso_tables
        )
        total_sources = sum(mapping.num_source_tables for mapping in mappings)
        assert total_sources == len(iso_tables)

    def test_deterministic_given_seed(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2)
        first = CorrelationClusteringBaseline(config, seed=3).synthesize(
            corpus, candidates=iso_tables
        )
        second = CorrelationClusteringBaseline(config, seed=3).synthesize(
            corpus, candidates=iso_tables
        )
        assert [m.pair_set() for m in first] == [m.pair_set() for m in second]

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            CorrelationClusteringBaseline(max_rounds=0)


class TestKnowledgeBaseBaselines:
    def test_synthetic_kb_coverage(self):
        kb = SyntheticKnowledgeBase(coverage=0.5, seed=1)
        relationships = kb.relationships()
        assert relationships
        # Each covered predicate yields a forward and a reverse relation.
        assert len(relationships) == 2 * len(kb.covered_relations)

    def test_kb_has_no_synonyms(self):
        kb = SyntheticKnowledgeBase(coverage=1.0, seed=1)
        forward = {
            mapping.mapping_id: mapping for mapping in kb.relationships()
        }["kb-country_iso3-forward"]
        lefts = {pair.left for pair in forward.pairs}
        assert "South Korea" in lefts
        assert "Republic of Korea" not in lefts

    def test_kb_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticKnowledgeBase(coverage=1.5)
        with pytest.raises(ValueError):
            SyntheticKnowledgeBase(instance_coverage=0.0)

    def test_freebase_broader_than_yago(self):
        freebase = FreebaseBaseline()
        yago = YagoBaseline()
        assert len(freebase.knowledge_base.covered_relations) > len(
            yago.knowledge_base.covered_relations
        )

    def test_kb_ignores_corpus(self, small_web_corpus):
        baseline = FreebaseBaseline()
        with_corpus = baseline.synthesize(small_web_corpus)
        without = baseline.synthesize(TableCorpus(name="empty"))
        assert len(with_corpus) == len(without)


class TestSynthesisMethods:
    def test_synthesis_method_produces_merged_mappings(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        mappings = SynthesisMethod(config).synthesize(corpus, candidates=iso_tables)
        assert len(mappings) == 2

    def test_synthesis_pos_disables_negative_edges(self, iso_tables):
        corpus = TableCorpus(name="empty")
        config = SynthesisConfig(overlap_threshold=2, edge_threshold=0.3)
        method = SynthesisPosMethod(config)
        assert not method.config.use_negative_edges
        mappings = method.synthesize(corpus, candidates=iso_tables)
        assert len(mappings) == 1

    def test_repr_contains_name(self):
        assert "Synthesis" in repr(SynthesisMethod())


class TestBaseHelpers:
    def test_candidates_from_corpus(self, small_web_corpus):
        candidates = candidates_from_corpus(small_web_corpus, SynthesisConfig())
        assert candidates
        assert all(isinstance(candidate, BinaryTable) for candidate in candidates)

    def test_single_table_filter_on_candidates(self):
        table = Table.from_rows(
            "keep-me", ["a", "b"],
            [("x1", "y1"), ("x2", "y2"), ("x3", "y3"), ("x4", "y4"), ("x5", "y5")],
            domain="en.wikipedia.org",
        )
        other = Table.from_rows(
            "drop-me", ["a", "b"],
            [("p1", "q1"), ("p2", "q2"), ("p3", "q3"), ("p4", "q4"), ("p5", "q5")],
            domain="other.org",
        )
        corpus = TableCorpus([table, other])
        candidates = candidates_from_corpus(corpus, SynthesisConfig(use_pmi_filter=False))
        baseline = WikiTableBaseline(SynthesisConfig(use_pmi_filter=False))
        mappings = baseline.synthesize(corpus, candidates=candidates)
        assert mappings
        assert all(m.source_tables[0].startswith("keep-me") for m in mappings)
