"""The table corpus container (paper Definition 3)."""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.corpus.table import Column, Table

__all__ = ["TableCorpus"]


class TableCorpus:
    """A collection of relational tables.

    The corpus is the only input of the synthesis problem.  Besides holding the
    tables, it provides the column-level iteration and simple statistics that the
    co-occurrence index and the corpus generators rely on.
    """

    def __init__(self, tables: Iterable[Table] | None = None, name: str = "corpus") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        if tables is not None:
            for table in tables:
                self.add(table)

    # -- Mutation -----------------------------------------------------------------
    def add(self, table: Table) -> None:
        """Add a table to the corpus.

        Raises
        ------
        ValueError
            If a table with the same identifier is already present.
        """
        if table.table_id in self._tables:
            raise ValueError(f"duplicate table id {table.table_id!r}")
        self._tables[table.table_id] = table

    def extend(self, tables: Iterable[Table]) -> None:
        """Add many tables."""
        for table in tables:
            self.add(table)

    # -- Access --------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, table_id: object) -> bool:
        return table_id in self._tables

    def get(self, table_id: str) -> Table:
        """Return the table with the given identifier.

        Raises
        ------
        KeyError
            If the table is not in the corpus.
        """
        try:
            return self._tables[table_id]
        except KeyError:
            raise KeyError(f"no table with id {table_id!r} in corpus {self.name!r}")

    def tables(self) -> list[Table]:
        """Return all tables as a list."""
        return list(self._tables.values())

    def table_ids(self) -> list[str]:
        """Return all table identifiers."""
        return list(self._tables.keys())

    # -- Column-level views -----------------------------------------------------------
    def iter_columns(self) -> Iterator[tuple[Table, Column]]:
        """Iterate over ``(table, column)`` pairs across the whole corpus."""
        for table in self._tables.values():
            for column in table.columns:
                yield table, column

    @property
    def num_columns(self) -> int:
        """Total number of columns in the corpus."""
        return sum(table.num_columns for table in self._tables.values())

    @property
    def num_cells(self) -> int:
        """Total number of cells in the corpus."""
        return sum(table.num_rows * table.num_columns for table in self._tables.values())

    def domains(self) -> set[str]:
        """Return the set of distinct source domains in the corpus."""
        return {table.domain for table in self._tables.values() if table.domain}

    # -- Transformation -----------------------------------------------------------------
    def sample(self, fraction: float, seed: int = 0) -> "TableCorpus":
        """Return a deterministic subsample of the corpus.

        Used by the scalability experiment (paper Figure 9), which measures runtime
        on {20%, 40%, 60%, 80%, 100%} of the input tables.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        import random

        rng = random.Random(seed)
        ids = sorted(self._tables)
        rng.shuffle(ids)
        keep = max(1, int(round(len(ids) * fraction)))
        subset = [self._tables[table_id] for table_id in sorted(ids[:keep])]
        return TableCorpus(subset, name=f"{self.name}@{fraction:.0%}")

    def filter(self, predicate: Callable[[Table], bool]) -> "TableCorpus":
        """Return a new corpus containing the tables for which ``predicate`` holds."""
        return TableCorpus(
            (table for table in self._tables.values() if predicate(table)),
            name=f"{self.name}:filtered",
        )

    def stats(self) -> dict[str, float]:
        """Return simple corpus statistics (counts and average shape)."""
        num_tables = len(self._tables)
        if num_tables == 0:
            return {
                "num_tables": 0,
                "num_columns": 0,
                "num_cells": 0,
                "avg_rows": 0.0,
                "avg_columns": 0.0,
                "num_domains": 0,
            }
        return {
            "num_tables": num_tables,
            "num_columns": self.num_columns,
            "num_cells": self.num_cells,
            "avg_rows": sum(t.num_rows for t in self._tables.values()) / num_tables,
            "avg_columns": self.num_columns / num_tables,
            "num_domains": len(self.domains()),
        }
