"""Table corpus substrate.

The paper uses a 100M-table web crawl and a 500K-table enterprise spreadsheet
corpus.  Neither is available offline, so this package provides (a) the generic
:class:`Table` / :class:`TableCorpus` data model any corpus is expressed in, and
(b) synthetic corpus generators that reproduce the statistical properties the
synthesis algorithms depend on: fragmented coverage, synonymous mentions that never
co-occur in one table, conflicting code standards, undescriptive column headers,
low-quality and spurious columns.
"""

from repro.corpus.table import Column, Table
from repro.corpus.corpus import TableCorpus
from repro.corpus.seeds import SeedRelation, all_seed_relations, get_seed_relation
from repro.corpus.noise import NoiseModel
from repro.corpus.generator import (
    CorpusGenerationSpec,
    EnterpriseCorpusGenerator,
    WebCorpusGenerator,
)
from repro.corpus.loader import load_corpus_json, save_corpus_json

__all__ = [
    "Column",
    "Table",
    "TableCorpus",
    "SeedRelation",
    "all_seed_relations",
    "get_seed_relation",
    "NoiseModel",
    "CorpusGenerationSpec",
    "WebCorpusGenerator",
    "EnterpriseCorpusGenerator",
    "load_corpus_json",
    "save_corpus_json",
]
