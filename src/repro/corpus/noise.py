"""Noise models for the synthetic corpus generators.

Real web tables and spreadsheets are dirty in characteristic ways: footnote markers
pasted into cells, inconsistent casing, typos, occasional outright wrong values
(paper Figure 4 shows wrong chemical symbols), and synonymous mentions of the same
entity across tables.  The :class:`NoiseModel` applies these perturbations with
configurable rates so the downstream pipeline faces the same issues the paper's
algorithms were designed to survive.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass

__all__ = ["NoiseModel"]

_FOOTNOTES = ("[1]", "[2]", "[3]", "[a]", "*")


@dataclass
class NoiseModel:
    """Randomized cell-value perturbations.

    Attributes
    ----------
    typo_rate:
        Probability of introducing a single-character edit into a value.
    footnote_rate:
        Probability of appending a footnote marker such as ``[1]``.
    case_rate:
        Probability of changing the casing of a value (upper/lower/title).
    synonym_rate:
        Probability of replacing a value that has known synonyms with one of them.
    error_rate:
        Probability of corrupting a right-hand-side value into a *wrong* mapping
        (a genuine data error; these are what conflict resolution removes).
    seed:
        Seed for the internal random generator.  Two models constructed with the
        same seed produce identical perturbation sequences.
    """

    typo_rate: float = 0.01
    footnote_rate: float = 0.03
    case_rate: float = 0.05
    synonym_rate: float = 0.25
    error_rate: float = 0.005
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("typo_rate", "footnote_rate", "case_rate", "synonym_rate", "error_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = random.Random(self.seed)

    # -- Individual perturbations -----------------------------------------------------
    def _typo(self, value: str) -> str:
        if len(value) < 4:
            return value
        position = self._rng.randrange(len(value))
        operation = self._rng.choice(("drop", "swap", "insert"))
        if operation == "drop":
            return value[:position] + value[position + 1:]
        if operation == "swap" and position + 1 < len(value):
            chars = list(value)
            chars[position], chars[position + 1] = chars[position + 1], chars[position]
            return "".join(chars)
        letter = self._rng.choice(string.ascii_lowercase)
        return value[:position] + letter + value[position:]

    def _recase(self, value: str) -> str:
        choice = self._rng.choice(("upper", "lower", "title"))
        if choice == "upper":
            return value.upper()
        if choice == "lower":
            return value.lower()
        return value.title()

    # -- Public API ----------------------------------------------------------------------
    def perturb_value(self, value: str, synonyms: tuple[str, ...] = ()) -> str:
        """Return a possibly-perturbed copy of ``value``.

        ``synonyms`` are alternative surface forms of the same entity; when present
        the synonym substitution fires with :attr:`synonym_rate`.
        """
        result = value
        if synonyms and self._rng.random() < self.synonym_rate:
            result = self._rng.choice(synonyms)
        if self._rng.random() < self.typo_rate:
            result = self._typo(result)
        if self._rng.random() < self.case_rate:
            result = self._recase(result)
        if self._rng.random() < self.footnote_rate:
            result = result + self._rng.choice(_FOOTNOTES)
        return result

    def should_corrupt(self) -> bool:
        """Return ``True`` if the current row's right value should be corrupted."""
        return self._rng.random() < self.error_rate

    def corrupt_value(self, value: str, alternatives: list[str]) -> str:
        """Return a wrong value drawn from ``alternatives`` (or a typo'd original)."""
        candidates = [alt for alt in alternatives if alt != value]
        if candidates:
            return self._rng.choice(candidates)
        return self._typo(value) if len(value) >= 4 else value + "X"

    def clone(self, seed: int) -> "NoiseModel":
        """Return a copy of this model with a different seed (same rates)."""
        return NoiseModel(
            typo_rate=self.typo_rate,
            footnote_rate=self.footnote_rate,
            case_rate=self.case_rate,
            synonym_rate=self.synonym_rate,
            error_rate=self.error_rate,
            seed=seed,
        )

    @classmethod
    def clean(cls, seed: int = 0) -> "NoiseModel":
        """A noise model that never perturbs anything (useful in unit tests)."""
        return cls(typo_rate=0.0, footnote_rate=0.0, case_rate=0.0,
                   synonym_rate=0.0, error_rate=0.0, seed=seed)
