"""Relational tables and columns as found in a table corpus (paper Definition 3)."""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

__all__ = ["Column", "Table"]


@dataclass
class Column:
    """A single table column: a header plus a list of cell values."""

    name: str
    values: list[str]

    def __post_init__(self) -> None:
        self.values = [str(value) for value in self.values]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __getitem__(self, index: int) -> str:
        return self.values[index]

    def distinct_values(self) -> set[str]:
        """Return the set of distinct cell values in this column."""
        return set(self.values)

    def distinct_count(self) -> int:
        """Number of distinct cell values."""
        return len(self.distinct_values())


@dataclass
class Table:
    """A relational table: an identifier, a source domain, and a list of columns.

    All columns are expected to have the same length (the number of rows); the
    constructor enforces this so downstream column-pair extraction can zip columns
    row-wise without further checks.
    """

    table_id: str
    columns: list[Column]
    domain: str = ""
    title: str = ""
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {len(column) for column in self.columns}
        if len(lengths) > 1:
            raise ValueError(
                f"table {self.table_id!r} has columns of unequal length: "
                f"{sorted(lengths)}"
            )

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a table with no columns)."""
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def column(self, name: str) -> Column:
        """Return the first column whose header equals ``name``.

        Raises
        ------
        KeyError
            If no column has that header.
        """
        for column in self.columns:
            if column.name == name:
                return column
        raise KeyError(f"table {self.table_id!r} has no column named {name!r}")

    def column_names(self) -> list[str]:
        """Return the list of column headers."""
        return [column.name for column in self.columns]

    def rows(self) -> Iterator[tuple[str, ...]]:
        """Iterate over rows as tuples of cell values."""
        return iter(zip(*[column.values for column in self.columns]))

    def column_pair_rows(self, i: int, j: int) -> list[tuple[str, str]]:
        """Return (value_i, value_j) rows for the ordered column pair ``(i, j)``."""
        left, right = self.columns[i], self.columns[j]
        return list(zip(left.values, right.values))

    @classmethod
    def from_rows(
        cls,
        table_id: str,
        header: Sequence[str],
        rows: Sequence[Sequence[str]],
        domain: str = "",
        title: str = "",
    ) -> "Table":
        """Build a table from a header and row-major data."""
        if rows and any(len(row) != len(header) for row in rows):
            raise ValueError(
                f"table {table_id!r}: all rows must have {len(header)} cells"
            )
        columns = [
            Column(name=name, values=[str(row[idx]) for row in rows])
            for idx, name in enumerate(header)
        ]
        return cls(table_id=table_id, columns=columns, domain=domain, title=title)
