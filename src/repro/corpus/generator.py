"""Synthetic corpus generators.

The paper's input corpora (100M web tables, 500K enterprise spreadsheets) are not
available offline; these generators produce corpora with the same *structural*
properties from the seed relations in :mod:`repro.corpus.seeds`:

* every relation is fragmented across many small tables, each covering a subset of
  the instances (web tables are "for human consumption" and therefore short);
* different tables use different synonyms for the same entity, so a synthesized
  mapping contains synonym combinations that never co-occur in one raw table;
* column headers are frequently generic (``name`` / ``code``), which is what breaks
  the UnionDomain / UnionWeb baselines;
* some tables carry extra context columns (populations, dates, free text) so the
  candidate extraction step has something to prune;
* a controlled fraction of rows carries outright wrong values (extraction/quality
  errors) so conflict resolution has work to do;
* "spurious" tables (departure/arrival airports, month-to-month calendar layout
  tables) locally satisfy FDs without being meaningful mappings;
* a fraction of columns are incoherent (mis-extracted / mixed concepts) and should
  be removed by the PMI filter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus.corpus import TableCorpus
from repro.corpus.noise import NoiseModel
from repro.corpus.seeds import SeedRelation, all_seed_relations
from repro.corpus.table import Table

__all__ = ["CorpusGenerationSpec", "WebCorpusGenerator", "EnterpriseCorpusGenerator"]


@dataclass
class CorpusGenerationSpec:
    """Knobs controlling the size and dirtiness of a generated corpus.

    Attributes
    ----------
    tables_per_relation:
        Base number of tables emitted per seed relation; multiplied by the
        relation's ``popularity`` weight.
    min_rows / max_rows:
        Bounds on the number of rows per generated table (before noise).
    context_column_rate:
        Probability that a generated table carries one or two additional context
        columns (numbers, dates, free text).
    reversed_rate:
        Probability that the relation's columns are emitted right-to-left.
    incoherent_column_rate:
        Probability that a generated table carries an extra *incoherent* column of
        mixed values (exercises the PMI filter).
    spurious_tables:
        Number of spurious-FD tables (departure/arrival style) to generate.
    formatting_tables:
        Number of "formatting" tables (month-to-month calendar layouts).
    mixed_tables_per_group:
        Number of *mixed* tables generated per group of relations that share a left
        attribute (e.g. the country-code standards).  Each mixed table draws half
        its rows from one relation of the group and half from another — the
        "tables with mixed values from different mappings" the paper identifies as
        the reason purely positive matching over-groups (§4.1).
    noise:
        The :class:`~repro.corpus.noise.NoiseModel` applied to cell values.
    seed:
        Seed for the table-structure random generator.
    """

    tables_per_relation: int = 8
    min_rows: int = 5
    max_rows: int = 25
    context_column_rate: float = 0.35
    reversed_rate: float = 0.25
    incoherent_column_rate: float = 0.10
    spurious_tables: int = 6
    formatting_tables: int = 4
    mixed_tables_per_group: int = 4
    noise: NoiseModel = field(default_factory=NoiseModel)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.tables_per_relation < 1:
            raise ValueError("tables_per_relation must be >= 1")
        if not 1 <= self.min_rows <= self.max_rows:
            raise ValueError(
                f"row bounds must satisfy 1 <= min_rows <= max_rows, "
                f"got ({self.min_rows}, {self.max_rows})"
            )

    @classmethod
    def small(cls, seed: int = 7) -> "CorpusGenerationSpec":
        """A small, fast spec used by unit tests."""
        return cls(tables_per_relation=4, max_rows=15, spurious_tables=2,
                   formatting_tables=1, mixed_tables_per_group=2,
                   seed=seed, noise=NoiseModel(seed=seed))

    @classmethod
    def benchmark(cls, seed: int = 7) -> "CorpusGenerationSpec":
        """The default spec used by the experiment harness."""
        return cls(tables_per_relation=10, max_rows=30, seed=seed,
                   noise=NoiseModel(seed=seed))


_CONTEXT_HEADERS = ("Population", "Year", "Rank", "Notes", "Area", "GDP", "Founded")
_GENERIC_TITLES = ("reference list", "data table", "lookup", "statistics", "overview")


class _BaseCorpusGenerator:
    """Shared machinery for web and enterprise corpus generation."""

    corpus_name = "corpus"
    table_prefix = "tbl"

    def __init__(
        self,
        spec: CorpusGenerationSpec | None = None,
        relations: list[SeedRelation] | None = None,
    ) -> None:
        self.spec = spec or CorpusGenerationSpec()
        self.relations = relations if relations is not None else self._default_relations()
        self._rng = random.Random(self.spec.seed)
        self._noise = self.spec.noise
        self._counter = 0

    def _default_relations(self) -> list[SeedRelation]:
        raise NotImplementedError

    # -- Helpers -------------------------------------------------------------------------
    def _next_table_id(self, relation_name: str) -> str:
        self._counter += 1
        return f"{self.table_prefix}-{relation_name}-{self._counter:05d}"

    def _pick_rows(self, relation: SeedRelation) -> list[tuple[str, str]]:
        """Sample a popularity-skewed subset of the relation's pairs.

        Web tables overwhelmingly list *popular* entities (the paper notes tables
        are short and "for human consumption"), so two tables about the same
        relation share most of their rows.  Rows are drawn with Zipf-like weights
        over the relation's canonical order, which yields the high pairwise
        containment the compatibility graph relies on.
        """
        pairs = list(relation.pairs)
        size = self._rng.randint(
            min(self.spec.min_rows, len(pairs)),
            min(self.spec.max_rows, len(pairs)),
        )
        weights = [1.0 / (rank + 1.0) for rank in range(len(pairs))]
        chosen: list[tuple[str, str]] = []
        chosen_set: set[tuple[str, str]] = set()
        attempts = 0
        while len(chosen) < size and attempts < 50 * size:
            pick = self._rng.choices(pairs, weights=weights, k=1)[0]
            attempts += 1
            if pick not in chosen_set:
                chosen_set.add(pick)
                chosen.append(pick)
        if len(chosen) < size:
            for pair in pairs:
                if len(chosen) >= size:
                    break
                if pair not in chosen_set:
                    chosen_set.add(pair)
                    chosen.append(pair)
        return chosen

    def _render_pair(
        self, relation: SeedRelation, left: str, right: str
    ) -> tuple[str, str]:
        """Apply synonym substitution, noise, and occasional corruption to a row."""
        left_out = self._noise.perturb_value(left, relation.left_synonyms.get(left, ()))
        right_out = self._noise.perturb_value(right, relation.right_synonyms.get(right, ()))
        if self._noise.should_corrupt():
            alternatives = [r for _, r in relation.pairs]
            right_out = self._noise.corrupt_value(right, alternatives)
        return left_out, right_out

    def _context_column(self, header: str, num_rows: int) -> list[str]:
        if header in ("Population", "Area", "GDP"):
            return [str(self._rng.randint(10_000, 90_000_000)) for _ in range(num_rows)]
        if header in ("Year", "Founded"):
            return [str(self._rng.randint(1800, 2020)) for _ in range(num_rows)]
        if header == "Rank":
            return [str(i + 1) for i in range(num_rows)]
        return [
            self._rng.choice(("see notes", "estimated", "n/a", "updated", "verified"))
            for _ in range(num_rows)
        ]

    def _incoherent_column(self, num_rows: int) -> list[str]:
        """A column of values drawn at random across unrelated relations."""
        pool: list[str] = []
        for relation in self._rng.sample(self.relations, min(4, len(self.relations))):
            pool.extend(left for left, _ in relation.pairs[:10])
            pool.extend(right for _, right in relation.pairs[:10])
        pool.extend(f"cell {self._rng.randint(0, 10_000)}" for _ in range(20))
        return [self._rng.choice(pool) for _ in range(num_rows)]

    # -- Table emitters -----------------------------------------------------------------
    def _relation_table(self, relation: SeedRelation) -> Table:
        rows = self._pick_rows(relation)
        rendered = [self._render_pair(relation, left, right) for left, right in rows]
        left_header, right_header = self._rng.choice(relation.header_variants)
        headers = [left_header, right_header]
        columns = [[left for left, _ in rendered], [right for _, right in rendered]]

        if self._rng.random() < self.spec.reversed_rate:
            headers.reverse()
            columns.reverse()

        if self._rng.random() < self.spec.context_column_rate:
            extra = self._rng.choice(_CONTEXT_HEADERS)
            headers.append(extra)
            columns.append(self._context_column(extra, len(rendered)))

        if self._rng.random() < self.spec.incoherent_column_rate:
            headers.append("Location")
            columns.append(self._incoherent_column(len(rendered)))

        domain = self._rng.choice(relation.domain_pool) if relation.domain_pool else "unknown"
        table = Table.from_rows(
            table_id=self._next_table_id(relation.name),
            header=headers,
            rows=list(zip(*columns)),
            domain=domain,
            title=f"{relation.left_attr} {self._rng.choice(_GENERIC_TITLES)}",
        )
        table.metadata["seed_relation"] = relation.name
        return table

    def _spurious_table(self, index: int) -> Table:
        """A table whose column pair satisfies an FD locally but is meaningless.

        Mirrors the paper's departure-airport / arrival-airport example: each left
        value appears once, so the FD trivially holds, but the relationship is not a
        conceptual mapping (different such tables conflict heavily with each other).
        """
        airports = [left for left, _ in all_seed_relations()[0].pairs]  # placeholder pool
        airport_relation = next(
            (relation for relation in self.relations if relation.name == "airport_iata"),
            None,
        )
        if airport_relation is not None:
            airports = [left for left, _ in airport_relation.pairs]
        size = min(len(airports), self._rng.randint(6, 14))
        departures = self._rng.sample(airports, size)
        arrivals = self._rng.sample(airports, size)
        rows = [
            (dep, arr if arr != dep else self._rng.choice(airports))
            for dep, arr in zip(departures, arrivals)
        ]
        table = Table.from_rows(
            table_id=f"{self.table_prefix}-spurious-{index:04d}",
            header=["Departure", "Arrival"],
            rows=rows,
            domain=self._rng.choice(("flightstats.example", "travelboard.example")),
            title="flight schedule",
        )
        table.metadata["seed_relation"] = "__spurious__"
        return table

    def _mixed_table(self, first: SeedRelation, second: SeedRelation, index: int) -> Table:
        """A table whose rows mix two relations that share the same left attribute.

        These are the "mixed values from different mappings" tables of §4.1: they
        have substantial positive overlap with *both* pure relations, so methods
        that only use positive similarity chain the two relations together, while
        the FD-conflict signal correctly flags the mixture.
        """
        half = max(2, self._rng.randint(self.spec.min_rows, self.spec.max_rows) // 2)
        rows_first = self._pick_rows(first)[:half]
        used_lefts = {left for left, _ in rows_first}
        # Keep the two halves disjoint on the left side so the table still satisfies
        # the local FD (which is what makes these tables slip past the §3.2 filter
        # and confuse purely positive matching).
        rows_second = [
            (left, right)
            for left, right in self._pick_rows(second)
            if left not in used_lefts
        ][:half]
        rendered = [self._render_pair(first, left, right) for left, right in rows_first]
        rendered += [self._render_pair(second, left, right) for left, right in rows_second]
        self._rng.shuffle(rendered)
        left_header = self._rng.choice(first.header_variants)[0]
        right_header = self._rng.choice((first.header_variants[0][1], "code", "value"))
        domain = self._rng.choice(first.domain_pool) if first.domain_pool else "unknown"
        table = Table.from_rows(
            table_id=f"{self.table_prefix}-mixed-{first.name}-{second.name}-{index:04d}",
            header=[left_header, right_header],
            rows=rendered,
            domain=domain,
            title=f"{first.left_attr} reference (mixed)",
        )
        table.metadata["seed_relation"] = f"__mixed__:{first.name}+{second.name}"
        return table

    def _mixed_tables(self) -> list[Table]:
        """Emit mixed tables for every group of relations sharing a left attribute."""
        groups: dict[str, list[SeedRelation]] = {}
        for relation in self.relations:
            groups.setdefault(relation.left_attr, []).append(relation)
        tables: list[Table] = []
        counter = 0
        for left_attr in sorted(groups):
            members = groups[left_attr]
            if len(members) < 2:
                continue
            for _ in range(self.spec.mixed_tables_per_group):
                first, second = self._rng.sample(members, 2)
                tables.append(self._mixed_table(first, second, counter))
                counter += 1
        return tables

    def _formatting_table(self, index: int) -> Table:
        """A calendar-layout table that maps each month to the month six later."""
        months = ["January", "February", "March", "April", "May", "June",
                  "July", "August", "September", "October", "November", "December"]
        rows = [(months[i], months[(i + 6) % 12]) for i in range(6)]
        table = Table.from_rows(
            table_id=f"{self.table_prefix}-format-{index:04d}",
            header=["Month", "Month"],
            rows=rows,
            domain=self._rng.choice(("calendar.example", "printables.example")),
            title="calendar layout",
        )
        table.metadata["seed_relation"] = "__formatting__"
        return table

    # -- Public API ------------------------------------------------------------------------
    def generate(self) -> TableCorpus:
        """Generate the corpus."""
        corpus = TableCorpus(name=self.corpus_name)
        for relation in self.relations:
            count = max(1, int(round(self.spec.tables_per_relation * relation.popularity)))
            for _ in range(count):
                corpus.add(self._relation_table(relation))
        for table in self._mixed_tables():
            corpus.add(table)
        for index in range(self.spec.spurious_tables):
            corpus.add(self._spurious_table(index))
        for index in range(self.spec.formatting_tables):
            corpus.add(self._formatting_table(index))
        return corpus


class WebCorpusGenerator(_BaseCorpusGenerator):
    """Generates a web-table-like corpus from the geocoding + query-log seeds."""

    corpus_name = "web"
    table_prefix = "web"

    def _default_relations(self) -> list[SeedRelation]:
        return [
            relation
            for relation in all_seed_relations()
            if relation.category in ("geocoding", "querylog")
        ]


class EnterpriseCorpusGenerator(_BaseCorpusGenerator):
    """Generates an enterprise-spreadsheet-like corpus.

    On top of the base behaviour, a fraction of tables receive pivot-table-style
    corruption — header strings leaking into value cells — which the paper reports
    as a common quality issue in spreadsheet corpora (§5.5).
    """

    corpus_name = "enterprise"
    table_prefix = "ent"

    def __init__(
        self,
        spec: CorpusGenerationSpec | None = None,
        relations: list[SeedRelation] | None = None,
        pivot_corruption_rate: float = 0.10,
    ) -> None:
        if not 0.0 <= pivot_corruption_rate <= 1.0:
            raise ValueError(
                f"pivot_corruption_rate must be in [0, 1], got {pivot_corruption_rate}"
            )
        super().__init__(spec=spec, relations=relations)
        self.pivot_corruption_rate = pivot_corruption_rate

    def _default_relations(self) -> list[SeedRelation]:
        return all_seed_relations(category="enterprise")

    def _relation_table(self, relation: SeedRelation) -> Table:
        table = super()._relation_table(relation)
        if self._rng.random() < self.pivot_corruption_rate and table.num_rows >= 2:
            # Simulate a pivot-table extraction error: the header row leaks into the
            # first data row of every column.
            for column in table.columns:
                column.values[0] = column.name
            table.metadata["pivot_corrupted"] = "true"
        return table
