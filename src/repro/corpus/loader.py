"""Persistence for table corpora (JSON lines and CSV directory formats)."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table

__all__ = [
    "save_corpus_json",
    "load_corpus_json",
    "save_corpus_csv_dir",
    "load_corpus_csv_dir",
]


def _table_to_record(table: Table) -> dict:
    return {
        "table_id": table.table_id,
        "domain": table.domain,
        "title": table.title,
        "metadata": table.metadata,
        "columns": [
            {"name": column.name, "values": column.values} for column in table.columns
        ],
    }


def _table_from_record(record: dict) -> Table:
    table = Table(
        table_id=record["table_id"],
        columns=[
            # Import here to avoid a circular import at module load time.
            _column_from_record(col)
            for col in record["columns"]
        ],
        domain=record.get("domain", ""),
        title=record.get("title", ""),
    )
    table.metadata.update(record.get("metadata", {}))
    return table


def _column_from_record(record: dict):
    from repro.corpus.table import Column

    return Column(name=record["name"], values=list(record["values"]))


def save_corpus_json(corpus: TableCorpus, path: str | Path) -> None:
    """Write a corpus to a JSON-lines file, one table per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for table in corpus:
            handle.write(json.dumps(_table_to_record(table), ensure_ascii=False))
            handle.write("\n")


def load_corpus_json(path: str | Path, name: str | None = None) -> TableCorpus:
    """Load a corpus from a JSON-lines file written by :func:`save_corpus_json`."""
    path = Path(path)
    corpus = TableCorpus(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            corpus.add(_table_from_record(json.loads(line)))
    return corpus


def save_corpus_csv_dir(corpus: TableCorpus, directory: str | Path) -> None:
    """Write each table of the corpus as an individual CSV file in ``directory``.

    The table identifier and domain are stored in a sidecar ``manifest.json`` so the
    corpus round-trips through :func:`load_corpus_csv_dir`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {}
    for index, table in enumerate(corpus):
        filename = f"table_{index:06d}.csv"
        manifest[filename] = {
            "table_id": table.table_id,
            "domain": table.domain,
            "title": table.title,
            "metadata": table.metadata,
        }
        with (directory / filename).open("w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(table.column_names())
            for row in table.rows():
                writer.writerow(row)
    with (directory / "manifest.json").open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, ensure_ascii=False, indent=2)


def load_corpus_csv_dir(directory: str | Path, name: str | None = None) -> TableCorpus:
    """Load a corpus from a directory written by :func:`save_corpus_csv_dir`."""
    directory = Path(directory)
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json in {directory}")
    with manifest_path.open("r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    corpus = TableCorpus(name=name or directory.name)
    for filename in sorted(manifest):
        info = manifest[filename]
        with (directory / filename).open("r", encoding="utf-8", newline="") as handle:
            reader = csv.reader(handle)
            rows = list(reader)
        header, data = rows[0], rows[1:]
        table = Table.from_rows(
            table_id=info["table_id"],
            header=header,
            rows=data,
            domain=info.get("domain", ""),
            title=info.get("title", ""),
        )
        table.metadata.update(info.get("metadata", {}))
        corpus.add(table)
    return corpus
