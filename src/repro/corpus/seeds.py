"""Seed ground-truth relations used by the synthetic corpus generators.

The paper's Web benchmark has 80 hand-curated mapping relationships drawn from a
Wikipedia list of geocoding systems and from "list of A and B" query-log patterns.
The real WDC-scale crawl is not available offline, so this module ships a set of
seed relations — with canonical pairs *and* synonymous surface forms — from which
the generators fabricate fragmented, noisy web/enterprise tables, and from which
the evaluation builds its benchmark ground truth.

The seeds are deliberately designed to reproduce the confusion patterns the paper
exercises:

* several country-code standards (ISO3 / ISO2 / IOC / FIFA) that agree on many
  countries but disagree on others — the motivating case for FD-induced negative
  edges (paper Figure 2, Table 8);
* ``state -> capital`` vs ``state -> largest city``, which disagree only on a few
  values — the motivating case for conflict resolution (§5.6);
* rich synonym sets for countries so synthesized mappings contain synonymous
  mentions that never co-occur in one raw table (paper Table 6);
* generic, undescriptive headers (``name``/``code``) shared across unrelated
  relations, which break the UnionDomain/UnionWeb baselines;
* ``city -> state`` ambiguity (Portland) so FDs only hold approximately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SeedRelation", "all_seed_relations", "get_seed_relation", "seed_relation_names"]


@dataclass(frozen=True)
class SeedRelation:
    """A ground-truth binary relation with synonyms and presentation metadata.

    Attributes
    ----------
    name:
        Unique relation identifier, e.g. ``"country_iso3"``.
    left_attr / right_attr:
        Human-readable attribute names of the conceptual relation.
    pairs:
        Canonical ``(left, right)`` pairs.
    left_synonyms / right_synonyms:
        Alternative surface forms for canonical left/right values.  Each synonym
        inherits the mapping of its canonical form.
    header_variants:
        Column-header pairs under which web tables publish this relation.  Several
        relations intentionally share generic headers such as ``("name", "code")``.
    category:
        ``"geocoding"``, ``"querylog"``, or ``"enterprise"`` — mirrors the paper's
        two Web benchmark sources plus the enterprise corpus.
    one_to_one:
        Whether the reverse direction is also functional.
    popularity:
        Relative weight controlling how many tables the generators emit for the
        relation (popular relations appear on many more web domains).
    domain_pool:
        Candidate web domains / file shares that publish this relation.
    """

    name: str
    left_attr: str
    right_attr: str
    pairs: tuple[tuple[str, str], ...]
    left_synonyms: dict[str, tuple[str, ...]] = field(default_factory=dict)
    right_synonyms: dict[str, tuple[str, ...]] = field(default_factory=dict)
    header_variants: tuple[tuple[str, str], ...] = (("name", "code"),)
    category: str = "querylog"
    one_to_one: bool = True
    popularity: float = 1.0
    domain_pool: tuple[str, ...] = ()

    def canonical_pairs(self) -> set[tuple[str, str]]:
        """Return the canonical pairs as a set."""
        return set(self.pairs)

    def ground_truth_pairs(self, include_synonyms: bool = True) -> set[tuple[str, str]]:
        """Return the full ground truth, optionally expanded with synonyms.

        Synonym expansion mirrors the paper's benchmark construction, where the
        curated ground truth contains many synonymous mentions of the same entity
        (e.g. every way of writing "South Korea" maps to ``KOR``).
        """
        truth = set(self.pairs)
        if not include_synonyms:
            return truth
        for left, right in self.pairs:
            left_forms = (left,) + self.left_synonyms.get(left, ())
            right_forms = (right,) + self.right_synonyms.get(right, ())
            for lf in left_forms:
                for rf in right_forms:
                    truth.add((lf, rf))
        return truth

    def left_values(self) -> set[str]:
        """Distinct canonical left values."""
        return {left for left, _ in self.pairs}

    def right_values(self) -> set[str]:
        """Distinct canonical right values."""
        return {right for _, right in self.pairs}


# ---------------------------------------------------------------------------
# Country data: name, ISO3, ISO2, IOC, FIFA, capital, currency code, calling code
# The IOC/FIFA/ISO columns intentionally agree for most countries and disagree for
# some (as in the paper's Figure 2).
# ---------------------------------------------------------------------------
_COUNTRIES: list[tuple[str, str, str, str, str, str, str, str]] = [
    # name, iso3, iso2, ioc, fifa, capital, currency, calling
    ("United States", "USA", "US", "USA", "USA", "Washington", "USD", "1"),
    ("Canada", "CAN", "CA", "CAN", "CAN", "Ottawa", "CAD", "1"),
    ("Mexico", "MEX", "MX", "MEX", "MEX", "Mexico City", "MXN", "52"),
    ("Brazil", "BRA", "BR", "BRA", "BRA", "Brasilia", "BRL", "55"),
    ("Argentina", "ARG", "AR", "ARG", "ARG", "Buenos Aires", "ARS", "54"),
    ("Chile", "CHL", "CL", "CHI", "CHI", "Santiago", "CLP", "56"),
    ("Colombia", "COL", "CO", "COL", "COL", "Bogota", "COP", "57"),
    ("Peru", "PER", "PE", "PER", "PER", "Lima", "PEN", "51"),
    ("United Kingdom", "GBR", "GB", "GBR", "ENG", "London", "GBP", "44"),
    ("France", "FRA", "FR", "FRA", "FRA", "Paris", "EUR", "33"),
    ("Germany", "DEU", "DE", "GER", "GER", "Berlin", "EUR", "49"),
    ("Italy", "ITA", "IT", "ITA", "ITA", "Rome", "EUR", "39"),
    ("Spain", "ESP", "ES", "ESP", "ESP", "Madrid", "EUR", "34"),
    ("Portugal", "PRT", "PT", "POR", "POR", "Lisbon", "EUR", "351"),
    ("Netherlands", "NLD", "NL", "NED", "NED", "Amsterdam", "EUR", "31"),
    ("Belgium", "BEL", "BE", "BEL", "BEL", "Brussels", "EUR", "32"),
    ("Switzerland", "CHE", "CH", "SUI", "SUI", "Bern", "CHF", "41"),
    ("Austria", "AUT", "AT", "AUT", "AUT", "Vienna", "EUR", "43"),
    ("Sweden", "SWE", "SE", "SWE", "SWE", "Stockholm", "SEK", "46"),
    ("Norway", "NOR", "NO", "NOR", "NOR", "Oslo", "NOK", "47"),
    ("Denmark", "DNK", "DK", "DEN", "DEN", "Copenhagen", "DKK", "45"),
    ("Finland", "FIN", "FI", "FIN", "FIN", "Helsinki", "EUR", "358"),
    ("Iceland", "ISL", "IS", "ISL", "ISL", "Reykjavik", "ISK", "354"),
    ("Ireland", "IRL", "IE", "IRL", "IRL", "Dublin", "EUR", "353"),
    ("Poland", "POL", "PL", "POL", "POL", "Warsaw", "PLN", "48"),
    ("Czech Republic", "CZE", "CZ", "CZE", "CZE", "Prague", "CZK", "420"),
    ("Hungary", "HUN", "HU", "HUN", "HUN", "Budapest", "HUF", "36"),
    ("Greece", "GRC", "GR", "GRE", "GRE", "Athens", "EUR", "30"),
    ("Romania", "ROU", "RO", "ROU", "ROU", "Bucharest", "RON", "40"),
    ("Bulgaria", "BGR", "BG", "BUL", "BUL", "Sofia", "BGN", "359"),
    ("Croatia", "HRV", "HR", "CRO", "CRO", "Zagreb", "EUR", "385"),
    ("Russia", "RUS", "RU", "RUS", "RUS", "Moscow", "RUB", "7"),
    ("Ukraine", "UKR", "UA", "UKR", "UKR", "Kyiv", "UAH", "380"),
    ("Turkey", "TUR", "TR", "TUR", "TUR", "Ankara", "TRY", "90"),
    ("China", "CHN", "CN", "CHN", "CHN", "Beijing", "CNY", "86"),
    ("Japan", "JPN", "JP", "JPN", "JPN", "Tokyo", "JPY", "81"),
    ("South Korea", "KOR", "KR", "KOR", "KOR", "Seoul", "KRW", "82"),
    ("North Korea", "PRK", "KP", "PRK", "PRK", "Pyongyang", "KPW", "850"),
    ("India", "IND", "IN", "IND", "IND", "New Delhi", "INR", "91"),
    ("Indonesia", "IDN", "ID", "INA", "IDN", "Jakarta", "IDR", "62"),
    ("Malaysia", "MYS", "MY", "MAS", "MAS", "Kuala Lumpur", "MYR", "60"),
    ("Singapore", "SGP", "SG", "SGP", "SIN", "Singapore", "SGD", "65"),
    ("Thailand", "THA", "TH", "THA", "THA", "Bangkok", "THB", "66"),
    ("Vietnam", "VNM", "VN", "VIE", "VIE", "Hanoi", "VND", "84"),
    ("Philippines", "PHL", "PH", "PHI", "PHI", "Manila", "PHP", "63"),
    ("Australia", "AUS", "AU", "AUS", "AUS", "Canberra", "AUD", "61"),
    ("New Zealand", "NZL", "NZ", "NZL", "NZL", "Wellington", "NZD", "64"),
    ("South Africa", "ZAF", "ZA", "RSA", "RSA", "Pretoria", "ZAR", "27"),
    ("Nigeria", "NGA", "NG", "NGR", "NGA", "Abuja", "NGN", "234"),
    ("Egypt", "EGY", "EG", "EGY", "EGY", "Cairo", "EGP", "20"),
    ("Kenya", "KEN", "KE", "KEN", "KEN", "Nairobi", "KES", "254"),
    ("Morocco", "MAR", "MA", "MAR", "MAR", "Rabat", "MAD", "212"),
    ("Algeria", "DZA", "DZ", "ALG", "ALG", "Algiers", "DZD", "213"),
    ("Saudi Arabia", "SAU", "SA", "KSA", "KSA", "Riyadh", "SAR", "966"),
    ("United Arab Emirates", "ARE", "AE", "UAE", "UAE", "Abu Dhabi", "AED", "971"),
    ("Israel", "ISR", "IL", "ISR", "ISR", "Jerusalem", "ILS", "972"),
    ("Iran", "IRN", "IR", "IRI", "IRN", "Tehran", "IRR", "98"),
    ("Iraq", "IRQ", "IQ", "IRQ", "IRQ", "Baghdad", "IQD", "964"),
    ("Pakistan", "PAK", "PK", "PAK", "PAK", "Islamabad", "PKR", "92"),
    ("Afghanistan", "AFG", "AF", "AFG", "AFG", "Kabul", "AFN", "93"),
    ("Albania", "ALB", "AL", "ALB", "ALB", "Tirana", "ALL", "355"),
    ("American Samoa", "ASM", "AS", "ASA", "ASA", "Pago Pago", "USD", "1684"),
    ("US Virgin Islands", "VIR", "VI", "ISV", "VIR", "Charlotte Amalie", "USD", "1340"),
    ("Democratic Republic of the Congo", "COD", "CD", "COD", "COD", "Kinshasa", "CDF", "243"),
    ("Greenland", "GRL", "GL", "GRL", "GRL", "Nuuk", "DKK", "299"),
]

_COUNTRY_SYNONYMS: dict[str, tuple[str, ...]] = {
    "United States": (
        "United States of America",
        "USA (United States)",
        "U.S.A.",
        "US of America",
    ),
    "South Korea": (
        "Korea (Republic)",
        "Korea (South)",
        "Korea, Republic of",
        "Republic of Korea",
        "Korea, South",
        "KOREA REPUBLIC OF",
    ),
    "North Korea": (
        "Korea (Democratic People's Republic)",
        "Korea, North",
        "DPR Korea",
    ),
    "United Kingdom": (
        "UK",
        "Great Britain",
        "United Kingdom of Great Britain",
    ),
    "Democratic Republic of the Congo": (
        "Congo (Democratic Rep.)",
        "Congo, Democratic Republic of the",
        "DR Congo",
        "Congo-Kinshasa",
    ),
    "Russia": ("Russian Federation",),
    "Iran": ("Iran, Islamic Republic of", "Islamic Republic of Iran"),
    "Vietnam": ("Viet Nam",),
    "Czech Republic": ("Czechia",),
    "US Virgin Islands": ("United States Virgin Islands", "Virgin Islands (US)"),
    "American Samoa": ("American Samoa (US)",),
    "United Arab Emirates": ("UAE", "Emirates"),
    "Netherlands": ("The Netherlands", "Holland"),
}

# ---------------------------------------------------------------------------
# US state data: name, USPS abbreviation, capital, largest city, FIPS code
# ---------------------------------------------------------------------------
_US_STATES: list[tuple[str, str, str, str, str]] = [
    ("Alabama", "AL", "Montgomery", "Huntsville", "01"),
    ("Alaska", "AK", "Juneau", "Anchorage", "02"),
    ("Arizona", "AZ", "Phoenix", "Phoenix", "04"),
    ("Arkansas", "AR", "Little Rock", "Little Rock", "05"),
    ("California", "CA", "Sacramento", "Los Angeles", "06"),
    ("Colorado", "CO", "Denver", "Denver", "08"),
    ("Connecticut", "CT", "Hartford", "Bridgeport", "09"),
    ("Delaware", "DE", "Dover", "Wilmington", "10"),
    ("Florida", "FL", "Tallahassee", "Jacksonville", "12"),
    ("Georgia", "GA", "Atlanta", "Atlanta", "13"),
    ("Hawaii", "HI", "Honolulu", "Honolulu", "15"),
    ("Idaho", "ID", "Boise", "Boise", "16"),
    ("Illinois", "IL", "Springfield", "Chicago", "17"),
    ("Indiana", "IN", "Indianapolis", "Indianapolis", "18"),
    ("Iowa", "IA", "Des Moines", "Des Moines", "19"),
    ("Kansas", "KS", "Topeka", "Wichita", "20"),
    ("Kentucky", "KY", "Frankfort", "Louisville", "21"),
    ("Louisiana", "LA", "Baton Rouge", "New Orleans", "22"),
    ("Maine", "ME", "Augusta", "Portland", "23"),
    ("Maryland", "MD", "Annapolis", "Baltimore", "24"),
    ("Massachusetts", "MA", "Boston", "Boston", "25"),
    ("Michigan", "MI", "Lansing", "Detroit", "26"),
    ("Minnesota", "MN", "Saint Paul", "Minneapolis", "27"),
    ("Mississippi", "MS", "Jackson", "Jackson", "28"),
    ("Missouri", "MO", "Jefferson City", "Kansas City", "29"),
    ("Montana", "MT", "Helena", "Billings", "30"),
    ("Nebraska", "NE", "Lincoln", "Omaha", "31"),
    ("Nevada", "NV", "Carson City", "Las Vegas", "32"),
    ("New Hampshire", "NH", "Concord", "Manchester", "33"),
    ("New Jersey", "NJ", "Trenton", "Newark", "34"),
    ("New Mexico", "NM", "Santa Fe", "Albuquerque", "35"),
    ("New York", "NY", "Albany", "New York City", "36"),
    ("North Carolina", "NC", "Raleigh", "Charlotte", "37"),
    ("North Dakota", "ND", "Bismarck", "Fargo", "38"),
    ("Ohio", "OH", "Columbus", "Columbus", "39"),
    ("Oklahoma", "OK", "Oklahoma City", "Oklahoma City", "40"),
    ("Oregon", "OR", "Salem", "Portland", "41"),
    ("Pennsylvania", "PA", "Harrisburg", "Philadelphia", "42"),
    ("Rhode Island", "RI", "Providence", "Providence", "44"),
    ("South Carolina", "SC", "Columbia", "Charleston", "45"),
    ("South Dakota", "SD", "Pierre", "Sioux Falls", "46"),
    ("Tennessee", "TN", "Nashville", "Nashville", "47"),
    ("Texas", "TX", "Austin", "Houston", "48"),
    ("Utah", "UT", "Salt Lake City", "Salt Lake City", "49"),
    ("Vermont", "VT", "Montpelier", "Burlington", "50"),
    ("Virginia", "VA", "Richmond", "Virginia Beach", "51"),
    ("Washington", "WA", "Olympia", "Seattle", "53"),
    ("West Virginia", "WV", "Charleston", "Charleston", "54"),
    ("Wisconsin", "WI", "Madison", "Milwaukee", "55"),
    ("Wyoming", "WY", "Cheyenne", "Cheyenne", "56"),
]

# ---------------------------------------------------------------------------
# City -> state (many-to-one, with the Portland ambiguity).
# ---------------------------------------------------------------------------
_CITIES: list[tuple[str, str]] = [
    ("New York City", "New York"),
    ("Los Angeles", "California"),
    ("Chicago", "Illinois"),
    ("Houston", "Texas"),
    ("Phoenix", "Arizona"),
    ("Philadelphia", "Pennsylvania"),
    ("San Antonio", "Texas"),
    ("San Diego", "California"),
    ("Dallas", "Texas"),
    ("San Jose", "California"),
    ("Austin", "Texas"),
    ("Jacksonville", "Florida"),
    ("Fort Worth", "Texas"),
    ("Columbus", "Ohio"),
    ("Charlotte", "North Carolina"),
    ("San Francisco", "California"),
    ("Indianapolis", "Indiana"),
    ("Seattle", "Washington"),
    ("Denver", "Colorado"),
    ("Boston", "Massachusetts"),
    ("Nashville", "Tennessee"),
    ("Detroit", "Michigan"),
    ("Oklahoma City", "Oklahoma"),
    ("Portland", "Oregon"),
    ("Las Vegas", "Nevada"),
    ("Memphis", "Tennessee"),
    ("Louisville", "Kentucky"),
    ("Baltimore", "Maryland"),
    ("Milwaukee", "Wisconsin"),
    ("Albuquerque", "New Mexico"),
    ("Tucson", "Arizona"),
    ("Fresno", "California"),
    ("Sacramento", "California"),
    ("Kansas City", "Missouri"),
    ("Atlanta", "Georgia"),
    ("Miami", "Florida"),
    ("Raleigh", "North Carolina"),
    ("Omaha", "Nebraska"),
    ("Minneapolis", "Minnesota"),
    ("New Orleans", "Louisiana"),
    ("Cleveland", "Ohio"),
    ("Tampa", "Florida"),
    ("Pittsburgh", "Pennsylvania"),
    ("Cincinnati", "Ohio"),
    ("Saint Paul", "Minnesota"),
    ("Anchorage", "Alaska"),
    ("Honolulu", "Hawaii"),
    ("Boise", "Idaho"),
    ("Salt Lake City", "Utah"),
    ("Richmond", "Virginia"),
]

# ---------------------------------------------------------------------------
# Airports: name, IATA, ICAO, city
# ---------------------------------------------------------------------------
_AIRPORTS: list[tuple[str, str, str, str]] = [
    ("Los Angeles International Airport", "LAX", "KLAX", "Los Angeles"),
    ("San Francisco International Airport", "SFO", "KSFO", "San Francisco"),
    ("John F Kennedy International Airport", "JFK", "KJFK", "New York City"),
    ("LaGuardia Airport", "LGA", "KLGA", "New York City"),
    ("O'Hare International Airport", "ORD", "KORD", "Chicago"),
    ("Hartsfield-Jackson Atlanta International Airport", "ATL", "KATL", "Atlanta"),
    ("Dallas/Fort Worth International Airport", "DFW", "KDFW", "Dallas"),
    ("Denver International Airport", "DEN", "KDEN", "Denver"),
    ("Seattle-Tacoma International Airport", "SEA", "KSEA", "Seattle"),
    ("Miami International Airport", "MIA", "KMIA", "Miami"),
    ("Boston Logan International Airport", "BOS", "KBOS", "Boston"),
    ("Phoenix Sky Harbor International Airport", "PHX", "KPHX", "Phoenix"),
    ("George Bush Intercontinental Airport", "IAH", "KIAH", "Houston"),
    ("Minneapolis-Saint Paul International Airport", "MSP", "KMSP", "Minneapolis"),
    ("Detroit Metropolitan Airport", "DTW", "KDTW", "Detroit"),
    ("Philadelphia International Airport", "PHL", "KPHL", "Philadelphia"),
    ("Charlotte Douglas International Airport", "CLT", "KCLT", "Charlotte"),
    ("Orlando International Airport", "MCO", "KMCO", "Orlando"),
    ("Las Vegas Harry Reid International Airport", "LAS", "KLAS", "Las Vegas"),
    ("Salt Lake City International Airport", "SLC", "KSLC", "Salt Lake City"),
    ("London Heathrow Airport", "LHR", "EGLL", "London"),
    ("London Gatwick Airport", "LGW", "EGKK", "London"),
    ("Paris Charles de Gaulle Airport", "CDG", "LFPG", "Paris"),
    ("Frankfurt Airport", "FRA", "EDDF", "Frankfurt"),
    ("Amsterdam Schiphol Airport", "AMS", "EHAM", "Amsterdam"),
    ("Madrid Barajas Airport", "MAD", "LEMD", "Madrid"),
    ("Rome Fiumicino Airport", "FCO", "LIRF", "Rome"),
    ("Zurich Airport", "ZRH", "LSZH", "Zurich"),
    ("Vienna International Airport", "VIE", "LOWW", "Vienna"),
    ("Tokyo Haneda Airport", "HND", "RJTT", "Tokyo"),
    ("Tokyo Narita International Airport", "NRT", "RJAA", "Tokyo"),
    ("Beijing Capital International Airport", "PEK", "ZBAA", "Beijing"),
    ("Shanghai Pudong International Airport", "PVG", "ZSPD", "Shanghai"),
    ("Singapore Changi Airport", "SIN", "WSSS", "Singapore"),
    ("Hong Kong International Airport", "HKG", "VHHH", "Hong Kong"),
    ("Incheon International Airport", "ICN", "RKSI", "Seoul"),
    ("Sydney Kingsford Smith Airport", "SYD", "YSSY", "Sydney"),
    ("Dubai International Airport", "DXB", "OMDB", "Dubai"),
    ("Toronto Pearson International Airport", "YYZ", "CYYZ", "Toronto"),
    ("Vancouver International Airport", "YVR", "CYVR", "Vancouver"),
]

_AIRPORT_SYNONYMS: dict[str, tuple[str, ...]] = {
    "Los Angeles International Airport": ("LAX Airport", "Los Angeles Intl"),
    "John F Kennedy International Airport": ("JFK Airport", "Kennedy International"),
    "O'Hare International Airport": ("Chicago O'Hare", "Chicago O'Hare International"),
    "Hartsfield-Jackson Atlanta International Airport": ("Atlanta Hartsfield", "Atlanta Intl"),
    "London Heathrow Airport": ("Heathrow", "Heathrow Airport"),
    "Paris Charles de Gaulle Airport": ("Charles de Gaulle", "Paris CDG"),
    "Tokyo Haneda Airport": ("Haneda Airport", "Tokyo International Airport"),
}

# ---------------------------------------------------------------------------
# Companies and stock tickers.
# ---------------------------------------------------------------------------
_COMPANIES: list[tuple[str, str]] = [
    ("Microsoft Corp", "MSFT"),
    ("Apple Inc", "AAPL"),
    ("Alphabet Inc", "GOOGL"),
    ("Amazon.com Inc", "AMZN"),
    ("Meta Platforms", "META"),
    ("Oracle", "ORCL"),
    ("Intel", "INTC"),
    ("General Electric", "GE"),
    ("United Parcel Service", "UPS"),
    ("Walmart", "WMT"),
    ("AT&T Inc", "T"),
    ("Verizon Communications", "VZ"),
    ("Exxon Mobil", "XOM"),
    ("Chevron", "CVX"),
    ("Johnson & Johnson", "JNJ"),
    ("Pfizer", "PFE"),
    ("Coca-Cola Company", "KO"),
    ("PepsiCo", "PEP"),
    ("Procter & Gamble", "PG"),
    ("Boeing", "BA"),
    ("Caterpillar", "CAT"),
    ("Ford Motor Company", "F"),
    ("General Motors", "GM"),
    ("Tesla Inc", "TSLA"),
    ("Netflix", "NFLX"),
    ("Nvidia", "NVDA"),
    ("Adobe Inc", "ADBE"),
    ("Salesforce", "CRM"),
    ("International Business Machines", "IBM"),
    ("Cisco Systems", "CSCO"),
    ("JPMorgan Chase", "JPM"),
    ("Bank of America", "BAC"),
    ("Goldman Sachs", "GS"),
    ("Morgan Stanley", "MS"),
    ("Wells Fargo", "WFC"),
    ("Walt Disney Company", "DIS"),
    ("Nike Inc", "NKE"),
    ("McDonald's", "MCD"),
    ("Starbucks", "SBUX"),
    ("Home Depot", "HD"),
]

_COMPANY_SYNONYMS: dict[str, tuple[str, ...]] = {
    "Microsoft Corp": ("Microsoft", "Microsoft Corporation", "MSFT Corp"),
    "Apple Inc": ("Apple", "Apple Computer"),
    "Alphabet Inc": ("Google", "Alphabet"),
    "Amazon.com Inc": ("Amazon", "Amazon.com"),
    "Meta Platforms": ("Facebook", "Meta"),
    "International Business Machines": ("IBM Corp", "IBM Corporation"),
    "General Electric": ("GE Company",),
    "United Parcel Service": ("UPS Inc", "United Parcel Services"),
    "Walt Disney Company": ("Disney", "The Walt Disney Company"),
    "Ford Motor Company": ("Ford",),
}

# ---------------------------------------------------------------------------
# Chemical elements: name, symbol, atomic number.
# ---------------------------------------------------------------------------
_ELEMENTS: list[tuple[str, str, str]] = [
    ("Hydrogen", "H", "1"), ("Helium", "He", "2"), ("Lithium", "Li", "3"),
    ("Beryllium", "Be", "4"), ("Boron", "B", "5"), ("Carbon", "C", "6"),
    ("Nitrogen", "N", "7"), ("Oxygen", "O", "8"), ("Fluorine", "F", "9"),
    ("Neon", "Ne", "10"), ("Sodium", "Na", "11"), ("Magnesium", "Mg", "12"),
    ("Aluminium", "Al", "13"), ("Silicon", "Si", "14"), ("Phosphorus", "P", "15"),
    ("Sulfur", "S", "16"), ("Chlorine", "Cl", "17"), ("Argon", "Ar", "18"),
    ("Potassium", "K", "19"), ("Calcium", "Ca", "20"), ("Scandium", "Sc", "21"),
    ("Titanium", "Ti", "22"), ("Vanadium", "V", "23"), ("Chromium", "Cr", "24"),
    ("Manganese", "Mn", "25"), ("Iron", "Fe", "26"), ("Cobalt", "Co", "27"),
    ("Nickel", "Ni", "28"), ("Copper", "Cu", "29"), ("Zinc", "Zn", "30"),
    ("Gallium", "Ga", "31"), ("Germanium", "Ge", "32"), ("Arsenic", "As", "33"),
    ("Selenium", "Se", "34"), ("Bromine", "Br", "35"), ("Krypton", "Kr", "36"),
    ("Silver", "Ag", "47"), ("Tin", "Sn", "50"), ("Tellurium", "Te", "52"),
    ("Iodine", "I", "53"), ("Gold", "Au", "79"), ("Mercury", "Hg", "80"),
    ("Lead", "Pb", "82"), ("Uranium", "U", "92"),
]

_ELEMENT_SYNONYMS: dict[str, tuple[str, ...]] = {
    "Aluminium": ("Aluminum",),
    "Sulfur": ("Sulphur",),
}

# ---------------------------------------------------------------------------
# Currencies: name, ISO 4217 alphabetic code, numeric code.
# ---------------------------------------------------------------------------
_CURRENCIES: list[tuple[str, str, str]] = [
    ("US Dollar", "USD", "840"), ("Euro", "EUR", "978"), ("Japanese Yen", "JPY", "392"),
    ("British Pound", "GBP", "826"), ("Swiss Franc", "CHF", "756"),
    ("Canadian Dollar", "CAD", "124"), ("Australian Dollar", "AUD", "036"),
    ("Chinese Yuan", "CNY", "156"), ("Indian Rupee", "INR", "356"),
    ("Brazilian Real", "BRL", "986"), ("Mexican Peso", "MXN", "484"),
    ("South Korean Won", "KRW", "410"), ("Russian Ruble", "RUB", "643"),
    ("Turkish Lira", "TRY", "949"), ("South African Rand", "ZAR", "710"),
    ("Swedish Krona", "SEK", "752"), ("Norwegian Krone", "NOK", "578"),
    ("Danish Krone", "DKK", "208"), ("Polish Zloty", "PLN", "985"),
    ("Singapore Dollar", "SGD", "702"), ("Hong Kong Dollar", "HKD", "344"),
    ("New Zealand Dollar", "NZD", "554"), ("Thai Baht", "THB", "764"),
    ("Indonesian Rupiah", "IDR", "360"), ("Israeli Shekel", "ILS", "376"),
]

# ---------------------------------------------------------------------------
# Car models -> makes (many-to-one).
# ---------------------------------------------------------------------------
_CAR_MODELS: list[tuple[str, str]] = [
    ("F-150", "Ford"), ("Mustang", "Ford"), ("Explorer", "Ford"), ("Escape", "Ford"),
    ("Accord", "Honda"), ("Civic", "Honda"), ("CR-V", "Honda"), ("Pilot", "Honda"),
    ("Camry", "Toyota"), ("Corolla", "Toyota"), ("RAV4", "Toyota"), ("Highlander", "Toyota"),
    ("Charger", "Dodge"), ("Challenger", "Dodge"), ("Durango", "Dodge"),
    ("Silverado", "Chevrolet"), ("Malibu", "Chevrolet"), ("Equinox", "Chevrolet"),
    ("Altima", "Nissan"), ("Sentra", "Nissan"), ("Rogue", "Nissan"),
    ("Model 3", "Tesla"), ("Model S", "Tesla"), ("Model Y", "Tesla"),
    ("Wrangler", "Jeep"), ("Grand Cherokee", "Jeep"),
    ("3 Series", "BMW"), ("5 Series", "BMW"), ("X5", "BMW"),
    ("C-Class", "Mercedes-Benz"), ("E-Class", "Mercedes-Benz"),
    ("A4", "Audi"), ("Q5", "Audi"),
    ("Outback", "Subaru"), ("Forester", "Subaru"),
    ("Elantra", "Hyundai"), ("Sonata", "Hyundai"), ("Tucson", "Hyundai"),
    ("Sportage", "Kia"), ("Sorento", "Kia"),
]

# ---------------------------------------------------------------------------
# Greek alphabet, months, Beaufort scale, ASCII control codes.
# ---------------------------------------------------------------------------
_GREEK_LETTERS: list[tuple[str, str]] = [
    ("Alpha", "α"), ("Beta", "β"), ("Gamma", "γ"), ("Delta", "δ"), ("Epsilon", "ε"),
    ("Zeta", "ζ"), ("Eta", "η"), ("Theta", "θ"), ("Iota", "ι"), ("Kappa", "κ"),
    ("Lambda", "λ"), ("Mu", "μ"), ("Nu", "ν"), ("Xi", "ξ"), ("Omicron", "ο"),
    ("Pi", "π"), ("Rho", "ρ"), ("Sigma", "σ"), ("Tau", "τ"), ("Upsilon", "υ"),
    ("Phi", "φ"), ("Chi", "χ"), ("Psi", "ψ"), ("Omega", "ω"),
]

_MONTHS: list[tuple[str, str]] = [
    ("January", "01"), ("February", "02"), ("March", "03"), ("April", "04"),
    ("May", "05"), ("June", "06"), ("July", "07"), ("August", "08"),
    ("September", "09"), ("October", "10"), ("November", "11"), ("December", "12"),
]

_MONTH_ABBREVS: list[tuple[str, str]] = [
    ("January", "Jan"), ("February", "Feb"), ("March", "Mar"), ("April", "Apr"),
    ("May", "May"), ("June", "Jun"), ("July", "Jul"), ("August", "Aug"),
    ("September", "Sep"), ("October", "Oct"), ("November", "Nov"), ("December", "Dec"),
]

_BEAUFORT: list[tuple[str, str]] = [
    ("calm", "0"), ("light air", "1"), ("light breeze", "2"), ("gentle breeze", "3"),
    ("moderate breeze", "4"), ("fresh breeze", "5"), ("strong breeze", "6"),
    ("near gale", "7"), ("gale", "8"), ("strong gale", "9"), ("storm", "10"),
    ("violent storm", "11"), ("hurricane", "12"),
]

_ASCII_CODES: list[tuple[str, str]] = [
    ("NUL", "0"), ("SOH", "1"), ("STX", "2"), ("ETX", "3"), ("EOT", "4"),
    ("ENQ", "5"), ("ACK", "6"), ("BEL", "7"), ("BS", "8"), ("TAB", "9"),
    ("LF", "10"), ("VT", "11"), ("FF", "12"), ("CR", "13"), ("SO", "14"),
    ("SI", "15"), ("DLE", "16"), ("ESC", "27"), ("SP", "32"), ("DEL", "127"),
]

_AMINO_ACIDS: list[tuple[str, str]] = [
    ("Alanine", "Ala"), ("Arginine", "Arg"), ("Asparagine", "Asn"), ("Aspartate", "Asp"),
    ("Cysteine", "Cys"), ("Glutamine", "Gln"), ("Glutamate", "Glu"), ("Glycine", "Gly"),
    ("Histidine", "His"), ("Isoleucine", "Ile"), ("Leucine", "Leu"), ("Lysine", "Lys"),
    ("Methionine", "Met"), ("Phenylalanine", "Phe"), ("Proline", "Pro"), ("Serine", "Ser"),
    ("Threonine", "Thr"), ("Tryptophan", "Trp"), ("Tyrosine", "Tyr"), ("Valine", "Val"),
]

# ---------------------------------------------------------------------------
# Enterprise-flavoured relations (paper §5.5, Figure 11).
# ---------------------------------------------------------------------------
_PRODUCT_FAMILIES: list[tuple[str, str]] = [
    ("Access", "ACCES"), ("Consumer Productivity", "CORPO"), ("Cloud Services", "CLOUD"),
    ("Developer Tools", "DEVTO"), ("Gaming", "GAMIN"), ("Hardware", "HARDW"),
    ("Search Advertising", "SRCHA"), ("Enterprise Mobility", "ENTMO"),
    ("Business Applications", "BUSAP"), ("Data Platform", "DATAP"),
    ("Security Services", "SECUR"), ("Modern Workplace", "MODWK"),
    ("AI Platform", "AIPLT"), ("Edge Computing", "EDGEC"), ("Quantum Research", "QUANT"),
]

_PROFIT_CENTERS: list[tuple[str, str]] = [
    ("P10018", "EQ-RU - Partner Support"), ("P10021", "EQ-NA - PFE CPM"),
    ("P10034", "EQ-EU - Field Engineering"), ("P10042", "EQ-AP - Cloud Sales"),
    ("P10055", "EQ-LA - Consulting"), ("P10063", "EQ-NA - Premier Support"),
    ("P10071", "EQ-EU - Data Centers"), ("P10088", "EQ-AP - Research"),
    ("P10092", "EQ-NA - Marketing Ops"), ("P10105", "EQ-GL - Supply Chain"),
    ("P10113", "EQ-GL - Legal Affairs"), ("P10127", "EQ-NA - Developer Relations"),
]

_DATA_CENTERS: list[tuple[str, str]] = [
    ("Singapore IDC", "APAC"), ("Dublin IDC3", "EMEA"), ("Amsterdam IDC1", "EMEA"),
    ("Quincy DC2", "AMER"), ("San Antonio DC1", "AMER"), ("Chicago DC4", "AMER"),
    ("Hong Kong IDC", "APAC"), ("Sydney IDC2", "APAC"), ("Tokyo IDC1", "APAC"),
    ("London IDC2", "EMEA"), ("Frankfurt IDC1", "EMEA"), ("Sao Paulo DC1", "AMER"),
    ("Pune IDC1", "APAC"), ("Johannesburg IDC1", "EMEA"), ("Toronto DC1", "AMER"),
]

_INDUSTRY_VERTICALS: list[tuple[str, str]] = [
    ("Accommodation", "Hospitality"), ("Accounting", "Professional Services"),
    ("Aerospace", "Manufacturing"), ("Agriculture", "Primary Industries"),
    ("Automotive", "Manufacturing"), ("Banking", "Financial Services"),
    ("Construction", "Engineering"), ("Education", "Public Sector"),
    ("Healthcare", "Health"), ("Insurance", "Financial Services"),
    ("Logistics", "Transportation"), ("Media", "Entertainment"),
    ("Mining", "Primary Industries"), ("Pharmaceuticals", "Health"),
    ("Retail", "Consumer"), ("Telecommunications", "Technology"),
    ("Utilities", "Energy"), ("Software", "Technology"),
]

_COST_CENTERS: list[tuple[str, str]] = [
    ("CC-1001", "Corporate Finance"), ("CC-1002", "Human Resources"),
    ("CC-1003", "Information Technology"), ("CC-1010", "Facilities Management"),
    ("CC-1015", "Research and Development"), ("CC-1020", "Field Sales North"),
    ("CC-1021", "Field Sales South"), ("CC-1030", "Customer Support Tier 1"),
    ("CC-1031", "Customer Support Tier 2"), ("CC-1040", "Cloud Operations"),
    ("CC-1045", "Security Operations"), ("CC-1050", "Executive Office"),
]

_EMPLOYEE_ALIASES: list[tuple[str, str]] = [
    ("Bren, Steven", "stevenb"), ("Morris, Peggy", "peggym"), ("Raynal, David", "davidra"),
    ("Crispin, Neal", "nealc"), ("Wells, William", "willw"), ("Chen, Amy", "amychen"),
    ("Gupta, Ravi", "ravig"), ("Olsen, Marta", "martao"), ("Kim, Daniel", "danielk"),
    ("Ivanova, Elena", "elenai"), ("Tanaka, Hiro", "hirot"), ("Nguyen, Linh", "linhn"),
    ("Schmidt, Lukas", "lukass"), ("Rossi, Giulia", "giuliar"), ("Patel, Nikhil", "nikhilp"),
]

_ATU_COUNTRIES: list[tuple[str, str]] = [
    ("Australia.01.EPG", "Australia"), ("Australia.02.Commercial", "Australia"),
    ("Canada.01.Public Sector", "Canada"), ("Canada.02.SMB", "Canada"),
    ("Germany.01.Enterprise", "Germany"), ("Germany.02.Partner", "Germany"),
    ("Japan.01.Enterprise", "Japan"), ("Japan.02.SMC", "Japan"),
    ("France.01.Enterprise", "France"), ("Brazil.01.Commercial", "Brazil"),
    ("India.01.Enterprise", "India"), ("India.02.SMC", "India"),
    ("UK.01.Enterprise", "United Kingdom"), ("UK.02.Public Sector", "United Kingdom"),
]


def _pairs(rows: list[tuple[str, ...]], left: int, right: int) -> tuple[tuple[str, str], ...]:
    """Project two columns of a row list into a pair tuple, dropping duplicates."""
    seen: set[tuple[str, str]] = set()
    result: list[tuple[str, str]] = []
    for row in rows:
        pair = (row[left], row[right])
        if pair not in seen:
            seen.add(pair)
            result.append(pair)
    return tuple(result)


_WEB_DOMAINS = (
    "en.wikipedia.org", "worlddata.info", "statisticstimes.com", "nationsonline.org",
    "geonames.org", "infoplease.com", "factmonster.com", "britannica.com",
    "kaggle-datasets.com", "opendatasoft.com", "data-world.net", "listchallenges.com",
    "sportingnews.com", "referencetables.net", "tradingeconomics.com", "markets.ft.com",
)

_ENTERPRISE_SHARES = (
    "finance-share", "hr-share", "sales-ops", "cloud-ops", "marketing-share",
    "support-share", "facilities", "it-reporting",
)


def _build_seed_relations() -> dict[str, SeedRelation]:
    """Construct every seed relation."""
    country_syn = _COUNTRY_SYNONYMS
    relations: list[SeedRelation] = [
        # --- Geocoding-style relations (paper Figure 6 analogues) -----------------
        SeedRelation(
            name="country_iso3",
            left_attr="country",
            right_attr="iso3_code",
            pairs=_pairs(_COUNTRIES, 0, 1),
            left_synonyms=country_syn,
            header_variants=(("Country", "Code"), ("Country Name", "ISO3"), ("name", "code")),
            category="geocoding",
            popularity=3.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_iso2",
            left_attr="country",
            right_attr="iso2_code",
            pairs=_pairs(_COUNTRIES, 0, 2),
            left_synonyms=country_syn,
            header_variants=(("Country", "Code"), ("Country", "Alpha-2"), ("name", "code")),
            category="geocoding",
            popularity=2.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_ioc",
            left_attr="country",
            right_attr="ioc_code",
            pairs=_pairs(_COUNTRIES, 0, 3),
            left_synonyms=country_syn,
            header_variants=(("Country", "IOC"), ("Country", "Code"), ("NOC", "Code")),
            category="geocoding",
            popularity=2.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_fifa",
            left_attr="country",
            right_attr="fifa_code",
            pairs=_pairs(_COUNTRIES, 0, 4),
            left_synonyms=country_syn,
            header_variants=(("Country", "FIFA"), ("Country", "Code"), ("Team", "Code")),
            category="geocoding",
            popularity=1.8,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_capital",
            left_attr="country",
            right_attr="capital",
            pairs=_pairs(_COUNTRIES, 0, 5),
            left_synonyms=country_syn,
            header_variants=(("Country", "Capital"), ("name", "capital")),
            category="querylog",
            popularity=2.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_currency",
            left_attr="country",
            right_attr="currency_code",
            pairs=_pairs(_COUNTRIES, 0, 6),
            left_synonyms=country_syn,
            header_variants=(("Country", "Currency"), ("name", "code")),
            category="geocoding",
            one_to_one=False,
            popularity=1.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="country_calling_code",
            left_attr="country",
            right_attr="calling_code",
            pairs=_pairs(_COUNTRIES, 0, 7),
            left_synonyms=country_syn,
            header_variants=(("Country", "Calling Code"), ("Country", "Dial Code")),
            category="geocoding",
            one_to_one=False,
            popularity=1.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="iso3_iso2",
            left_attr="iso3_code",
            right_attr="iso2_code",
            pairs=_pairs(_COUNTRIES, 1, 2),
            header_variants=(("Alpha-3", "Alpha-2"), ("ISO3", "ISO2"), ("code", "code2")),
            category="geocoding",
            popularity=1.2,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="state_abbrev",
            left_attr="us_state",
            right_attr="abbreviation",
            pairs=_pairs(_US_STATES, 0, 1),
            header_variants=(("State", "Abbrev."), ("State", "Code"), ("name", "code")),
            category="geocoding",
            popularity=3.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="state_capital",
            left_attr="us_state",
            right_attr="capital",
            pairs=_pairs(_US_STATES, 0, 2),
            header_variants=(("State", "Capital"), ("name", "capital")),
            category="querylog",
            popularity=2.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="state_largest_city",
            left_attr="us_state",
            right_attr="largest_city",
            pairs=_pairs(_US_STATES, 0, 3),
            header_variants=(("State", "Largest City"), ("State", "City"), ("name", "city")),
            category="querylog",
            one_to_one=False,
            popularity=1.2,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="state_fips",
            left_attr="us_state",
            right_attr="fips_code",
            pairs=_pairs(_US_STATES, 0, 4),
            header_variants=(("State", "FIPS"), ("name", "code")),
            category="geocoding",
            popularity=1.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="city_state",
            left_attr="us_city",
            right_attr="us_state",
            pairs=_pairs(_CITIES, 0, 1),
            header_variants=(("City", "State"), ("city", "state")),
            category="querylog",
            one_to_one=False,
            popularity=2.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="airport_iata",
            left_attr="airport_name",
            right_attr="iata_code",
            pairs=_pairs(_AIRPORTS, 0, 1),
            left_synonyms=_AIRPORT_SYNONYMS,
            header_variants=(("Airport Name", "IATA"), ("Airport", "Code"), ("name", "code")),
            category="geocoding",
            popularity=2.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="airport_icao",
            left_attr="airport_name",
            right_attr="icao_code",
            pairs=_pairs(_AIRPORTS, 0, 2),
            left_synonyms=_AIRPORT_SYNONYMS,
            header_variants=(("Airport Name", "ICAO"), ("Airport", "Code"), ("name", "code")),
            category="geocoding",
            popularity=1.2,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="iata_icao",
            left_attr="iata_code",
            right_attr="icao_code",
            pairs=_pairs(_AIRPORTS, 1, 2),
            header_variants=(("IATA", "ICAO"), ("code", "code")),
            category="geocoding",
            popularity=0.8,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="airport_city",
            left_attr="airport_name",
            right_attr="city",
            pairs=_pairs(_AIRPORTS, 0, 3),
            left_synonyms=_AIRPORT_SYNONYMS,
            header_variants=(("Airport", "City"), ("name", "city")),
            category="querylog",
            one_to_one=False,
            popularity=1.0,
            domain_pool=_WEB_DOMAINS,
        ),
        # --- Query-log-style relations --------------------------------------------
        SeedRelation(
            name="company_ticker",
            left_attr="company",
            right_attr="stock_ticker",
            pairs=tuple(_COMPANIES),
            left_synonyms=_COMPANY_SYNONYMS,
            header_variants=(("Company", "Ticker"), ("Company", "Symbol"), ("name", "symbol")),
            category="querylog",
            popularity=2.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="element_symbol",
            left_attr="chemical_element",
            right_attr="symbol",
            pairs=_pairs(_ELEMENTS, 0, 1),
            left_synonyms=_ELEMENT_SYNONYMS,
            header_variants=(("Element", "Symbol"), ("name", "symbol"), ("name", "code")),
            category="querylog",
            popularity=2.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="element_atomic_number",
            left_attr="chemical_element",
            right_attr="atomic_number",
            pairs=_pairs(_ELEMENTS, 0, 2),
            left_synonyms=_ELEMENT_SYNONYMS,
            header_variants=(("Element", "Atomic Number"), ("name", "number")),
            category="querylog",
            popularity=1.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="currency_code",
            left_attr="currency",
            right_attr="iso4217_code",
            pairs=_pairs(_CURRENCIES, 0, 1),
            header_variants=(("Currency", "Code"), ("name", "code")),
            category="geocoding",
            popularity=1.8,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="currency_code_numeric",
            left_attr="iso4217_code",
            right_attr="iso4217_numeric",
            pairs=_pairs(_CURRENCIES, 1, 2),
            header_variants=(("Code", "Num"), ("code", "number")),
            category="geocoding",
            popularity=0.8,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="car_model_make",
            left_attr="car_model",
            right_attr="car_make",
            pairs=tuple(_CAR_MODELS),
            header_variants=(("Model", "Make"), ("model", "make")),
            category="querylog",
            one_to_one=False,
            popularity=2.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="greek_letter_symbol",
            left_attr="greek_letter",
            right_attr="symbol",
            pairs=tuple(_GREEK_LETTERS),
            header_variants=(("Letter", "Symbol"), ("name", "symbol")),
            category="querylog",
            popularity=1.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="month_number",
            left_attr="month",
            right_attr="month_number",
            pairs=tuple(_MONTHS),
            header_variants=(("Month", "Number"), ("month", "num")),
            category="querylog",
            popularity=1.5,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="month_abbrev",
            left_attr="month",
            right_attr="month_abbrev",
            pairs=tuple(_MONTH_ABBREVS),
            header_variants=(("Month", "Abbrev"), ("month", "abbr")),
            category="querylog",
            popularity=1.2,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="wind_beaufort",
            left_attr="wind",
            right_attr="beaufort_scale",
            pairs=tuple(_BEAUFORT),
            header_variants=(("Wind", "Beaufort"), ("description", "force")),
            category="querylog",
            popularity=0.8,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="ascii_code",
            left_attr="ascii_abbrev",
            right_attr="code",
            pairs=tuple(_ASCII_CODES),
            header_variants=(("ASCII", "Code"), ("abbr", "code"), ("name", "code")),
            category="querylog",
            popularity=1.0,
            domain_pool=_WEB_DOMAINS,
        ),
        SeedRelation(
            name="amino_acid_symbol",
            left_attr="amino_acid",
            right_attr="three_letter_code",
            pairs=tuple(_AMINO_ACIDS),
            header_variants=(("Amino Acid", "Symbol"), ("name", "code")),
            category="querylog",
            popularity=1.0,
            domain_pool=_WEB_DOMAINS,
        ),
        # --- Enterprise relations (paper §5.5, Figure 11) ---------------------------
        SeedRelation(
            name="product_family_code",
            left_attr="product_family",
            right_attr="code",
            pairs=tuple(_PRODUCT_FAMILIES),
            header_variants=(("Product Family", "Code"), ("name", "code")),
            category="enterprise",
            popularity=2.0,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="profit_center_code",
            left_attr="profit_center_code",
            right_attr="profit_center",
            pairs=tuple(_PROFIT_CENTERS),
            header_variants=(("Profit Center", "Description"), ("code", "name")),
            category="enterprise",
            popularity=2.0,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="data_center_region",
            left_attr="data_center",
            right_attr="region",
            pairs=tuple(_DATA_CENTERS),
            header_variants=(("Data Center", "Region"), ("DC", "Region")),
            category="enterprise",
            one_to_one=False,
            popularity=1.5,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="industry_vertical",
            left_attr="industry",
            right_attr="vertical",
            pairs=tuple(_INDUSTRY_VERTICALS),
            header_variants=(("Industry", "Vertical"), ("industry", "segment")),
            category="enterprise",
            one_to_one=False,
            popularity=1.5,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="cost_center_name",
            left_attr="cost_center_code",
            right_attr="cost_center_name",
            pairs=tuple(_COST_CENTERS),
            header_variants=(("Cost Center", "Name"), ("code", "name")),
            category="enterprise",
            popularity=1.8,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="employee_alias",
            left_attr="employee",
            right_attr="login_alias",
            pairs=tuple(_EMPLOYEE_ALIASES),
            header_variants=(("Employee", "Alias"), ("name", "alias")),
            category="enterprise",
            popularity=1.5,
            domain_pool=_ENTERPRISE_SHARES,
        ),
        SeedRelation(
            name="atu_country",
            left_attr="atu",
            right_attr="country",
            pairs=tuple(_ATU_COUNTRIES),
            header_variants=(("ATU", "Country"), ("atu", "country")),
            category="enterprise",
            one_to_one=False,
            popularity=1.2,
            domain_pool=_ENTERPRISE_SHARES,
        ),
    ]
    by_name = {relation.name: relation for relation in relations}
    if len(by_name) != len(relations):
        raise AssertionError("duplicate seed relation names")
    return by_name


_SEED_RELATIONS: dict[str, SeedRelation] = _build_seed_relations()


def all_seed_relations(category: str | None = None) -> list[SeedRelation]:
    """Return all seed relations, optionally restricted to one category."""
    relations = list(_SEED_RELATIONS.values())
    if category is not None:
        relations = [relation for relation in relations if relation.category == category]
    return relations


def seed_relation_names(category: str | None = None) -> list[str]:
    """Return the names of all seed relations, optionally restricted by category."""
    return [relation.name for relation in all_seed_relations(category)]


def get_seed_relation(name: str) -> SeedRelation:
    """Return a seed relation by name.

    Raises
    ------
    KeyError
        If there is no seed relation with that name.
    """
    try:
        return _SEED_RELATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown seed relation {name!r}; available: {sorted(_SEED_RELATIONS)}"
        )
