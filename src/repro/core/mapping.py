"""Synthesized mapping relationships — the pipeline's output model.

A :class:`MappingRelationship` is the union of all value pairs from a partition of
compatible binary tables, after conflict resolution.  It carries the provenance
statistics (contributing tables, distinct source domains) that the paper uses to
rank mappings by popularity for human curation (§4.3).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable, ValuePair

__all__ = ["MappingRelationship", "mapping_rank_key"]


def mapping_rank_key(mapping: "MappingRelationship") -> tuple[int, int, int, str]:
    """Ascending sort key ranking mappings most-popular-first, deterministically.

    Orders by popularity (distinct domains), then contributing tables, then
    size, with ascending ``mapping_id`` as the final tiebreak so the ranking is
    a *total* order.  Every ranking surface (``PipelineResult.top_mappings``,
    ``SynthesisResult.top_by_popularity``, curation's ``popularity_rank``, and
    the serving layer's pool order) must sort by this one key — serving answers
    are only reproducible across runs and artifact reloads while they agree.
    """
    return (
        -mapping.popularity,
        -mapping.num_source_tables,
        -len(mapping),
        mapping.mapping_id,
    )


@dataclass
class MappingRelationship:
    """A synthesized mapping relationship ``X -> Y``.

    Attributes
    ----------
    mapping_id:
        Stable identifier for the relationship.
    pairs:
        The distinct ``(left, right)`` value pairs of the mapping.
    source_tables:
        Identifiers of the binary tables that contributed pairs.
    domains:
        Distinct source domains contributing to the mapping (popularity signal).
    column_names:
        Most common (left, right) column-header pair among contributing tables,
        used only for display — never for synthesis decisions.
    """

    mapping_id: str
    pairs: list[ValuePair]
    source_tables: list[str] = field(default_factory=list)
    domains: set[str] = field(default_factory=set)
    column_names: tuple[str, str] = ("", "")
    metadata: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        seen: set[tuple[str, str]] = set()
        unique: list[ValuePair] = []
        for pair in self.pairs:
            if not isinstance(pair, ValuePair):
                pair = ValuePair(*pair)
            key = pair.as_tuple()
            if key not in seen:
                seen.add(key)
                unique.append(pair)
        self.pairs = unique
        self.domains = set(self.domains)

    # -- Container protocol ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[ValuePair]:
        return iter(self.pairs)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, tuple):
            pair = ValuePair(*pair)
        return pair in set(self.pairs)

    # -- Views --------------------------------------------------------------------------
    def pair_set(self) -> set[tuple[str, str]]:
        """Return the mapping's pairs as a set of tuples."""
        return {pair.as_tuple() for pair in self.pairs}

    def as_dict(self) -> dict[str, str]:
        """Return a ``left -> right`` lookup dict (first pair wins on conflicts)."""
        result: dict[str, str] = {}
        for pair in self.pairs:
            result.setdefault(pair.left, pair.right)
        return result

    def left_values(self) -> set[str]:
        """Set of distinct left values."""
        return {pair.left for pair in self.pairs}

    def right_values(self) -> set[str]:
        """Set of distinct right values."""
        return {pair.right for pair in self.pairs}

    # -- Statistics -----------------------------------------------------------------------
    @property
    def popularity(self) -> int:
        """Number of distinct source domains (the paper's curation signal)."""
        return len(self.domains)

    @property
    def num_source_tables(self) -> int:
        """Number of contributing binary tables."""
        return len(self.source_tables)

    def conflict_count(self) -> int:
        """Number of left values that still map to more than one right value."""
        rights_by_left: dict[str, set[str]] = {}
        for pair in self.pairs:
            rights_by_left.setdefault(pair.left, set()).add(pair.right)
        return sum(1 for rights in rights_by_left.values() if len(rights) > 1)

    def is_functional(self) -> bool:
        """Return ``True`` if no left value maps to two different right values."""
        return self.conflict_count() == 0

    def fd_ratio(self) -> float:
        """Fraction of pairs consistent with a single right value per left value."""
        if not self.pairs:
            return 1.0
        by_left: dict[str, Counter[str]] = {}
        for pair in self.pairs:
            by_left.setdefault(pair.left, Counter())[pair.right] += 1
        kept = sum(counter.most_common(1)[0][1] for counter in by_left.values())
        return kept / len(self.pairs)

    # -- Constructors ------------------------------------------------------------------------
    @classmethod
    def from_tables(
        cls, mapping_id: str, tables: Iterable[BinaryTable]
    ) -> "MappingRelationship":
        """Union a collection of binary tables into a mapping relationship."""
        tables = list(tables)
        pairs: list[ValuePair] = []
        source_tables: list[str] = []
        domains: set[str] = set()
        header_votes: Counter[tuple[str, str]] = Counter()
        for table in tables:
            pairs.extend(table.pairs)
            source_tables.append(table.table_id)
            if table.domain:
                domains.add(table.domain)
            if table.left_name or table.right_name:
                header_votes[(table.left_name, table.right_name)] += 1
        column_names = header_votes.most_common(1)[0][0] if header_votes else ("", "")
        return cls(
            mapping_id=mapping_id,
            pairs=pairs,
            source_tables=source_tables,
            domains=domains,
            column_names=column_names,
        )

    def to_binary_table(self) -> BinaryTable:
        """Materialize the mapping as a single binary table."""
        return BinaryTable(
            table_id=self.mapping_id,
            pairs=list(self.pairs),
            left_name=self.column_names[0],
            right_name=self.column_names[1],
            source_table_id=self.mapping_id,
            domain="synthesized",
        )
