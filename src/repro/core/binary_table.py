"""Binary (two-column) candidate tables — the unit of synthesis.

A :class:`BinaryTable` is an ordered pair of columns extracted from a source table,
stored as a set of ``(left, right)`` value pairs together with provenance (source
table identifier and web/file domain).  These are the vertices of the synthesis
graph in §4 of the paper.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = ["ValuePair", "BinaryTable"]


@dataclass(frozen=True, order=True)
class ValuePair:
    """A single ``(left, right)`` row of a binary table."""

    left: str
    right: str

    def reversed(self) -> "ValuePair":
        """Return the pair with left and right swapped."""
        return ValuePair(self.right, self.left)

    def as_tuple(self) -> tuple[str, str]:
        """Return the pair as a plain tuple."""
        return (self.left, self.right)


@dataclass
class BinaryTable:
    """A candidate two-column table.

    Attributes
    ----------
    table_id:
        Unique identifier, typically ``"<source table id>#<left col>-><right col>"``.
    pairs:
        The distinct ``(left, right)`` value pairs of this table.
    left_name / right_name:
        Column headers from the source table (often undescriptive, e.g. ``name``).
    source_table_id:
        Identifier of the table this candidate was extracted from.
    domain:
        Web domain or file share the source table came from; used for popularity
        statistics during curation (§4.3) and by the UnionDomain baseline.
    """

    table_id: str
    pairs: list[ValuePair]
    left_name: str = ""
    right_name: str = ""
    source_table_id: str = ""
    domain: str = ""
    metadata: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Deduplicate pairs while preserving order.
        seen: set[tuple[str, str]] = set()
        unique: list[ValuePair] = []
        for pair in self.pairs:
            if not isinstance(pair, ValuePair):
                pair = ValuePair(*pair)
            key = pair.as_tuple()
            if key not in seen:
                seen.add(key)
                unique.append(pair)
        self.pairs = unique

    # -- Basic container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self) -> Iterator[ValuePair]:
        return iter(self.pairs)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, tuple):
            pair = ValuePair(*pair)
        return pair in self.pairs

    def __hash__(self) -> int:
        return hash(self.table_id)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BinaryTable):
            return NotImplemented
        return self.table_id == other.table_id

    # -- Views ------------------------------------------------------------------------
    @property
    def left_values(self) -> list[str]:
        """All left-hand-side values (with duplicates removed, order preserved)."""
        return list(dict.fromkeys(pair.left for pair in self.pairs))

    @property
    def right_values(self) -> list[str]:
        """All right-hand-side values (with duplicates removed, order preserved)."""
        return list(dict.fromkeys(pair.right for pair in self.pairs))

    def pair_set(self) -> set[tuple[str, str]]:
        """Return the pairs as a set of tuples."""
        return {pair.as_tuple() for pair in self.pairs}

    def mapping_dict(self) -> dict[str, str]:
        """Return a ``left -> right`` dict (last pair wins for duplicate lefts)."""
        return {pair.left: pair.right for pair in self.pairs}

    # -- Functional-dependency support ------------------------------------------------
    def fd_ratio(self) -> float:
        """Fraction of rows consistent with the best right value for each left value.

        This is the instance-level degree to which ``left -> right`` holds: for each
        left value keep the most frequent right value; the ratio is the number of
        kept rows divided by the total number of rows (paper Definition 2).
        """
        if not self.pairs:
            return 1.0
        by_left: dict[str, Counter[str]] = {}
        for pair in self.pairs:
            by_left.setdefault(pair.left, Counter())[pair.right] += 1
        kept = sum(counter.most_common(1)[0][1] for counter in by_left.values())
        return kept / len(self.pairs)

    def is_functional(self, theta: float = 0.95) -> bool:
        """Return ``True`` if this table is a θ-approximate mapping (Definition 2)."""
        return self.fd_ratio() >= theta

    def reversed(self) -> "BinaryTable":
        """Return a new binary table with the column order flipped."""
        return BinaryTable(
            table_id=f"{self.table_id}::reversed",
            pairs=[pair.reversed() for pair in self.pairs],
            left_name=self.right_name,
            right_name=self.left_name,
            source_table_id=self.source_table_id,
            domain=self.domain,
            metadata=dict(self.metadata),
        )

    # -- Constructors -----------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        table_id: str,
        rows: Iterable[tuple[str, str]],
        **kwargs: str | dict,
    ) -> "BinaryTable":
        """Build a binary table from an iterable of ``(left, right)`` tuples."""
        pairs = [ValuePair(left, right) for left, right in rows]
        return cls(table_id=table_id, pairs=pairs, **kwargs)
