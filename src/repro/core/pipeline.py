"""The end-to-end synthesis pipeline (paper Figure 1).

``SynthesisPipeline`` chains the three steps of the paper's solution:

1. **Candidate extraction** — PMI coherence filter + approximate-FD filter (§3).
2. **Table synthesis** — compatibility graph + greedy partitioning (§4.1–4.2).
3. **Conflict resolution** (and optional table expansion / curation) (§4.2–4.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus

__all__ = ["PipelineResult", "SynthesisPipeline"]


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    mappings: list[MappingRelationship]
    curated: list[MappingRelationship]
    candidates: list[BinaryTable]
    extraction_stats: dict[str, float]
    timings: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.mappings)

    def top_mappings(self, count: int = 10) -> list[MappingRelationship]:
        """The most popular curated mappings (falls back to all mappings)."""
        pool = self.curated if self.curated else self.mappings
        ranked = sorted(
            pool,
            key=lambda mapping: (mapping.popularity, mapping.num_source_tables, len(mapping)),
            reverse=True,
        )
        return ranked[:count]


class SynthesisPipeline:
    """Runs candidate extraction, synthesis, and post-processing over a corpus."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms=None,
        trusted_sources: list[BinaryTable] | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.synonyms = synonyms
        self.trusted_sources = trusted_sources or []

    def run(self, corpus: TableCorpus) -> PipelineResult:
        """Execute the full pipeline on ``corpus``."""
        # Imports are local to keep `repro.core` import-light (the pipeline pulls in
        # every other subpackage).
        from repro.extraction.candidates import CandidateExtractor
        from repro.synthesis.curation import curate_mappings
        from repro.synthesis.expansion import TableExpander
        from repro.synthesis.synthesizer import TableSynthesizer

        timings: dict[str, float] = {}

        start = time.perf_counter()
        extractor = CandidateExtractor(self.config)
        candidates, stats = extractor.extract(corpus)
        timings["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        synthesizer = TableSynthesizer(self.config, self.synonyms)
        synthesis = synthesizer.synthesize(candidates)
        timings["synthesis"] = time.perf_counter() - start

        mappings = synthesis.mappings
        if self.config.expand_tables and self.trusted_sources:
            start = time.perf_counter()
            expander = TableExpander(self.trusted_sources, self.config, self.synonyms)
            mappings, _ = expander.expand_all(mappings)
            timings["expansion"] = time.perf_counter() - start

        start = time.perf_counter()
        curation = curate_mappings(
            mappings,
            min_domains=self.config.min_domains,
            min_size=self.config.min_mapping_size,
        )
        timings["curation"] = time.perf_counter() - start

        return PipelineResult(
            mappings=mappings,
            curated=curation.kept,
            candidates=candidates,
            extraction_stats=stats.as_dict(),
            timings=timings,
            metadata={
                "num_tables": float(len(corpus)),
                "num_candidates": float(len(candidates)),
                "num_mappings": float(len(mappings)),
                "num_curated": float(len(curation.kept)),
                "num_positive_edges": synthesis.metadata.get("num_positive_edges", 0.0),
                "num_negative_edges": synthesis.metadata.get("num_negative_edges", 0.0),
            },
        )
