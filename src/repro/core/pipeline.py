"""The end-to-end synthesis pipeline (paper Figure 1).

``SynthesisPipeline`` chains the three steps of the paper's solution:

1. **Candidate extraction** — PMI coherence filter + approximate-FD filter (§3).
2. **Table synthesis** — compatibility graph + greedy partitioning (§4.1–4.2).
3. **Conflict resolution** (and optional table expansion / curation) (§4.2–4.3).

A run can be persisted as a versioned on-disk artifact (:mod:`repro.store`) via
:meth:`SynthesisPipeline.save_artifact` and restored — without re-running
anything — via :meth:`SynthesisPipeline.from_artifact`;
:meth:`SynthesisPipeline.refresh` incrementally maintains a persisted run when
the corpus changes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship, mapping_rank_key
from repro.corpus.corpus import TableCorpus

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.serving.daemon import SynthesisDaemon
    from repro.store.artifact import SynthesisArtifact
    from repro.store.incremental import RefreshStats

__all__ = ["PipelineResult", "SynthesisPipeline"]


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    mappings: list[MappingRelationship]
    curated: list[MappingRelationship]
    candidates: list[BinaryTable]
    extraction_stats: dict[str, float]
    timings: dict[str, float] = field(default_factory=dict)
    metadata: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.mappings)

    def top_mappings(self, count: int = 10) -> list[MappingRelationship]:
        """The most popular curated mappings (falls back to all mappings).

        The sort key is a total order — popularity, contributing tables, size,
        then ascending ``mapping_id`` as the tiebreak — so the ranking (and any
        serving results derived from it) cannot flap between runs for mappings
        with identical statistics.
        """
        pool = self.curated if self.curated else self.mappings
        return sorted(pool, key=mapping_rank_key)[:count]


class SynthesisPipeline:
    """Runs candidate extraction, synthesis, and post-processing over a corpus."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms=None,
        trusted_sources: list[BinaryTable] | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.synonyms = synonyms
        self.trusted_sources = trusted_sources or []
        #: Outputs of the most recent run/refresh (or artifact load); consumed by
        #: :meth:`save_artifact` and serving layers.
        self.last_result: PipelineResult | None = None
        self._cached_artifact: "SynthesisArtifact | None" = None
        self._artifact_ingredients: dict | None = None

    @property
    def last_artifact(self) -> "SynthesisArtifact | None":
        """The most recent run as a :class:`SynthesisArtifact` (built lazily).

        Fingerprinting the corpus and encoding profiles is deferred to first
        access so callers that never persist — benchmarks, experiment sweeps —
        pay nothing for the store.  The fingerprints reflect the corpus as it
        is when the artifact is first built; build it (or save) before mutating
        the corpus.
        """
        if self._cached_artifact is None and self._artifact_ingredients is not None:
            from repro.store.artifact import SynthesisArtifact
            from repro.store.fingerprint import (
                corpus_digest,
                fingerprint_synonyms,
                table_fingerprints,
            )

            state = self._artifact_ingredients
            fingerprints = table_fingerprints(state["corpus"])
            scorer = state["scorer"]
            self._cached_artifact = SynthesisArtifact.from_run(
                config=self.config,
                corpus_name=state["corpus"].name,
                corpus_fingerprint=corpus_digest(fingerprints),
                table_fingerprints=fingerprints,
                candidates=state["candidates"],
                graph=state["graph"],
                synonyms_fingerprint=fingerprint_synonyms(self.synonyms),
                # Profiles were computed during blocking; profile() is a cache hit
                # unless the run was large enough to cycle the profile cache.
                profiles={
                    c.table_id: scorer.profile(c) for c in state["candidates"]
                },
                mappings=state["mappings"],
                curated=state["curated"],
                extraction_stats=state["extraction_stats"],
                timings=state["timings"],
                metadata=state["metadata"],
            )
            self._artifact_ingredients = None
        return self._cached_artifact

    @last_artifact.setter
    def last_artifact(self, artifact: "SynthesisArtifact | None") -> None:
        self._cached_artifact = artifact
        self._artifact_ingredients = None

    def run(self, corpus: TableCorpus) -> PipelineResult:
        """Execute the full pipeline on ``corpus``.

        Besides returning the :class:`PipelineResult`, the run is captured as a
        :class:`~repro.store.artifact.SynthesisArtifact` on :attr:`last_artifact`
        (and auto-saved when :attr:`SynthesisConfig.artifact_path` is set).
        """
        # Imports are local to keep `repro.core` import-light (the pipeline pulls in
        # every other subpackage).
        from repro.extraction.candidates import CandidateExtractor
        from repro.synthesis.curation import curate_mappings
        from repro.synthesis.expansion import TableExpander
        from repro.synthesis.synthesizer import TableSynthesizer

        timings: dict[str, float] = {}

        start = time.perf_counter()
        extractor = CandidateExtractor(self.config)
        candidates, stats = extractor.extract(corpus)
        timings["extraction"] = time.perf_counter() - start

        start = time.perf_counter()
        synthesizer = TableSynthesizer(self.config, self.synonyms)
        synthesis = synthesizer.synthesize(candidates)
        timings["synthesis"] = time.perf_counter() - start

        mappings = synthesis.mappings
        if self.config.expand_tables and self.trusted_sources:
            start = time.perf_counter()
            expander = TableExpander(self.trusted_sources, self.config, self.synonyms)
            mappings, _ = expander.expand_all(mappings)
            timings["expansion"] = time.perf_counter() - start

        start = time.perf_counter()
        curation = curate_mappings(
            mappings,
            min_domains=self.config.min_domains,
            min_size=self.config.min_mapping_size,
        )
        timings["curation"] = time.perf_counter() - start

        result = PipelineResult(
            mappings=mappings,
            curated=curation.kept,
            candidates=candidates,
            extraction_stats=stats.as_dict(),
            timings=timings,
            metadata={
                "num_tables": float(len(corpus)),
                "num_candidates": float(len(candidates)),
                "num_mappings": float(len(mappings)),
                "num_curated": float(len(curation.kept)),
                "num_positive_edges": synthesis.metadata.get("num_positive_edges", 0.0),
                "num_negative_edges": synthesis.metadata.get("num_negative_edges", 0.0),
            },
        )

        self._cached_artifact = None
        self._artifact_ingredients = {
            "corpus": corpus,
            "candidates": candidates,
            "graph": synthesis.graph,
            "scorer": synthesizer.graph_builder.scorer,
            "mappings": mappings,
            "curated": curation.kept,
            "extraction_stats": result.extraction_stats,
            "timings": result.timings,
            "metadata": result.metadata,
        }
        self.last_result = result
        if self.config.artifact_path:
            self.save_artifact(self.config.artifact_path)
        return result

    # -- Artifact persistence (repro.store) ---------------------------------------------
    def save_artifact(self, path: str | Path | None = None) -> Path:
        """Persist the most recent run to ``path`` (or the configured path).

        Raises
        ------
        RuntimeError
            If the pipeline has not produced a run to save yet.
        ValueError
            If neither ``path`` nor :attr:`SynthesisConfig.artifact_path` is set.
        """
        if self.last_artifact is None:
            raise RuntimeError("no run to persist; call run() before save_artifact()")
        target = path or self.config.artifact_path
        if not target:
            raise ValueError(
                "no artifact path: pass one or set SynthesisConfig.artifact_path"
            )
        from repro.store.artifact import save_artifact

        return save_artifact(
            self.last_artifact, target, compress=self.config.artifact_compress
        )

    @classmethod
    def from_artifact(
        cls,
        path: str | Path,
        synonyms=None,
        trusted_sources: list[BinaryTable] | None = None,
    ) -> "SynthesisPipeline":
        """Restore a pipeline (config + last run) from a saved artifact.

        The returned pipeline has :attr:`last_result` and :attr:`last_artifact`
        populated exactly as if :meth:`run` had just completed — no extraction,
        scoring, or synthesis is performed.
        """
        from repro.store.artifact import load_artifact

        artifact = load_artifact(path)
        pipeline = cls(
            config=artifact.config, synonyms=synonyms, trusted_sources=trusted_sources
        )
        pipeline.last_artifact = artifact
        pipeline.last_result = artifact.to_result()
        return pipeline

    def start_daemon(
        self, path: str | Path | None = None, *, watch: bool = True, **kwargs
    ) -> "SynthesisDaemon":
        """Start a :class:`~repro.serving.SynthesisDaemon` serving this pipeline.

        Serves the artifact at ``path`` (default:
        :attr:`SynthesisConfig.artifact_path`), persisting the most recent run
        there first if the file does not exist yet.  Daemon sizing — serving
        backend kind and worker count (from :attr:`SynthesisConfig.executor`,
        e.g. ``"process:4"`` for a GIL-free serving pool; the deprecated
        ``num_workers`` maps onto worker threads), queue bound, default
        deadline, watcher poll interval — comes from this pipeline's config;
        keyword arguments override it.  With ``watch=True`` the daemon
        hot-swaps whenever :meth:`refresh` (or any writer) publishes a new
        artifact version at the path.
        """
        from repro.serving.daemon import SynthesisDaemon

        target = path or self.config.artifact_path
        if not target:
            raise ValueError(
                "no artifact path: pass one or set SynthesisConfig.artifact_path"
            )
        target = Path(target)
        if not target.exists():
            self.save_artifact(target)
        return SynthesisDaemon.from_artifact(
            target, config=self.config, watch=watch, **kwargs
        )

    def refresh(
        self,
        corpus: TableCorpus,
        artifact: "SynthesisArtifact | None" = None,
    ) -> tuple[PipelineResult, "RefreshStats"]:
        """Incrementally refresh a persisted run against an updated ``corpus``.

        Reuses extraction, profiles, and pairwise scores for unchanged tables
        (see :mod:`repro.store.incremental`).  Falls back to a full :meth:`run`
        when table expansion is enabled, since expansion depends on this
        pipeline's trusted sources, which artifacts do not capture.
        """
        from repro.store.incremental import RefreshStats, refresh_artifact

        base = artifact if artifact is not None else self.last_artifact
        if base is None:
            raise RuntimeError(
                "no artifact to refresh from; run() or from_artifact() first"
            )
        if self.config.expand_tables and self.trusted_sources:
            result = self.run(corpus)
            stats = RefreshStats(
                tables_total=len(corpus),
                full_rebuild=True,
                reason="table expansion requires a full pipeline run",
            )
            return result, stats
        refreshed, stats = refresh_artifact(
            base, corpus, config=self.config, synonyms=self.synonyms
        )
        self.last_artifact = refreshed
        self.last_result = refreshed.to_result()
        if self.config.artifact_path:
            self.save_artifact(self.config.artifact_path)
        return self.last_result, stats
