"""Core data model, configuration, and the end-to-end synthesis pipeline."""

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import PipelineResult, SynthesisPipeline

__all__ = [
    "BinaryTable",
    "ValuePair",
    "SynthesisConfig",
    "MappingRelationship",
    "SynthesisPipeline",
    "PipelineResult",
]
