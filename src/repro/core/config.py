"""Configuration for the synthesis pipeline.

Every threshold and switch from the paper is collected in one
:class:`SynthesisConfig` dataclass so experiments (sensitivity analysis, ablations)
can vary a single parameter while holding the rest fixed.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.exec.backend import parse_executor_spec
from repro.faults.retry import RetryPolicy

__all__ = ["SynthesisConfig", "EXECUTOR_ENV_VAR", "RETRY_ATTEMPTS_ENV_VAR"]

#: Environment variable overriding :attr:`SynthesisConfig.executor` when the
#: field is left unset — the hook CI uses to run the whole suite under
#: ``process:2`` without touching any test's config.
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"

#: Environment variable supplying :attr:`SynthesisConfig.retry_attempts` when
#: the field is left at its default — the hook the CI chaos leg uses to widen
#: the recovery budget without touching any test's config.
RETRY_ATTEMPTS_ENV_VAR = "REPRO_RETRY_ATTEMPTS"


def _default_retry_attempts() -> int:
    raw = os.environ.get(RETRY_ATTEMPTS_ENV_VAR, "").strip()
    try:
        return int(raw) if raw else 2
    except ValueError:
        return 2


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters controlling candidate extraction, synthesis, and post-processing.

    Attributes
    ----------
    fd_theta:
        ``θ`` — minimum fraction of rows that must respect the functional dependency
        for a column pair to count as an approximate mapping (paper §2.1, default 0.95).
    min_rows:
        Minimum number of distinct value pairs for a candidate binary table.
    coherence_threshold:
        Minimum average NPMI coherence ``S(C)`` for a column to survive the PMI
        filter (paper §3.1).
    edge_threshold:
        ``θ_edge`` — minimum positive compatibility ``w+`` for an edge to be added to
        the synthesis graph.  The paper tunes this to 0.85 on the 100M-table web
        corpus; on the smaller synthetic corpus the default is 0.5 (the sensitivity
        bench sweeps the full range, including 0.85).
    conflict_threshold:
        ``τ`` — negative-compatibility threshold below which two tables are treated
        as hard-incompatible (paper §4.2 uses −0.2 and §5.4 reports the quality peak
        near −0.05; the default here, −0.1, sits at the same peak on the synthetic
        corpus — the sensitivity bench sweeps the full range).
    overlap_threshold:
        ``θ_overlap`` — minimum number of shared value pairs (for ``w+``) or shared
        left values (for ``w−``) before a pair of tables is even scored (paper §4.1).
    edit_fraction:
        ``f_ed`` — fractional edit-distance threshold for approximate value matching.
    edit_cap:
        ``k_ed`` — absolute cap on the edit-distance threshold.
    use_approximate_matching:
        Whether to use approximate string matching when computing compatibility.
    executor:
        Execution-backend spec for every parallel stage of the pipeline —
        blocked-pair scoring, Map-Reduce map phases, candidate-extraction
        sharding, incremental refresh rescoring, and the serving daemon's
        worker pool (see :mod:`repro.exec`).  ``"serial"`` is the
        deterministic reference; ``"thread:8"`` fans out across threads
        (useful when tasks release the GIL); ``"process:4"`` scales CPU-bound
        work past the GIL with picklable task envelopes.  Every backend
        produces byte-identical results.  When left empty, the
        ``REPRO_EXECUTOR`` environment variable supplies the spec; failing
        that, the deprecated :attr:`num_workers` maps onto each stage's
        historical behavior (a process pool for scoring, threads for
        Map-Reduce and the daemon, serial extraction — exactly the pools each
        stage hard-coded before).
    num_workers:
        **Deprecated** — use :attr:`executor`.  Legacy worker count kept as a
        compatibility shim: configs (and persisted artifacts) that still set
        it behave exactly as before via :meth:`effective_executor`.
        ``0`` or ``1`` selects the deterministic sequential path; higher values
        fan work across a pool with identical results.
    use_negative_edges:
        Whether FD-conflict (negative) edges constrain the partitioning.  Setting
        this to ``False`` yields the ``SynthesisPos`` ablation from the paper.
    use_pmi_filter / use_fd_filter:
        Toggles for the two candidate-extraction filters (§3.1, §3.2).
    resolve_conflicts:
        Whether to run the conflict-resolution post-processing step (§4.2, Alg. 4).
    conflict_strategy:
        ``"greedy"`` (Algorithm 4) or ``"majority"`` (majority-voting alternative
        evaluated in §5.6).
    expand_tables:
        Whether to run the optional table-expansion step (Appendix I).
    min_domains:
        Minimum number of distinct source domains contributing to a synthesized
        mapping for it to be retained during curation (§4.3 uses 8 for the Web).
    min_mapping_size:
        Minimum number of value pairs in a synthesized mapping for curation.
    artifact_path:
        When non-empty, :meth:`SynthesisPipeline.run` automatically persists the
        run as a synthesis artifact at this path (see :mod:`repro.store`), which
        serving layers load with :meth:`MappingService.from_artifact` instead of
        re-running the pipeline.
    artifact_compress:
        Whether saved artifacts are gzip-compressed (deterministic bytes either
        way; compression trades a little save/load CPU for a much smaller file).
    daemon_queue_size:
        Bound on the :class:`repro.serving.SynthesisDaemon` request queue (in
        batches).  When the queue is full, non-blocking submission raises
        ``QueueFullError`` — backpressure instead of unbounded memory growth.
    daemon_poll_seconds:
        How often the daemon's :class:`~repro.serving.ArtifactWatcher` polls the
        served artifact path for out-of-process updates (in-process saves via
        :func:`repro.store.save_artifact` notify the watcher immediately).
    daemon_deadline_seconds:
        Default per-batch deadline for daemon submissions, measured from enqueue
        time; a batch still queued past its deadline fails with
        ``DeadlineExpiredError`` instead of being served late.  ``0`` disables
        the default deadline (per-submit deadlines still apply).
    retry_attempts:
        Budget of the fault-tolerance :class:`~repro.faults.RetryPolicy` built
        by :meth:`retry_policy` — how many times a broken process pool is
        rebuilt (then the backend degrades to inline execution), how many
        times a transient task failure is re-dispatched, and how many times
        the daemon's watcher re-attempts a failed hot-swap before pinning the
        last good generation.  Defaults to ``REPRO_RETRY_ATTEMPTS`` when set,
        else 2; ``0`` disables retries (first failure degrades immediately).
    retry_backoff_seconds / retry_backoff_cap_seconds:
        Base and cap of the policy's exponential backoff schedule.
    daemon_breaker_threshold:
        Error-rate threshold of the daemon's per-generation circuit breaker:
        when at least :attr:`daemon_breaker_min_requests` recent requests show
        this error fraction, the breaker opens and submissions fail fast with
        ``CircuitOpenError`` until a half-open probe succeeds.  ``0`` (the
        default) disables the breaker — per-request errors are already
        isolated in response envelopes, so tripping is an operator opt-in.
    daemon_breaker_min_requests:
        Minimum recent-request volume before the breaker may trip (guards
        against opening on the first unlucky request).
    daemon_breaker_cooldown_seconds:
        How long an open breaker waits before admitting a half-open probe.
    cluster_replication:
        How many replicas host each shard in the scatter-gather serving
        cluster (:mod:`repro.cluster`).  ``1`` is pure partitioning (any
        replica loss makes some shard unservable); ``2`` (the default) lets
        the :class:`~repro.cluster.ClusterRouter` keep answering with any
        single replica down, at the cost of each replica decoding two shard
        slices.  Capped at the shard count when a cluster is built.
    cluster_request_timeout_seconds:
        Per-scatter deadline the router applies to each replica submission
        and result wait; a replica that exceeds it is treated as failed and
        its shards are re-routed to another replica hosting them.  The
        *remaining* budget travels inside every lookup frame and is enforced
        replica-side too (see :mod:`repro.net`), so one number is the single
        source of truth across transports.
    cluster_transport:
        How the router reaches its replicas: ``"inproc"`` (the default) keeps
        every replica an in-process :class:`~repro.serving.SynthesisDaemon`;
        ``"tcp"`` spawns one ``python -m repro.net.server`` process per
        replica and talks the framed binary protocol — same merge, same
        answers, real process/host isolation.
    net_connect_timeout_seconds:
        TCP connect timeout for each :class:`~repro.net.RemoteReplica`
        connection attempt (reconnects after a drop use the same bound, under
        the client's retry schedule).
    net_request_timeout_seconds:
        Default per-request wait on a replica socket for calls that carry no
        scatter deadline of their own (health, delta, drain, rollout
        notification).
    delta_escalation_ratio:
        Largest fraction of a daemon's served pool a single delta may touch
        while still being applied in place (index splice under the swap lock,
        same generation number).  Bigger patches escalate to a full
        generation swap via ``reload`` so oversized updates keep the
        drain/rollback semantics of a redeploy.
    delta_compact_threshold:
        Number of entries the streaming delta log may accumulate before
        :class:`~repro.updates.UpdateStream` folds them back into the base
        artifact (a plain re-save, byte-identical to a cold rebuild) and
        truncates the log.
    """

    # --- Candidate extraction (§3) -------------------------------------------------
    fd_theta: float = 0.95
    min_rows: int = 4
    coherence_threshold: float = 0.05
    use_pmi_filter: bool = True
    use_fd_filter: bool = True

    # --- Compatibility and synthesis (§4.1, §4.2) ----------------------------------
    edge_threshold: float = 0.3
    conflict_threshold: float = -0.1
    overlap_threshold: int = 2
    edit_fraction: float = 0.2
    edit_cap: int = 10
    use_approximate_matching: bool = True
    use_negative_edges: bool = True
    executor: str = ""
    num_workers: int = 0

    # --- Post-processing (§4.2 conflict resolution, Appendix I) --------------------
    resolve_conflicts: bool = True
    conflict_strategy: str = "greedy"
    expand_tables: bool = False

    # --- Curation (§4.3) ------------------------------------------------------------
    min_domains: int = 2
    min_mapping_size: int = 5

    # --- Artifact store / serving (repro.store) --------------------------------------
    artifact_path: str = ""
    artifact_compress: bool = True

    # --- Serving daemon (repro.serving) ----------------------------------------------
    daemon_queue_size: int = 64
    daemon_poll_seconds: float = 0.25
    daemon_deadline_seconds: float = 0.0

    # --- Fault tolerance (repro.faults) -----------------------------------------------
    retry_attempts: int = field(default_factory=_default_retry_attempts)
    retry_backoff_seconds: float = 0.05
    retry_backoff_cap_seconds: float = 2.0
    daemon_breaker_threshold: float = 0.0
    daemon_breaker_min_requests: int = 10
    daemon_breaker_cooldown_seconds: float = 1.0

    # --- Cluster serving tier (repro.cluster / repro.net) ------------------------------
    cluster_replication: int = 2
    cluster_request_timeout_seconds: float = 30.0
    cluster_transport: str = "inproc"
    net_connect_timeout_seconds: float = 5.0
    net_request_timeout_seconds: float = 30.0

    # --- Streaming updates (repro.updates) ---------------------------------------------
    delta_escalation_ratio: float = 0.25
    delta_compact_threshold: int = 64

    # --- Extra knobs for experiments -------------------------------------------------
    # hash=False: a dict-valued field would make the generated __hash__ of this
    # frozen dataclass raise TypeError on every call.
    extra: dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.executor, str):
            raise ValueError(
                f"executor must be a spec string like 'thread:8', got {self.executor!r}"
            )
        if not self.executor:
            env_spec = os.environ.get(EXECUTOR_ENV_VAR, "").strip()
            if env_spec:
                object.__setattr__(self, "executor", env_spec)
        if self.executor:
            parse_executor_spec(self.executor)  # fail at config time, not mid-build
        elif self.num_workers > 1:
            # One construction-time notice (kind-neutral: the legacy knob maps
            # onto a different pool kind per stage), pointed at the caller
            # rather than at whichever pipeline stage first consults the shim.
            warnings.warn(
                "SynthesisConfig.num_workers is deprecated; set "
                "executor='process:N' (or 'thread:N', see repro.exec) instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if not 0.0 < self.fd_theta <= 1.0:
            raise ValueError(f"fd_theta must be in (0, 1], got {self.fd_theta}")
        if self.min_rows < 1:
            raise ValueError(f"min_rows must be >= 1, got {self.min_rows}")
        if not 0.0 <= self.edge_threshold <= 1.0:
            raise ValueError(
                f"edge_threshold must be in [0, 1], got {self.edge_threshold}"
            )
        if self.conflict_threshold > 0.0:
            raise ValueError(
                "conflict_threshold is a negative-weight threshold and must be <= 0, "
                f"got {self.conflict_threshold}"
            )
        if self.overlap_threshold < 1:
            raise ValueError(
                f"overlap_threshold must be >= 1, got {self.overlap_threshold}"
            )
        if self.conflict_strategy not in {"greedy", "majority"}:
            raise ValueError(
                "conflict_strategy must be 'greedy' or 'majority', "
                f"got {self.conflict_strategy!r}"
            )
        if self.edit_fraction < 0:
            raise ValueError(
                f"edit_fraction must be non-negative, got {self.edit_fraction}"
            )
        if self.min_domains < 1:
            raise ValueError(f"min_domains must be >= 1, got {self.min_domains}")
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if not isinstance(self.artifact_path, str):
            raise ValueError(
                f"artifact_path must be a string path (or empty to disable), "
                f"got {self.artifact_path!r}"
            )
        if self.daemon_queue_size < 1:
            raise ValueError(
                f"daemon_queue_size must be >= 1, got {self.daemon_queue_size}"
            )
        if self.daemon_poll_seconds <= 0:
            raise ValueError(
                f"daemon_poll_seconds must be > 0, got {self.daemon_poll_seconds}"
            )
        if self.daemon_deadline_seconds < 0:
            raise ValueError(
                "daemon_deadline_seconds must be >= 0 (0 disables the default), "
                f"got {self.daemon_deadline_seconds}"
            )
        if self.retry_attempts < 0:
            raise ValueError(
                f"retry_attempts must be >= 0, got {self.retry_attempts}"
            )
        if self.retry_backoff_seconds < 0:
            raise ValueError(
                f"retry_backoff_seconds must be >= 0, got {self.retry_backoff_seconds}"
            )
        if self.retry_backoff_cap_seconds < self.retry_backoff_seconds:
            raise ValueError(
                f"retry_backoff_cap_seconds ({self.retry_backoff_cap_seconds}) must "
                f"be >= retry_backoff_seconds ({self.retry_backoff_seconds})"
            )
        if self.daemon_breaker_threshold > 1.0:
            raise ValueError(
                "daemon_breaker_threshold is an error rate and must be <= 1 "
                f"(<= 0 disables the breaker), got {self.daemon_breaker_threshold}"
            )
        if self.daemon_breaker_min_requests < 1:
            raise ValueError(
                "daemon_breaker_min_requests must be >= 1, "
                f"got {self.daemon_breaker_min_requests}"
            )
        if self.daemon_breaker_cooldown_seconds < 0:
            raise ValueError(
                "daemon_breaker_cooldown_seconds must be >= 0, "
                f"got {self.daemon_breaker_cooldown_seconds}"
            )
        if self.cluster_replication < 1:
            raise ValueError(
                f"cluster_replication must be >= 1, got {self.cluster_replication}"
            )
        if self.cluster_request_timeout_seconds <= 0:
            raise ValueError(
                "cluster_request_timeout_seconds must be > 0, "
                f"got {self.cluster_request_timeout_seconds}"
            )
        if self.cluster_transport not in ("inproc", "tcp"):
            raise ValueError(
                "cluster_transport must be 'inproc' or 'tcp', "
                f"got {self.cluster_transport!r}"
            )
        if self.net_connect_timeout_seconds <= 0:
            raise ValueError(
                "net_connect_timeout_seconds must be > 0, "
                f"got {self.net_connect_timeout_seconds}"
            )
        if self.net_request_timeout_seconds <= 0:
            raise ValueError(
                "net_request_timeout_seconds must be > 0, "
                f"got {self.net_request_timeout_seconds}"
            )
        if not 0 < self.delta_escalation_ratio <= 1:
            raise ValueError(
                "delta_escalation_ratio must be in (0, 1], "
                f"got {self.delta_escalation_ratio}"
            )
        if self.delta_compact_threshold < 1:
            raise ValueError(
                "delta_compact_threshold must be >= 1, "
                f"got {self.delta_compact_threshold}"
            )

    def effective_executor(self, default_kind: str | None = "process") -> str:
        """Resolve the executor spec this config selects for one pipeline stage.

        Precedence: an explicit :attr:`executor` (which includes a
        ``REPRO_EXECUTOR`` environment override applied at construction) wins;
        otherwise the deprecated :attr:`num_workers` shim maps counts above one
        onto ``"<default_kind>:<num_workers>"`` — each call site passes the
        kind it historically hard-coded, so legacy configs behave unchanged
        (the deprecation itself is warned once, at construction time);
        otherwise ``"serial"``.  Stages that never parallelized under
        ``num_workers`` (candidate extraction) pass ``default_kind=None``:
        only an explicit spec opts them into a pool, keeping the shim's
        behave-exactly-as-before contract.
        """
        if self.executor:
            return self.executor
        if self.num_workers > 1 and default_kind is not None:
            return f"{default_kind}:{self.num_workers}"
        return "serial"

    def executor_workers(self, default_kind: str | None = "process") -> int:
        """Worker count of :meth:`effective_executor` (1 for the serial path)."""
        return parse_executor_spec(self.effective_executor(default_kind))[1]

    def retry_policy(
        self,
        *,
        retry_on: tuple[type[BaseException], ...] | None = None,
    ) -> RetryPolicy:
        """The :class:`~repro.faults.RetryPolicy` this config's knobs select.

        One policy shape feeds every resilience site — exec-backend pool
        rebuilds, per-task transient retries, and the watcher's hot-swap
        retries — so operators tune a single budget.  ``retry_on`` overrides
        the covered exception types; the default defers to
        :data:`repro.exec.DEFAULT_RETRY_POLICY`'s transient set.
        """
        from repro.exec.backend import DEFAULT_RETRY_POLICY

        return RetryPolicy(
            attempts=self.retry_attempts,
            base_seconds=self.retry_backoff_seconds,
            max_seconds=self.retry_backoff_cap_seconds,
            retry_on=(
                retry_on if retry_on is not None else DEFAULT_RETRY_POLICY.retry_on
            ),
        )

    def with_overrides(self, **kwargs: Any) -> "SynthesisConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_defaults(cls) -> "SynthesisConfig":
        """Configuration matching the parameter values reported in the paper."""
        return cls()

    @classmethod
    def positive_only(cls) -> "SynthesisConfig":
        """The ``SynthesisPos`` ablation: ignore FD-induced negative signals."""
        return cls(use_negative_edges=False)
