"""Configuration for the synthesis pipeline.

Every threshold and switch from the paper is collected in one
:class:`SynthesisConfig` dataclass so experiments (sensitivity analysis, ablations)
can vary a single parameter while holding the rest fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

__all__ = ["SynthesisConfig"]


@dataclass(frozen=True)
class SynthesisConfig:
    """Parameters controlling candidate extraction, synthesis, and post-processing.

    Attributes
    ----------
    fd_theta:
        ``θ`` — minimum fraction of rows that must respect the functional dependency
        for a column pair to count as an approximate mapping (paper §2.1, default 0.95).
    min_rows:
        Minimum number of distinct value pairs for a candidate binary table.
    coherence_threshold:
        Minimum average NPMI coherence ``S(C)`` for a column to survive the PMI
        filter (paper §3.1).
    edge_threshold:
        ``θ_edge`` — minimum positive compatibility ``w+`` for an edge to be added to
        the synthesis graph.  The paper tunes this to 0.85 on the 100M-table web
        corpus; on the smaller synthetic corpus the default is 0.5 (the sensitivity
        bench sweeps the full range, including 0.85).
    conflict_threshold:
        ``τ`` — negative-compatibility threshold below which two tables are treated
        as hard-incompatible (paper §4.2 uses −0.2 and §5.4 reports the quality peak
        near −0.05; the default here, −0.1, sits at the same peak on the synthetic
        corpus — the sensitivity bench sweeps the full range).
    overlap_threshold:
        ``θ_overlap`` — minimum number of shared value pairs (for ``w+``) or shared
        left values (for ``w−``) before a pair of tables is even scored (paper §4.1).
    edit_fraction:
        ``f_ed`` — fractional edit-distance threshold for approximate value matching.
    edit_cap:
        ``k_ed`` — absolute cap on the edit-distance threshold.
    use_approximate_matching:
        Whether to use approximate string matching when computing compatibility.
    num_workers:
        Number of worker processes used to score blocked pairs during graph
        construction, and the thread count for the map phase of config-driven
        Map-Reduce jobs (threads help only when mappers release the GIL).
        ``0`` or ``1`` selects the deterministic sequential path; higher values
        fan work across a ``concurrent.futures`` pool with identical results.
    use_negative_edges:
        Whether FD-conflict (negative) edges constrain the partitioning.  Setting
        this to ``False`` yields the ``SynthesisPos`` ablation from the paper.
    use_pmi_filter / use_fd_filter:
        Toggles for the two candidate-extraction filters (§3.1, §3.2).
    resolve_conflicts:
        Whether to run the conflict-resolution post-processing step (§4.2, Alg. 4).
    conflict_strategy:
        ``"greedy"`` (Algorithm 4) or ``"majority"`` (majority-voting alternative
        evaluated in §5.6).
    expand_tables:
        Whether to run the optional table-expansion step (Appendix I).
    min_domains:
        Minimum number of distinct source domains contributing to a synthesized
        mapping for it to be retained during curation (§4.3 uses 8 for the Web).
    min_mapping_size:
        Minimum number of value pairs in a synthesized mapping for curation.
    artifact_path:
        When non-empty, :meth:`SynthesisPipeline.run` automatically persists the
        run as a synthesis artifact at this path (see :mod:`repro.store`), which
        serving layers load with :meth:`MappingService.from_artifact` instead of
        re-running the pipeline.
    artifact_compress:
        Whether saved artifacts are gzip-compressed (deterministic bytes either
        way; compression trades a little save/load CPU for a much smaller file).
    daemon_queue_size:
        Bound on the :class:`repro.serving.SynthesisDaemon` request queue (in
        batches).  When the queue is full, non-blocking submission raises
        ``QueueFullError`` — backpressure instead of unbounded memory growth.
    daemon_poll_seconds:
        How often the daemon's :class:`~repro.serving.ArtifactWatcher` polls the
        served artifact path for out-of-process updates (in-process saves via
        :func:`repro.store.save_artifact` notify the watcher immediately).
    daemon_deadline_seconds:
        Default per-batch deadline for daemon submissions, measured from enqueue
        time; a batch still queued past its deadline fails with
        ``DeadlineExpiredError`` instead of being served late.  ``0`` disables
        the default deadline (per-submit deadlines still apply).
    """

    # --- Candidate extraction (§3) -------------------------------------------------
    fd_theta: float = 0.95
    min_rows: int = 4
    coherence_threshold: float = 0.05
    use_pmi_filter: bool = True
    use_fd_filter: bool = True

    # --- Compatibility and synthesis (§4.1, §4.2) ----------------------------------
    edge_threshold: float = 0.3
    conflict_threshold: float = -0.1
    overlap_threshold: int = 2
    edit_fraction: float = 0.2
    edit_cap: int = 10
    use_approximate_matching: bool = True
    use_negative_edges: bool = True
    num_workers: int = 0

    # --- Post-processing (§4.2 conflict resolution, Appendix I) --------------------
    resolve_conflicts: bool = True
    conflict_strategy: str = "greedy"
    expand_tables: bool = False

    # --- Curation (§4.3) ------------------------------------------------------------
    min_domains: int = 2
    min_mapping_size: int = 5

    # --- Artifact store / serving (repro.store) --------------------------------------
    artifact_path: str = ""
    artifact_compress: bool = True

    # --- Serving daemon (repro.serving) ----------------------------------------------
    daemon_queue_size: int = 64
    daemon_poll_seconds: float = 0.25
    daemon_deadline_seconds: float = 0.0

    # --- Extra knobs for experiments -------------------------------------------------
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.fd_theta <= 1.0:
            raise ValueError(f"fd_theta must be in (0, 1], got {self.fd_theta}")
        if self.min_rows < 1:
            raise ValueError(f"min_rows must be >= 1, got {self.min_rows}")
        if not 0.0 <= self.edge_threshold <= 1.0:
            raise ValueError(
                f"edge_threshold must be in [0, 1], got {self.edge_threshold}"
            )
        if self.conflict_threshold > 0.0:
            raise ValueError(
                "conflict_threshold is a negative-weight threshold and must be <= 0, "
                f"got {self.conflict_threshold}"
            )
        if self.overlap_threshold < 1:
            raise ValueError(
                f"overlap_threshold must be >= 1, got {self.overlap_threshold}"
            )
        if self.conflict_strategy not in {"greedy", "majority"}:
            raise ValueError(
                "conflict_strategy must be 'greedy' or 'majority', "
                f"got {self.conflict_strategy!r}"
            )
        if self.edit_fraction < 0:
            raise ValueError(
                f"edit_fraction must be non-negative, got {self.edit_fraction}"
            )
        if self.min_domains < 1:
            raise ValueError(f"min_domains must be >= 1, got {self.min_domains}")
        if self.num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {self.num_workers}")
        if not isinstance(self.artifact_path, str):
            raise ValueError(
                f"artifact_path must be a string path (or empty to disable), "
                f"got {self.artifact_path!r}"
            )
        if self.daemon_queue_size < 1:
            raise ValueError(
                f"daemon_queue_size must be >= 1, got {self.daemon_queue_size}"
            )
        if self.daemon_poll_seconds <= 0:
            raise ValueError(
                f"daemon_poll_seconds must be > 0, got {self.daemon_poll_seconds}"
            )
        if self.daemon_deadline_seconds < 0:
            raise ValueError(
                "daemon_deadline_seconds must be >= 0 (0 disables the default), "
                f"got {self.daemon_deadline_seconds}"
            )

    def with_overrides(self, **kwargs: Any) -> "SynthesisConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def paper_defaults(cls) -> "SynthesisConfig":
        """Configuration matching the parameter values reported in the paper."""
        return cls()

    @classmethod
    def positive_only(cls) -> "SynthesisConfig":
        """The ``SynthesisPos`` ablation: ignore FD-induced negative signals."""
        return cls(use_negative_edges=False)
