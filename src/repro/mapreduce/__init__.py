"""A small local map/shuffle/reduce engine plus the paper's Map-Reduce jobs."""

from repro.mapreduce.engine import MapReduceEngine, MapReduceJob
from repro.mapreduce.jobs import (
    hash_to_min_connected_components,
    inverted_index_job,
    pairwise_compatibility_job,
)

__all__ = [
    "MapReduceEngine",
    "MapReduceJob",
    "inverted_index_job",
    "pairwise_compatibility_job",
    "hash_to_min_connected_components",
]
