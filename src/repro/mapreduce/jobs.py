"""Map-Reduce formulations of the paper's pipeline stages.

Three jobs are provided:

* :func:`inverted_index_job` — the inverted-index re-grouping of §4.1 ("Efficiency"):
  map every candidate table to its (normalized) value pairs, group by value pair,
  and emit the candidate table pairs that co-occur — exactly the blocking step that
  avoids the ``O(N²)`` all-pairs comparison.
* :func:`pairwise_compatibility_job` — score blocked pairs with ``w+`` / ``w−``.
* :func:`hash_to_min_connected_components` — the Hash-to-Min algorithm of
  Appendix F for computing connected components in logarithmic rounds.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Hashable, Iterable

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.compatibility import CompatibilityScorer
from repro.mapreduce.engine import MapReduceEngine, MapReduceJob

__all__ = [
    "inverted_index_job",
    "pairwise_compatibility_job",
    "hash_to_min_connected_components",
]


def inverted_index_job(
    tables: list[BinaryTable],
    scorer: CompatibilityScorer,
    engine: MapReduceEngine | None = None,
    min_shared: int = 1,
) -> dict[tuple[int, int], int]:
    """Block candidate table pairs by shared normalized value pairs.

    Returns a dictionary from (table index, table index) to the number of exactly
    shared value pairs, computed with one map/reduce round.
    """
    if min_shared < 1:
        raise ValueError(f"min_shared must be >= 1, got {min_shared}")
    engine = engine or MapReduceEngine()
    matcher = scorer.matcher

    def mapper(record: tuple[int, BinaryTable]):
        index, table = record
        keys = {
            (matcher.match_key(pair.left), matcher.match_key(pair.right))
            for pair in table.pairs
        }
        for key in keys:
            yield key, index

    def reducer(key: Hashable, values: list[int]):
        indices = sorted(set(values))
        for i in range(len(indices)):
            for j in range(i + 1, len(indices)):
                yield (indices[i], indices[j])

    job = MapReduceJob(mapper=mapper, reducer=reducer, name="inverted-index")
    pair_events = engine.run(job, list(enumerate(tables)))
    counts: dict[tuple[int, int], int] = defaultdict(int)
    for pair in pair_events:
        counts[pair] += 1
    return {pair: count for pair, count in counts.items() if count >= min_shared}


def pairwise_compatibility_job(
    tables: list[BinaryTable],
    blocked_pairs: Iterable[tuple[int, int]],
    config: SynthesisConfig | None = None,
    scorer: CompatibilityScorer | None = None,
    engine: MapReduceEngine | None = None,
) -> dict[tuple[int, int], tuple[float, float]]:
    """Score blocked pairs; returns ``(w+, w−)`` per pair via one map/reduce round."""
    config = config or SynthesisConfig()
    scorer = scorer or CompatibilityScorer(config)
    # Threads are this job's historical pool kind (the reducer closes over the
    # scorer and tables), so the legacy num_workers shim maps onto "thread:N".
    engine = engine or MapReduceEngine(
        executor=config.effective_executor(default_kind="thread")
    )

    def mapper(record: tuple[int, int]):
        first, second = record
        yield (first, second), None

    def reducer(key: Hashable, values: list[None]):
        first, second = key
        positive = scorer.positive(tables[first], tables[second])
        negative = scorer.negative(tables[first], tables[second])
        yield (first, second), (positive, negative)

    job = MapReduceJob(mapper=mapper, reducer=reducer, name="pairwise-compatibility")
    outputs = engine.run(job, list(blocked_pairs))
    return {pair: scores for pair, scores in outputs}


def hash_to_min_connected_components(
    vertices: Iterable[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
    engine: MapReduceEngine | None = None,
    max_iterations: int = 50,
) -> dict[Hashable, Hashable]:
    """Hash-to-Min connected components (Chitnis et al., paper Appendix F).

    Each vertex maintains a cluster; in every round a vertex sends the minimum
    vertex of its cluster to all members and its own cluster to the minimum vertex.
    Convergence is reached when cluster assignments stop changing.  Returns a map
    from vertex to its component representative (the minimum vertex).
    """
    engine = engine or MapReduceEngine()
    vertices = list(vertices)
    adjacency: dict[Hashable, set[Hashable]] = {vertex: {vertex} for vertex in vertices}
    for first, second in edges:
        adjacency.setdefault(first, {first}).add(second)
        adjacency.setdefault(second, {second}).add(first)

    # State records: (vertex, cluster) where cluster is a frozenset of vertices.
    state = [(vertex, frozenset(neighbors)) for vertex, neighbors in adjacency.items()]

    def job_factory(iteration: int) -> MapReduceJob:
        def mapper(record: tuple[Hashable, frozenset]):
            vertex, cluster = record
            minimum = min(cluster)
            # Send the minimum to every member, and the whole cluster to the minimum.
            for member in cluster:
                yield member, frozenset({minimum})
            yield minimum, cluster

        def reducer(key: Hashable, values: list[frozenset]):
            merged: set[Hashable] = set()
            for value in values:
                merged |= value
            merged.add(key)
            yield key, frozenset(merged)

        return MapReduceJob(mapper=mapper, reducer=reducer, name=f"hash-to-min-{iteration}")

    def converged(previous: list, current: list) -> bool:
        def minima(state_records: list) -> dict[Hashable, Hashable]:
            return {vertex: min(cluster) for vertex, cluster in state_records}

        return minima(previous) == minima(current)

    final_state, _ = engine.iterate(job_factory, state, converged, max_iterations)
    representative = {vertex: min(cluster) for vertex, cluster in final_state}
    # Vertices may appear only as cluster members of another vertex after the final
    # round; make sure every original vertex resolves to its component minimum by
    # propagating representatives until fixpoint.
    changed = True
    while changed:
        changed = False
        for vertex in representative:
            root = representative[vertex]
            if root in representative and representative[root] < representative[vertex]:
                representative[vertex] = representative[root]
                changed = True
    return {vertex: representative.get(vertex, vertex) for vertex in vertices}
