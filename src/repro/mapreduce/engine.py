"""A deliberately small, single-machine Map-Reduce engine.

The paper implements every stage of its pipeline as Map-Reduce jobs on a production
cluster.  This module provides a local engine with the same programming model —
``map(record) -> (key, value) pairs``, shuffle by key, ``reduce(key, values) ->
results`` — so the jobs in :mod:`repro.mapreduce.jobs` read like their distributed
counterparts and the partition/inverted-index structure of the algorithms is
preserved, while everything runs in-process.
"""

from __future__ import annotations

import pickle
import zlib
from collections import defaultdict
from collections.abc import Callable, Hashable, Iterable, Iterator
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from repro.exec.backend import parse_executor_spec
from repro.exec.fanout import FanOut

__all__ = ["MapReduceJob", "MapReduceEngine"]


def _map_chunk(job: "MapReduceJob", records: list[Any]) -> list[tuple[Hashable, Any]]:
    """Run one job's mapper over a chunk of records (module-level so a process
    backend can pickle it by reference; the job itself must then be picklable —
    closure-based jobs fail the pickle and fall back to the serial map)."""
    return [pair for record in records for pair in job.mapper(record)]

Mapper = Callable[[Any], Iterable[tuple[Hashable, Any]]]
Reducer = Callable[[Hashable, list[Any]], Iterable[Any]]
Combiner = Callable[[Hashable, list[Any]], list[Any]]


@dataclass
class MapReduceJob:
    """One map/shuffle/reduce round.

    Attributes
    ----------
    mapper:
        Function from an input record to an iterable of ``(key, value)`` pairs.
    reducer:
        Function from ``(key, values)`` to an iterable of output records.
    combiner:
        Optional map-side combiner applied per partition before the shuffle, with
        the same signature as a reducer but returning a list of values.
    name:
        Human-readable job name (appears in the engine's counters).
    """

    mapper: Mapper
    reducer: Reducer
    combiner: Combiner | None = None
    name: str = "job"


@dataclass
class JobCounters:
    """Bookkeeping mirroring the counters a real Map-Reduce framework exposes."""

    input_records: int = 0
    mapped_pairs: int = 0
    shuffled_keys: int = 0
    output_records: int = 0


class MapReduceEngine:
    """Runs :class:`MapReduceJob` instances over in-memory datasets."""

    def __init__(
        self,
        num_partitions: int = 8,
        num_workers: int = 0,
        executor: str | None = None,
    ) -> None:
        if num_partitions < 1:
            raise ValueError(f"num_partitions must be >= 1, got {num_partitions}")
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if executor is not None:
            parse_executor_spec(executor)  # fail at construction, not mid-job
        self.num_partitions = num_partitions
        self.num_workers = num_workers
        self.executor = executor
        self.counters: dict[str, JobCounters] = {}
        #: True when the most recent run's map phase could not use the
        #: requested backend as-is: an unpicklable job under a process backend
        #: degrades to the thread fan-out, a broken pool falls back to the
        #: serial map — the outputs are identical in every case.
        self.last_map_fallback = False

    @property
    def effective_executor(self) -> str:
        """The backend spec the map phase uses (legacy ``num_workers`` → threads,
        which is the pool kind this engine historically hard-coded)."""
        if self.executor is not None:
            return self.executor
        return f"thread:{self.num_workers}" if self.num_workers > 1 else "serial"

    # -- Internals --------------------------------------------------------------------
    def _partition(self, key: Hashable) -> int:
        # ``hash()`` is salted per process (PYTHONHASHSEED), which made partition
        # assignment — and therefore combiner behavior and per-partition counters —
        # nondeterministic across runs.  CRC32 of the key's repr is stable for the
        # str/int/tuple keys the jobs use.
        return zlib.crc32(repr(key).encode("utf-8")) % self.num_partitions

    def _map_records(
        self, job: MapReduceJob, records: list[Any]
    ) -> list[tuple[Hashable, Any]]:
        return _map_chunk(job, records)

    def _map_phase(
        self, job: MapReduceJob, records: Iterable[Any], counters: JobCounters
    ) -> list[dict[Hashable, list[Any]]]:
        partitions: list[dict[Hashable, list[Any]]] = [
            defaultdict(list) for _ in range(self.num_partitions)
        ]
        records = list(records)
        counters.input_records += len(records)
        self.last_map_fallback = False
        # chunks_per_worker=1 preserves this engine's historical layout: one
        # contiguous record slice per (record-count-clamped) worker.
        fan = FanOut(self.effective_executor, chunks_per_worker=1)
        if fan.should_fan_out(len(records), min_items=2):
            # The map phase fans contiguous record slices across the configured
            # repro.exec backend.  Threads share closure-based mappers safely
            # (and, under CPython's GIL, buy throughput only for mappers that
            # release it — for pure-Python mappers the fan-out mirrors the
            # distributed programming model rather than speed); a process
            # backend needs a fully picklable job and scales pure-Python
            # mappers past the GIL.  Chunks are merged in input order either
            # way, so the shuffle sees the exact same value ordering as the
            # sequential path.
            kind = fan.kind
            workers = min(fan.workers, len(records))
            task = partial(_map_chunk, job)
            if kind not in ("serial", "thread"):
                # A process (or custom pickling) backend needs the whole job to
                # pickle; probing up front avoids spawning a pool just to tear
                # it down on the first PicklingError.  Closure-based jobs — the
                # common case here — degrade to threads, which share them
                # safely and preserve the pre-backend fan-out behavior.
                try:
                    pickle.dumps(task)
                except Exception:
                    self.last_map_fallback = True
                    kind = "thread"
            mapped_chunks = fan.run_blocks(
                task, fan.chunk(records), spec=f"{kind}:{workers}"
            )
            if mapped_chunks is None:
                # An environmentally broken pool computes identically in-process.
                self.last_map_fallback = True
                mapped = self._map_records(job, records)
            else:
                mapped = [pair for chunk in mapped_chunks for pair in chunk]
        else:
            mapped = self._map_records(job, records)
        counters.mapped_pairs += len(mapped)
        for key, value in mapped:
            partitions[self._partition(key)][key].append(value)
        if job.combiner is not None:
            for partition in partitions:
                for key in list(partition):
                    partition[key] = list(job.combiner(key, partition[key]))
        return partitions

    def _shuffle(
        self, partitions: list[dict[Hashable, list[Any]]], counters: JobCounters
    ) -> dict[Hashable, list[Any]]:
        shuffled: dict[Hashable, list[Any]] = defaultdict(list)
        for partition in partitions:
            for key, values in partition.items():
                shuffled[key].extend(values)
        counters.shuffled_keys = len(shuffled)
        return shuffled

    # -- Public API ----------------------------------------------------------------------
    def run(self, job: MapReduceJob, records: Iterable[Any]) -> list[Any]:
        """Run one job over ``records`` and return the reducer outputs as a list."""
        counters = JobCounters()
        partitions = self._map_phase(job, records, counters)
        shuffled = self._shuffle(partitions, counters)
        outputs: list[Any] = []
        # Sort keys for determinism where the key type allows it.
        try:
            keys = sorted(shuffled)
        except TypeError:
            keys = list(shuffled)
        for key in keys:
            for result in job.reducer(key, shuffled[key]):
                counters.output_records += 1
                outputs.append(result)
        self.counters[job.name] = counters
        return outputs

    def run_chain(self, jobs: list[MapReduceJob], records: Iterable[Any]) -> list[Any]:
        """Run several jobs in sequence, feeding each job the previous job's output."""
        current: Iterable[Any] = records
        result: list[Any] = list(current)
        for job in jobs:
            result = self.run(job, result)
        return result

    def iterate(
        self,
        job_factory: Callable[[int], MapReduceJob],
        records: Iterable[Any],
        converged: Callable[[list[Any], list[Any]], bool],
        max_iterations: int = 50,
    ) -> tuple[list[Any], int]:
        """Run an iterative job until convergence (e.g. Hash-to-Min).

        ``job_factory(iteration)`` builds the job for each round; ``converged`` is
        called with the previous and current outputs.
        """
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        previous = list(records)
        for iteration in range(max_iterations):
            current = self.run(job_factory(iteration), previous)
            if converged(previous, current):
                return current, iteration + 1
            previous = current
        return previous, max_iterations


def records_to_iterator(records: Iterable[Any]) -> Iterator[Any]:
    """Small helper so callers can pass generators without exhausting them twice."""
    return iter(list(records))
