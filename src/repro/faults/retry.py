"""Capped exponential backoff with deterministic jitter.

One :class:`RetryPolicy` shape serves every retry site in the codebase — the
process-pool rebuild loop in :mod:`repro.exec.backend`, the watcher's
hot-swap retries in :mod:`repro.serving.watcher`, and client-side shed-load
retries against the daemon — so the knobs live in one place
(:class:`repro.core.config.SynthesisConfig`'s ``retry_*`` fields) and tests
can reason about exact delay sequences.

The jitter is **deterministic**: the multiplier for attempt *n* is a pure
function of ``(seed, n)``, so two runs with the same policy back off on the
same schedule.  Real deployments that want decorrelated replicas vary the
seed per process; tests that want reproducible chaos keep it fixed (the same
philosophy as :mod:`repro.faults.plan`).
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import Any

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff schedule + exception filter.

    ``attempts`` counts *retries* — a call guarded by this policy runs at most
    ``attempts + 1`` times.  Delays grow by ``multiplier`` from
    ``base_seconds``, are jittered by ±``jitter`` (a fraction, deterministic
    per attempt), and never exceed ``max_seconds``.
    """

    attempts: int = 3
    base_seconds: float = 0.05
    max_seconds: float = 2.0
    multiplier: float = 2.0
    #: Jitter amplitude as a fraction of the delay (0 disables).
    jitter: float = 0.1
    #: Seed of the deterministic jitter stream.
    seed: int = 0
    #: Exception types the policy retries; everything else propagates at once.
    retry_on: tuple[type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {self.attempts}")
        if self.base_seconds < 0:
            raise ValueError(f"base_seconds must be >= 0, got {self.base_seconds}")
        if self.max_seconds < self.base_seconds:
            raise ValueError(
                f"max_seconds ({self.max_seconds}) must be >= base_seconds "
                f"({self.base_seconds})"
            )
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    def retries(self, exc: BaseException) -> bool:
        """Whether the policy covers ``exc`` (the exception filter)."""
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int) -> float:
        """The backoff before retry ``attempt`` (counted from 1), in seconds.

        Deterministic: the jitter multiplier comes from ``(seed, attempt)``,
        not a shared RNG, so schedules replay exactly.
        """
        if attempt < 1:
            raise ValueError(f"attempt is counted from 1, got {attempt}")
        raw = self.base_seconds * self.multiplier ** (attempt - 1)
        if self.jitter:
            # str seeding hashes via SHA-512, stable across runs/processes.
            unit = random.Random(f"{self.seed}:retry:{attempt}").random()
            raw *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return min(raw, self.max_seconds)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule, one delay per allowed retry."""
        for attempt in range(1, self.attempts + 1):
            yield self.delay(attempt)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` under this policy: retry covered exceptions with backoff.

        ``sleep`` is injectable so tests assert the schedule without waiting;
        ``on_retry(attempt, exc)`` observes each retry (counters, logging).
        """
        attempt = 0
        while True:
            try:
                return fn()
            except BaseException as exc:
                attempt += 1
                if attempt > self.attempts or not self.retries(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt))
