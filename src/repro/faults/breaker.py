"""A per-generation circuit breaker for the serving daemon.

The classic three-state machine (closed → open → half-open), tuned for the
daemon's batch shape:

* **closed** — everything flows; per-request outcomes feed a bounded sliding
  window.  When the window holds at least ``min_requests`` outcomes and the
  error rate reaches ``error_threshold``, the breaker trips **open**.
* **open** — requests fail fast (the daemon rejects them with
  ``CircuitOpenError``) instead of burning workers on a generation that is
  answering wrong.  After ``cooldown_seconds`` the next request is admitted as
  a **half-open** probe.
* **half-open** — exactly one probe batch is in flight; its outcome decides:
  clean (error rate below threshold) closes the breaker and resets the
  window, errors re-open it for another cooldown.

``error_threshold <= 0`` disables the breaker entirely (the daemon's default:
per-request errors are already isolated in their envelopes, so tripping is an
explicit operator opt-in via ``SynthesisConfig.daemon_breaker_threshold``).

The breaker never *resolves* anything itself — it only gates admission — so a
wrongly-tripped breaker costs availability, never correctness.  All state is
lock-guarded; the clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Error-rate circuit breaker: closed → open → half-open probe → closed."""

    def __init__(
        self,
        *,
        error_threshold: float = 0.5,
        min_requests: int = 10,
        cooldown_seconds: float = 1.0,
        window: int = 128,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if error_threshold > 1.0:
            raise ValueError(
                f"error_threshold is a rate and must be <= 1, got {error_threshold}"
            )
        if min_requests < 1:
            raise ValueError(f"min_requests must be >= 1, got {min_requests}")
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {cooldown_seconds}"
            )
        if window < min_requests:
            raise ValueError(
                f"window ({window}) must be >= min_requests ({min_requests})"
            )
        self.error_threshold = error_threshold
        self.min_requests = min_requests
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        #: Sliding window of per-request outcomes (True = error).
        self._errors: deque[bool] = deque(maxlen=window)
        self._state = "closed"
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Times the breaker transitioned closed/half-open -> open.
        self.opened_count = 0
        #: Requests rejected while open (or while a probe was in flight).
        self.rejections = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """False when ``error_threshold <= 0`` (the breaker never trips)."""
        return self.error_threshold > 0.0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (``"disabled"`` if off)."""
        if not self.enabled:
            return "disabled"
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        # Lock held.  An open breaker whose cooldown elapsed reads as
        # half-open: the transition is realized by the next allow().
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            return "half-open"
        return self._state

    def _error_rate(self) -> float:
        # Lock held.
        if not self._errors:
            return 0.0
        return sum(self._errors) / len(self._errors)

    def allow(self) -> bool:
        """Admission decision for one batch (False = fail fast).

        The transition from open to half-open happens here: the first batch
        admitted after the cooldown becomes the probe, and further batches are
        rejected until :meth:`record` resolves it.
        """
        if not self.enabled:
            return True
        with self._lock:
            state = self._effective_state()
            if state == "closed":
                return True
            if state == "half-open":
                if self._state == "open":
                    self._state = "half-open"
                    self._probe_in_flight = False
                if self._probe_in_flight:
                    self.rejections += 1
                    return False
                self._probe_in_flight = True
                return True
            self.rejections += 1
            return False

    def record(self, ok: int, errors: int) -> bool:
        """Fold one batch's per-request outcomes in; True if the breaker tripped.

        In half-open state this resolves the probe: a clean batch closes the
        breaker (and resets the window), an errored one re-opens it.
        """
        if not self.enabled or (ok <= 0 and errors <= 0):
            return False
        with self._lock:
            if self._state == "half-open":
                self._probe_in_flight = False
                total = ok + errors
                if errors / total < max(self.error_threshold, 1e-9):
                    self._state = "closed"
                    self._errors.clear()
                    return False
                self._trip()
                return True
            self._errors.extend([False] * ok)
            self._errors.extend([True] * errors)
            if (
                self._state == "closed"
                and len(self._errors) >= self.min_requests
                and self._error_rate() >= self.error_threshold
            ):
                self._trip()
                return True
            return False

    def _trip(self) -> None:
        # Lock held.
        self._state = "open"
        self._opened_at = self._clock()
        self.opened_count += 1
        self._probe_in_flight = False

    def snapshot(self) -> dict[str, object]:
        """A consistent, JSON-able view for ``SynthesisDaemon.health()``."""
        if not self.enabled:
            return {"state": "disabled"}
        with self._lock:
            state = self._effective_state()
            return {
                "state": state,
                "error_rate": self._error_rate(),
                "window_size": len(self._errors),
                "error_threshold": self.error_threshold,
                "min_requests": self.min_requests,
                "cooldown_seconds": self.cooldown_seconds,
                "opened_count": self.opened_count,
                "rejections": self.rejections,
                "seconds_since_opened": (
                    self._clock() - self._opened_at if self.opened_count else None
                ),
            }
