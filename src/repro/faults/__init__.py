"""Fault tolerance and deterministic fault injection (chaos harness).

A serving system for millions of users must keep answering while workers
crash, publishes fail, and bytes rot — and the only way to *prove* it does is
to inject those failures on a reproducible schedule.  This package holds both
halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultInjector`: a
  seeded, deterministic fault schedule (worker crashes, injected task errors,
  slow calls, corrupted publishes, failed publishes) consulted at hook points
  in :mod:`repro.exec` and :mod:`repro.serving.watcher`.  Activation is
  process-global (:func:`injected_faults`); ``REPRO_FAULT_SEED`` pins the CI
  chaos leg's schedule.
* :mod:`repro.faults.retry` — :class:`RetryPolicy`: capped exponential
  backoff with deterministic jitter and an exception filter, shared by the
  process-pool rebuild loop, the watcher's hot-swap retries, and client-side
  shed-load retries.
* :mod:`repro.faults.breaker` — :class:`CircuitBreaker`: the per-generation
  closed → open → half-open admission gate the serving daemon uses to fail
  fast on a generation whose error rate spikes.

The invariant every recovery path preserves: **results are byte-identical to
the fault-free run**.  Retries re-run pure tasks; degradations land on the
serial oracle; the watcher pins the last good generation rather than serving
damaged bytes.  Faults move latency and placement, never answers.
"""

from repro.faults.breaker import CircuitBreaker
from repro.faults.plan import (
    FAULT_SEED_ENV_VAR,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    activate,
    active_injector,
    deactivate,
    injected_faults,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FAULT_SEED_ENV_VAR",
    "FaultPlan",
    "FaultInjector",
    "InjectedFault",
    "RetryPolicy",
    "CircuitBreaker",
    "activate",
    "deactivate",
    "active_injector",
    "injected_faults",
]
