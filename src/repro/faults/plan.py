"""Seeded, deterministic fault injection for chaos-testing the pipeline.

Production failures — a worker process OOM-killed mid-chunk, a transient
exception in a task, bytes corrupted between writer and reader, a publish that
never lands — are exactly the events ordinary tests cannot reproduce on
demand.  This module makes them *schedulable*: a :class:`FaultPlan` states the
per-site fault rates, and a :class:`FaultInjector` turns the plan into a
deterministic decision stream.

Determinism is the whole design: each injection **site** ("worker_crash",
"task_error", ...) keeps its own occurrence counter, and the decision for
occurrence *n* at a site is a pure function of ``(seed, site, n)`` — not of a
shared RNG whose state would depend on thread interleaving.  Two runs that
dispatch the same work in the same order draw the same faults, so a chaos test
that fails replays byte-for-byte from its seed.

The injector is consulted at well-defined hook points:

* :mod:`repro.exec` pool backends ask at **dispatch time** (in the submitting
  thread, in submission order) whether to crash the worker, raise an
  :class:`InjectedFault`, or delay the task;
* :class:`repro.serving.watcher.ArtifactWatcher` asks per reload candidate
  whether the publish "failed" or the bytes arrived corrupted.

Sites that sit on the **recovery** path — the serial oracle, a backend's
degraded inline completion, the daemon's in-process serving fallback — are
deliberately not injected, so every degradation lands somewhere that works.

Activation is process-global (:func:`activate` / :func:`deactivate`, or the
:func:`injected_faults` context manager), mirroring how real faults arrive:
ambiently, not through an argument.  ``REPRO_FAULT_SEED`` supplies the default
plan seed so CI chaos legs pin one reproducible schedule.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FAULT_SEED_ENV_VAR",
    "InjectedFault",
    "FaultPlan",
    "FaultInjector",
    "activate",
    "deactivate",
    "active_injector",
    "injected_faults",
]

#: Environment variable supplying the default :attr:`FaultPlan.seed` — the hook
#: the CI chaos leg uses to pin one reproducible fault schedule per run.
FAULT_SEED_ENV_VAR = "REPRO_FAULT_SEED"


class InjectedFault(RuntimeError):
    """A deliberately injected transient failure.

    Raised *inside* a task wrapped by a fault-injecting backend.  It models the
    transient class of production error (connection reset, overloaded
    downstream), so retry filters treat it as retryable by default.
    """


def default_seed() -> int:
    """The plan seed from ``REPRO_FAULT_SEED`` (0 when unset or malformed)."""
    raw = os.environ.get(FAULT_SEED_ENV_VAR, "").strip()
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


@dataclass(frozen=True)
class FaultPlan:
    """The schedule of faults to inject, as independent per-site rates.

    All rates are probabilities in ``[0, 1]`` evaluated independently per
    occurrence.  ``seed=None`` (the default) resolves the seed from
    ``REPRO_FAULT_SEED`` at construction, so a test suite run under the CI
    chaos leg replays the leg's exact schedule.
    """

    #: Seed of the decision stream; ``None`` resolves ``REPRO_FAULT_SEED``.
    seed: int | None = None
    #: Probability a process-pool dispatch kills its worker (``os._exit``),
    #: breaking the pool — the :class:`BrokenProcessPool` recovery path.
    worker_crash_rate: float = 0.0
    #: Probability a pooled task raises :class:`InjectedFault` instead of
    #: returning — the transient-exception retry path.
    task_error_rate: float = 0.0
    #: Probability a pooled task is delayed by :attr:`slow_call_seconds`.
    slow_call_rate: float = 0.0
    #: Injected delay for slow calls, in seconds.
    slow_call_seconds: float = 0.005
    #: Probability a watcher reload candidate is treated as a failed publish.
    publish_failure_rate: float = 0.0
    #: Probability a watcher reload candidate's bytes are corrupted (a
    #: deterministic byte flip) before validation.
    corrupt_publish_rate: float = 0.0
    #: Probability a delta-log append tears mid-record and raises (the torn
    #: tail is truncated away on the next open, like a crashed writer).
    delta_append_failure_rate: float = 0.0
    #: Probability a delta-log record's bytes are corrupted (a deterministic
    #: byte flip) on the way to disk — replay must stop at the damaged record.
    corrupt_delta_rate: float = 0.0
    #: Probability a cluster transport send hits a connection reset (the
    #: :class:`repro.net.RemoteReplica` tears its connection down and raises
    #: ``ConnectionResetError`` — the router's failover path).
    conn_reset_rate: float = 0.0
    #: Probability a cluster transport response is torn mid-frame (connection
    #: cut after the request went out; raises
    #: :class:`repro.net.TornFrameError`).
    torn_frame_rate: float = 0.0
    #: Probability a cluster transport send stalls for
    #: :attr:`slow_network_seconds` first — the stall consumes the request's
    #: remaining deadline budget exactly like real network latency.
    slow_network_rate: float = 0.0
    #: Injected network stall, in seconds.
    slow_network_seconds: float = 0.01
    #: Hard cap on total injected faults (``None`` = unlimited).  Lets a chaos
    #: test guarantee eventual success no matter the rates.
    max_faults: int | None = None

    def __post_init__(self) -> None:
        for name in (
            "worker_crash_rate",
            "task_error_rate",
            "slow_call_rate",
            "publish_failure_rate",
            "corrupt_publish_rate",
            "delta_append_failure_rate",
            "corrupt_delta_rate",
            "conn_reset_rate",
            "torn_frame_rate",
            "slow_network_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_call_seconds < 0:
            raise ValueError(
                f"slow_call_seconds must be >= 0, got {self.slow_call_seconds}"
            )
        if self.slow_network_seconds < 0:
            raise ValueError(
                f"slow_network_seconds must be >= 0, got {self.slow_network_seconds}"
            )
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError(f"max_faults must be >= 0, got {self.max_faults}")
        if self.seed is None:
            object.__setattr__(self, "seed", default_seed())


class FaultInjector:
    """Turns a :class:`FaultPlan` into a deterministic decision stream.

    Thread-safe: the per-site occurrence counters are lock-guarded, and the
    decision for occurrence *n* at a site depends only on ``(seed, site, n)``
    — never on calls made at other sites or from other threads.
    :attr:`injected` records how many faults each site actually injected, so
    tests (and :meth:`repro.serving.SynthesisDaemon.health`) can assert the
    chaos really happened.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        #: site -> decisions drawn (every consultation at an active site).
        self.drawn: dict[str, int] = {}
        #: site -> faults injected (positive decisions only).
        self.injected: dict[str, int] = {}
        self._lock = threading.Lock()

    @property
    def total_injected(self) -> int:
        """Total faults injected across every site."""
        with self._lock:
            return sum(self.injected.values())

    def decide(self, site: str, rate: float) -> bool:
        """One deterministic draw at ``site`` with probability ``rate``.

        Rate-0 sites return False without consuming an occurrence, so enabling
        one fault kind never shifts another kind's schedule.
        """
        if rate <= 0.0:
            return False
        with self._lock:
            if (
                self.plan.max_faults is not None
                and sum(self.injected.values()) >= self.plan.max_faults
            ):
                return False
            occurrence = self.drawn.get(site, 0)
            self.drawn[site] = occurrence + 1
            # str seeding hashes via SHA-512 (not PYTHONHASHSEED), so the draw
            # is stable across processes and interpreter runs.
            hit = (
                rate >= 1.0
                or random.Random(f"{self.plan.seed}:{site}:{occurrence}").random()
                < rate
            )
            if hit:
                self.injected[site] = self.injected.get(site, 0) + 1
            return hit

    # -- Site conveniences (one per FaultPlan rate) -------------------------------------
    def worker_crash(self) -> bool:
        """Should this process-pool dispatch kill its worker?"""
        return self.decide("worker_crash", self.plan.worker_crash_rate)

    def task_error(self) -> bool:
        """Should this pooled task raise :class:`InjectedFault`?"""
        return self.decide("task_error", self.plan.task_error_rate)

    def slow_call(self) -> float:
        """Injected delay (seconds) for this pooled task, or 0.0."""
        if self.decide("slow_call", self.plan.slow_call_rate):
            return self.plan.slow_call_seconds
        return 0.0

    def publish_failure(self) -> bool:
        """Should this watcher reload candidate be treated as a failed publish?"""
        return self.decide("publish_failure", self.plan.publish_failure_rate)

    def corrupt_publish(self) -> bool:
        """Should this watcher reload candidate's bytes be corrupted?"""
        return self.decide("corrupt_publish", self.plan.corrupt_publish_rate)

    def delta_append_failure(self) -> bool:
        """Should this delta-log append tear mid-record and raise?"""
        return self.decide(
            "delta_append_failure", self.plan.delta_append_failure_rate
        )

    def corrupt_delta(self) -> bool:
        """Should this delta-log record's bytes be corrupted on the way to disk?"""
        return self.decide("corrupt_delta", self.plan.corrupt_delta_rate)

    def conn_reset(self) -> bool:
        """Should this cluster transport send hit a connection reset?"""
        return self.decide("conn_reset", self.plan.conn_reset_rate)

    def torn_frame(self) -> bool:
        """Should this cluster transport response be torn mid-frame?"""
        return self.decide("torn_frame", self.plan.torn_frame_rate)

    def slow_network(self) -> float:
        """Injected network stall (seconds) for this transport send, or 0.0."""
        if self.decide("slow_network", self.plan.slow_network_rate):
            return self.plan.slow_network_seconds
        return 0.0

    def corrupt(self, data: bytes) -> bytes:
        """Flip one deterministic byte of ``data`` (position from the seed).

        The flipped copy always differs from the input (XOR with a non-zero
        mask), so checksum validation is guaranteed to see damage.
        """
        if not data:
            return data
        with self._lock:
            occurrence = self.drawn.get("corrupt_byte", 0)
            self.drawn["corrupt_byte"] = occurrence + 1
        position = random.Random(
            f"{self.plan.seed}:corrupt_byte:{occurrence}"
        ).randrange(len(data))
        damaged = bytearray(data)
        damaged[position] ^= 0xFF
        return bytes(damaged)

    def snapshot(self) -> dict[str, object]:
        """Counters for reporting: total + per-site injected/drawn."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "total_injected": sum(self.injected.values()),
                "injected": dict(self.injected),
                "drawn": dict(self.drawn),
            }


# ---------------------------------------------------------------------------------------
# Process-global activation
# ---------------------------------------------------------------------------------------
_active_lock = threading.Lock()
_active: FaultInjector | None = None


def activate(plan_or_injector: FaultPlan | FaultInjector) -> FaultInjector:
    """Install an injector as the process-wide active one and return it."""
    global _active
    injector = (
        plan_or_injector
        if isinstance(plan_or_injector, FaultInjector)
        else FaultInjector(plan_or_injector)
    )
    with _active_lock:
        _active = injector
    return injector


def deactivate() -> None:
    """Remove the active injector (idempotent)."""
    global _active
    with _active_lock:
        _active = None


def active_injector() -> FaultInjector | None:
    """The process-wide active injector, or ``None`` when chaos is off."""
    return _active


@contextmanager
def injected_faults(plan: FaultPlan | FaultInjector) -> Iterator[FaultInjector]:
    """Scope an active injector to a ``with`` block (restores the previous one)."""
    global _active
    with _active_lock:
        previous = _active
    injector = activate(plan)
    try:
        yield injector
    finally:
        with _active_lock:
            _active = previous
