"""Exact solvers and checkers for the Table-Synthesis problem on small graphs.

Problem 11 is NP-hard in general (reduction from multi-cut, Appendix C), but small
instances can be solved exactly by enumerating set partitions.  The exact solver is
used in tests to validate the greedy heuristic of Algorithm 3 and in the ablation
benches that compare solution quality on small components.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph
from repro.graph.partition import Partition, PartitionResult

__all__ = ["partition_objective", "is_feasible_partition", "exact_partition"]

_MAX_EXACT_VERTICES = 12


def partition_objective(
    graph: CompatibilityGraph, partitions: list[frozenset[int]] | list[Partition]
) -> float:
    """Sum of intra-partition positive edge weights (Equation 5)."""
    groups = [
        partition.vertices if isinstance(partition, Partition) else frozenset(partition)
        for partition in partitions
    ]
    total = 0.0
    for group in groups:
        members = sorted(group)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                total += graph.positive(members[i], members[j])
    return total


def is_feasible_partition(
    graph: CompatibilityGraph,
    partitions: list[frozenset[int]] | list[Partition],
    config: SynthesisConfig | None = None,
) -> bool:
    """Check the hard constraint: no intra-partition negative edge below ``τ``.

    Also checks that the partitioning is a proper disjoint cover of all vertices
    (Equations 6–8).
    """
    config = config or SynthesisConfig()
    groups = [
        partition.vertices if isinstance(partition, Partition) else frozenset(partition)
        for partition in partitions
    ]
    covered: set[int] = set()
    for group in groups:
        if covered & group:
            return False
        covered |= group
    if covered != set(range(graph.num_vertices)):
        return False
    if not config.use_negative_edges:
        return True
    for group in groups:
        members = sorted(group)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                if graph.negative(members[i], members[j]) < config.conflict_threshold:
                    return False
    return True


def _set_partitions(items: list[int]) -> Iterator[list[list[int]]]:
    """Enumerate all set partitions of ``items`` (Bell-number many)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for smaller in _set_partitions(rest):
        # Put `first` into an existing block...
        for index in range(len(smaller)):
            yield smaller[:index] + [[first] + smaller[index]] + smaller[index + 1:]
        # ...or into its own block.
        yield [[first]] + smaller


def exact_partition(
    graph: CompatibilityGraph, config: SynthesisConfig | None = None
) -> PartitionResult:
    """Solve Problem 11 exactly by enumeration (only feasible for tiny graphs).

    Raises
    ------
    ValueError
        If the graph has more than 12 vertices (Bell(13) ≈ 27M partitions).
    """
    config = config or SynthesisConfig()
    if graph.num_vertices > _MAX_EXACT_VERTICES:
        raise ValueError(
            f"exact_partition only supports up to {_MAX_EXACT_VERTICES} vertices, "
            f"got {graph.num_vertices}"
        )
    vertices = list(range(graph.num_vertices))
    best_groups: list[frozenset[int]] = [frozenset({vertex}) for vertex in vertices]
    best_objective = partition_objective(graph, best_groups)
    for candidate in _set_partitions(vertices):
        groups = [frozenset(block) for block in candidate]
        if not is_feasible_partition(graph, groups, config):
            continue
        objective = partition_objective(graph, groups)
        if objective > best_objective:
            best_objective = objective
            best_groups = groups
    partitions = [Partition(group) for group in best_groups]
    partitions.sort(key=lambda partition: (-len(partition), sorted(partition.vertices)))
    return PartitionResult(partitions=partitions, objective=best_objective)
