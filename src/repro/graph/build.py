"""Sparse compatibility-graph construction (paper §4.1 "Efficiency").

Scoring all ``O(N²)`` table pairs is infeasible, but most pairs share no values at
all and would score zero.  The builder therefore blocks candidate pairs with an
inverted index: pairs of tables are scored for ``w+`` only if they share at least
``θ_overlap`` exact (normalized) value pairs, and for ``w−`` only if they share at
least ``θ_overlap`` left-hand-side values.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.compatibility import CompatibilityScorer
from repro.graph.connected import connected_components
from repro.text.synonyms import SynonymDictionary

__all__ = ["CompatibilityGraph", "GraphBuilder"]


@dataclass
class CompatibilityGraph:
    """A weighted graph over candidate binary tables.

    Vertices are table indices into :attr:`tables`; edges are stored as dictionaries
    keyed by the ordered index pair ``(i, j)`` with ``i < j``.
    """

    tables: list[BinaryTable]
    positive_edges: dict[tuple[int, int], float] = field(default_factory=dict)
    negative_edges: dict[tuple[int, int], float] = field(default_factory=dict)

    @staticmethod
    def _key(first: int, second: int) -> tuple[int, int]:
        return (first, second) if first < second else (second, first)

    # -- Accessors --------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (candidate tables)."""
        return len(self.tables)

    @property
    def num_positive_edges(self) -> int:
        """Number of positive edges."""
        return len(self.positive_edges)

    @property
    def num_negative_edges(self) -> int:
        """Number of negative edges."""
        return len(self.negative_edges)

    def positive(self, first: int, second: int) -> float:
        """Positive weight between two vertices (0 if absent)."""
        return self.positive_edges.get(self._key(first, second), 0.0)

    def negative(self, first: int, second: int) -> float:
        """Negative weight between two vertices (0 if absent)."""
        return self.negative_edges.get(self._key(first, second), 0.0)

    def add_positive(self, first: int, second: int, weight: float) -> None:
        """Add (or overwrite) a positive edge."""
        if first == second:
            raise ValueError("self-loops are not allowed")
        if weight < 0:
            raise ValueError(f"positive weight must be >= 0, got {weight}")
        self.positive_edges[self._key(first, second)] = weight

    def add_negative(self, first: int, second: int, weight: float) -> None:
        """Add (or overwrite) a negative edge."""
        if first == second:
            raise ValueError("self-loops are not allowed")
        if weight > 0:
            raise ValueError(f"negative weight must be <= 0, got {weight}")
        self.negative_edges[self._key(first, second)] = weight

    def neighbors(self, vertex: int) -> set[int]:
        """Vertices connected to ``vertex`` by either kind of edge."""
        result: set[int] = set()
        for (a, b) in self.positive_edges:
            if a == vertex:
                result.add(b)
            elif b == vertex:
                result.add(a)
        for (a, b) in self.negative_edges:
            if a == vertex:
                result.add(b)
            elif b == vertex:
                result.add(a)
        return result

    def positive_components(self) -> list[list[int]]:
        """Connected components induced by positive edges only (Appendix F)."""
        return connected_components(range(self.num_vertices), self.positive_edges.keys())

    def subgraph(self, vertices: list[int]) -> "CompatibilityGraph":
        """Return the induced subgraph on ``vertices`` (indices are re-numbered)."""
        index_of = {vertex: position for position, vertex in enumerate(vertices)}
        sub = CompatibilityGraph(tables=[self.tables[vertex] for vertex in vertices])
        for (a, b), weight in self.positive_edges.items():
            if a in index_of and b in index_of:
                sub.add_positive(index_of[a], index_of[b], weight)
        for (a, b), weight in self.negative_edges.items():
            if a in index_of and b in index_of:
                sub.add_negative(index_of[a], index_of[b], weight)
        return sub


class GraphBuilder:
    """Builds the sparse compatibility graph from candidate tables."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
        scorer: CompatibilityScorer | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.scorer = scorer or CompatibilityScorer(self.config, synonyms)

    # -- Blocking --------------------------------------------------------------------
    def _candidate_pairs_by_value_pair(
        self, tables: list[BinaryTable]
    ) -> dict[tuple[int, int], int]:
        """Block on exact normalized value pairs; returns shared-pair counts."""
        matcher = self.scorer.matcher
        posting: dict[tuple[str, str], list[int]] = defaultdict(list)
        for index, table in enumerate(tables):
            keys = {
                (matcher.match_key(p.left), matcher.match_key(p.right))
                for p in table.pairs
            }
            for key in keys:
                posting[key].append(index)
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for indices in posting.values():
            if len(indices) < 2:
                continue
            for i in range(len(indices)):
                for j in range(i + 1, len(indices)):
                    counts[(indices[i], indices[j])] += 1
        return counts

    def _candidate_pairs_by_left_value(
        self, tables: list[BinaryTable]
    ) -> dict[tuple[int, int], int]:
        """Block on exact normalized left values; returns shared-left counts."""
        matcher = self.scorer.matcher
        posting: dict[str, list[int]] = defaultdict(list)
        for index, table in enumerate(tables):
            keys = {matcher.match_key(p.left) for p in table.pairs}
            for key in keys:
                posting[key].append(index)
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for indices in posting.values():
            if len(indices) < 2:
                continue
            for i in range(len(indices)):
                for j in range(i + 1, len(indices)):
                    counts[(indices[i], indices[j])] += 1
        return counts

    # -- Public API --------------------------------------------------------------------
    def build(self, tables: list[BinaryTable]) -> CompatibilityGraph:
        """Score blocked table pairs and assemble the compatibility graph.

        Positive edges below ``θ_edge`` are dropped; negative edges are kept with
        their raw weight (the partitioner applies the τ threshold).
        """
        graph = CompatibilityGraph(tables=list(tables))
        pair_counts = self._candidate_pairs_by_value_pair(graph.tables)
        left_counts = self._candidate_pairs_by_left_value(graph.tables)

        overlap = self.config.overlap_threshold
        positive_candidates = {
            pair for pair, count in pair_counts.items() if count >= overlap
        }
        negative_candidates = {
            pair for pair, count in left_counts.items() if count >= overlap
        }

        for first, second in sorted(positive_candidates):
            weight = self.scorer.positive(graph.tables[first], graph.tables[second])
            if weight >= self.config.edge_threshold:
                graph.add_positive(first, second, weight)

        if self.config.use_negative_edges:
            for first, second in sorted(negative_candidates):
                weight = self.scorer.negative(graph.tables[first], graph.tables[second])
                if weight < 0.0:
                    graph.add_negative(first, second, weight)
        return graph
