"""Sparse compatibility-graph construction (paper §4.1 "Efficiency").

Scoring all ``O(N²)`` table pairs is infeasible, but most pairs share no values at
all and would score zero.  The builder therefore blocks candidate pairs with an
inverted index: pairs of tables are scored for ``w+`` only if they share at least
``θ_overlap`` exact (normalized) value pairs, and for ``w−`` only if they share at
least ``θ_overlap`` left-hand-side values.

The build itself is engineered as a fast path:

* every table is profiled exactly once (:mod:`repro.graph.profile`) and both
  blocking passes read the profile key sets instead of re-normalizing values;
* blocked pairs that survive both filters are scored in a single fused pass that
  produces ``w+`` and ``w−`` together;
* when :attr:`SynthesisConfig.executor` selects a parallel backend (or the
  deprecated ``num_workers`` shim maps onto one), blocked pairs fan out across
  a :mod:`repro.exec` execution backend — threads share this builder's scorer,
  processes rebuild per-worker scorer state through a spawn-safe initializer.
  Scoring is a pure function of the pair, so every backend is deterministic
  and bit-identical to the serial path.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.exec.fanout import FanOut
from repro.graph.compatibility import CompatibilityScorer
from repro.graph.connected import connected_components
from repro.graph.profile import TableProfile
from repro.text.synonyms import SynonymDictionary

__all__ = ["CompatibilityGraph", "GraphBuilder", "BuildStats"]


@dataclass
class CompatibilityGraph:
    """A weighted graph over candidate binary tables.

    Vertices are table indices into :attr:`tables`; edges are stored as dictionaries
    keyed by the ordered index pair ``(i, j)`` with ``i < j``.  An adjacency map is
    maintained alongside the edge dictionaries so neighborhood queries do not scan
    every edge.
    """

    tables: list[BinaryTable]
    positive_edges: dict[tuple[int, int], float] = field(default_factory=dict)
    negative_edges: dict[tuple[int, int], float] = field(default_factory=dict)
    _adjacency: dict[int, set[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for first, second in self.positive_edges:
            self._link(first, second)
        for first, second in self.negative_edges:
            self._link(first, second)

    @staticmethod
    def _key(first: int, second: int) -> tuple[int, int]:
        return (first, second) if first < second else (second, first)

    def _link(self, first: int, second: int) -> None:
        self._adjacency.setdefault(first, set()).add(second)
        self._adjacency.setdefault(second, set()).add(first)

    # -- Accessors --------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (candidate tables)."""
        return len(self.tables)

    @property
    def num_positive_edges(self) -> int:
        """Number of positive edges."""
        return len(self.positive_edges)

    @property
    def num_negative_edges(self) -> int:
        """Number of negative edges."""
        return len(self.negative_edges)

    def positive(self, first: int, second: int) -> float:
        """Positive weight between two vertices (0 if absent)."""
        return self.positive_edges.get(self._key(first, second), 0.0)

    def negative(self, first: int, second: int) -> float:
        """Negative weight between two vertices (0 if absent)."""
        return self.negative_edges.get(self._key(first, second), 0.0)

    def add_positive(self, first: int, second: int, weight: float) -> None:
        """Add (or overwrite) a positive edge."""
        if first == second:
            raise ValueError("self-loops are not allowed")
        if weight < 0:
            raise ValueError(f"positive weight must be >= 0, got {weight}")
        self.positive_edges[self._key(first, second)] = weight
        self._link(first, second)

    def add_negative(self, first: int, second: int, weight: float) -> None:
        """Add (or overwrite) a negative edge."""
        if first == second:
            raise ValueError("self-loops are not allowed")
        if weight > 0:
            raise ValueError(f"negative weight must be <= 0, got {weight}")
        self.negative_edges[self._key(first, second)] = weight
        self._link(first, second)

    def neighbors(self, vertex: int) -> set[int]:
        """Vertices connected to ``vertex`` by either kind of edge."""
        return set(self._adjacency.get(vertex, ()))

    def positive_components(self) -> list[list[int]]:
        """Connected components induced by positive edges only (Appendix F)."""
        return connected_components(range(self.num_vertices), self.positive_edges.keys())

    def subgraph(self, vertices: list[int]) -> "CompatibilityGraph":
        """Return the induced subgraph on ``vertices`` (indices are re-numbered)."""
        index_of = {vertex: position for position, vertex in enumerate(vertices)}
        sub = CompatibilityGraph(tables=[self.tables[vertex] for vertex in vertices])
        for (a, b), weight in self.positive_edges.items():
            if a in index_of and b in index_of:
                sub.add_positive(index_of[a], index_of[b], weight)
        for (a, b), weight in self.negative_edges.items():
            if a in index_of and b in index_of:
                sub.add_negative(index_of[a], index_of[b], weight)
        return sub


@dataclass
class BuildStats:
    """Counters describing the most recent :meth:`GraphBuilder.build` call."""

    num_tables: int = 0
    pairs_blocked_positive: int = 0
    pairs_blocked_negative: int = 0
    pairs_scored: int = 0
    pairs_reused: int = 0
    match_cache_hits: int = 0
    match_cache_misses: int = 0
    num_workers: int = 1
    executor: str = "serial"
    parallel_fallback: bool = False

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memoized ``matches()`` lookups answered from cache.

        Exact for serial and process builds; for ``thread:`` builds the
        underlying counters are a close lower bound (worker threads share the
        scorer and its unguarded counter increments can interleave).
        """
        total = self.match_cache_hits + self.match_cache_misses
        return self.match_cache_hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view for reporting artifacts."""
        return {
            "num_tables": self.num_tables,
            "pairs_blocked_positive": self.pairs_blocked_positive,
            "pairs_blocked_negative": self.pairs_blocked_negative,
            "pairs_scored": self.pairs_scored,
            "pairs_reused": self.pairs_reused,
            "match_cache_hits": self.match_cache_hits,
            "match_cache_misses": self.match_cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "num_workers": self.num_workers,
            "executor": self.executor,
            "parallel_fallback": self.parallel_fallback,
        }


# -- Process-pool scoring workers -------------------------------------------------------
# Each worker builds its own scorer and profiles once (via the pool initializer) and
# then scores chunks of blocked pairs.  Scoring is deterministic, so fan-out cannot
# change the resulting graph.
_WORKER_SCORER: CompatibilityScorer | None = None
_WORKER_PROFILES: list[TableProfile] = []


def _init_scoring_worker(
    tables: list[BinaryTable],
    config: SynthesisConfig,
    synonyms: SynonymDictionary | None,
) -> None:
    global _WORKER_SCORER, _WORKER_PROFILES
    _WORKER_SCORER = CompatibilityScorer(config, synonyms)
    _WORKER_PROFILES = [_WORKER_SCORER.profile(table) for table in tables]


def _score_pair_chunk(
    chunk: list[tuple[int, int, bool, bool, int, int]],
) -> tuple[list[tuple[int, int, float, float]], int, int]:
    assert _WORKER_SCORER is not None
    # Workers process several chunks; report per-chunk deltas, not the worker's
    # running totals, so summing chunk results doesn't over-count.
    hits_before = _WORKER_SCORER.match_cache_hits
    misses_before = _WORKER_SCORER.match_cache_misses
    results = [
        task[:2] + _score_one(_WORKER_SCORER, _WORKER_PROFILES, task) for task in chunk
    ]
    return (
        results,
        _WORKER_SCORER.match_cache_hits - hits_before,
        _WORKER_SCORER.match_cache_misses - misses_before,
    )


def _score_one(
    scorer: CompatibilityScorer,
    profiles: list[TableProfile],
    task: tuple[int, int, bool, bool, int, int],
) -> tuple[float, float]:
    """Score one blocked pair, computing only the sides the blocking asked for."""
    first, second, need_positive, need_negative, shared_pairs, shared_lefts = task
    first_profile, second_profile = profiles[first], profiles[second]
    if need_positive and need_negative:
        scores = scorer.score_profiles(
            first_profile,
            second_profile,
            shared_pairs=shared_pairs,
            shared_lefts=shared_lefts,
        )
        return scores.positive, scores.negative
    if need_positive:
        return scorer.positive_profiles(first_profile, second_profile), 0.0
    return 0.0, scorer.negative_profiles(first_profile, second_profile)


class GraphBuilder:
    """Builds the sparse compatibility graph from candidate tables."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
        scorer: CompatibilityScorer | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.scorer = scorer or CompatibilityScorer(self.config, synonyms)
        self.last_build_stats = BuildStats()

    # -- Blocking --------------------------------------------------------------------
    @staticmethod
    def _pair_counts_from_postings(
        postings: Iterable[Iterable[int]],
    ) -> dict[tuple[int, int], int]:
        """Count co-occurrences of table indices across inverted-index postings.

        ``postings`` yields, for each indexed key, the sorted table indices whose
        key set contains it; the result maps each index pair to the number of keys
        they share.
        """
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for indices in postings:
            indices = list(indices)
            if len(indices) < 2:
                continue
            for i in range(len(indices)):
                first = indices[i]
                for j in range(i + 1, len(indices)):
                    counts[(first, indices[j])] += 1
        return counts

    def _candidate_pairs_by_value_pair(
        self, tables: list[BinaryTable]
    ) -> dict[tuple[int, int], int]:
        """Block on exact normalized value pairs; returns shared-pair counts."""
        posting: dict[tuple[str, str], list[int]] = defaultdict(list)
        for index, table in enumerate(tables):
            for key in self.scorer.profile(table).pair_keys:
                posting[key].append(index)
        return self._pair_counts_from_postings(posting.values())

    def _candidate_pairs_by_left_value(
        self, tables: list[BinaryTable]
    ) -> dict[tuple[int, int], int]:
        """Block on exact normalized left values; returns shared-left counts."""
        posting: dict[str, list[int]] = defaultdict(list)
        for index, table in enumerate(tables):
            for key in self.scorer.profile(table).left_key_set:
                posting[key].append(index)
        return self._pair_counts_from_postings(posting.values())

    # -- Scoring ---------------------------------------------------------------------
    def _score_blocked_pairs(
        self, tables: list[BinaryTable], tasks: list[tuple[int, int, bool, bool, int, int]]
    ) -> dict[tuple[int, int], tuple[float, float]]:
        """Score blocked pairs, fanning out across the configured backend."""
        fan = FanOut(self.config.effective_executor(default_kind="process"))
        if fan.should_fan_out(len(tasks)) and (
            # Thread workers share this builder's scorer object, so an injected
            # scorer subclass is fine there; process workers rebuild a plain
            # CompatibilityScorer from config and would silently mis-mirror a
            # subclass, so they require the stock scorer.
            fan.kind == "thread"
            or type(self.scorer) is CompatibilityScorer
        ):
            results = self._score_with_backend(fan, tables, tasks)
            if results is not None:
                return results
            # Pools can fail for environmental reasons (pickling, sandboxing,
            # missing /dev/shm); the sequential path computes the same result.
            # The flag keeps the degradation observable in stats and tests.
            self.last_build_stats.parallel_fallback = True
        results: dict[tuple[int, int], tuple[float, float]] = {}
        hits_before = self.scorer.match_cache_hits
        misses_before = self.scorer.match_cache_misses
        profiles = [self.scorer.profile(table) for table in tables]
        for task in tasks:
            results[task[:2]] = _score_one(self.scorer, profiles, task)
        self.last_build_stats.match_cache_hits = (
            self.scorer.match_cache_hits - hits_before
        )
        self.last_build_stats.match_cache_misses = (
            self.scorer.match_cache_misses - misses_before
        )
        self.last_build_stats.num_workers = 1
        self.last_build_stats.executor = "serial"
        return results

    def _score_with_backend(
        self,
        fan: FanOut,
        tables: list[BinaryTable],
        tasks: list[tuple[int, int, bool, bool, int, int]],
    ) -> dict[tuple[int, int], tuple[float, float]] | None:
        """Fan chunks of blocked pairs across a :mod:`repro.exec` backend.

        Results are keyed by the ``(first, second)`` pair each chunk entry
        carries, so the unordered completion order cannot change the graph.
        Returns ``None`` (with ``fan.fallback`` set) when the pool fails and
        the caller must score sequentially.
        """
        chunks = fan.chunk(tasks)
        results: dict[tuple[int, int], tuple[float, float]] = {}
        hits = misses = 0
        if fan.kind == "thread":
            # Threads score on this builder's own scorer: its verdict memo is
            # deterministic (pure function of the value pair), so concurrent
            # fills converge on identical entries.  Cache counters are read as
            # one before/after delta because per-chunk deltas would interleave;
            # the scorer's unguarded `+= 1` can drop increments under thread
            # interleaving, so thread-mode hit/miss *stats* are a close lower
            # bound (locking the hot path for exact accounting isn't worth it
            # — the graph itself is exact regardless).
            profiles = [self.scorer.profile(table) for table in tables]
            hits_before = self.scorer.match_cache_hits
            misses_before = self.scorer.match_cache_misses

            def run_chunk(chunk):
                return [
                    task[:2] + _score_one(self.scorer, profiles, task)
                    for task in chunk
                ]

            chunk_outputs = fan.run_unordered(run_chunk, chunks)
            if chunk_outputs is None:
                return None
            for chunk_results in chunk_outputs:
                for first, second, positive, negative in chunk_results:
                    results[(first, second)] = (positive, negative)
            hits = self.scorer.match_cache_hits - hits_before
            misses = self.scorer.match_cache_misses - misses_before
        else:
            # Process (or custom) workers build their own scorer and profiles
            # once via the spawn-safe initializer and then score picklable
            # task envelopes.  Workers must mirror the *scorer* doing the
            # sequential scoring, which an injected scorer may configure
            # differently from the builder.
            chunk_outputs = fan.run_unordered(
                _score_pair_chunk,
                chunks,
                initializer=_init_scoring_worker,
                initargs=(tables, self.scorer.config, self.scorer.synonyms),
            )
            if chunk_outputs is None:
                return None
            for chunk_results, chunk_hits, chunk_misses in chunk_outputs:
                hits += chunk_hits
                misses += chunk_misses
                for first, second, positive, negative in chunk_results:
                    results[(first, second)] = (positive, negative)
        self.last_build_stats.match_cache_hits = hits
        self.last_build_stats.match_cache_misses = misses
        self.last_build_stats.num_workers = fan.workers
        self.last_build_stats.executor = fan.spec
        return results

    # -- Public API --------------------------------------------------------------------
    def build(
        self,
        tables: list[BinaryTable],
        *,
        reusable_scores: dict[tuple[str, str], tuple[float, float]] | None = None,
        reusable_ids: set[str] | None = None,
    ) -> CompatibilityGraph:
        """Score blocked table pairs and assemble the compatibility graph.

        Positive edges below ``θ_edge`` are dropped; negative edges are kept with
        their raw weight (the partitioner applies the τ threshold).  The blocking
        overlap counts double as the pairs' ``shared_pairs`` / ``shared_lefts``
        values, so nothing is recomputed during scoring.

        ``reusable_scores`` / ``reusable_ids`` support incremental maintenance
        (:mod:`repro.store.incremental`): a blocked pair whose *both* table ids
        are in ``reusable_ids`` takes its ``(w+, w−)`` from ``reusable_scores``
        (keyed by the sorted table-id pair) instead of being rescored.  Blocking
        overlap between two tables depends only on those two tables' key sets,
        so a pair of unchanged tables was necessarily blocked — and scored —
        identically in the run that produced the reusable scores; a missing key
        therefore means "scored below both edge thresholds" and maps to
        ``(0.0, 0.0)``.
        """
        graph = CompatibilityGraph(tables=list(tables))
        self.last_build_stats = BuildStats(num_tables=len(graph.tables))
        pair_counts = self._candidate_pairs_by_value_pair(graph.tables)
        left_counts = self._candidate_pairs_by_left_value(graph.tables)

        overlap = self.config.overlap_threshold
        positive_candidates = {
            pair for pair, count in pair_counts.items() if count >= overlap
        }
        negative_candidates = (
            {pair for pair, count in left_counts.items() if count >= overlap}
            if self.config.use_negative_edges
            else set()
        )
        self.last_build_stats.pairs_blocked_positive = len(positive_candidates)
        self.last_build_stats.pairs_blocked_negative = len(negative_candidates)

        stable_ids = reusable_ids if reusable_ids is not None else set()
        cached_scores = reusable_scores if reusable_scores is not None else {}
        reused: dict[tuple[int, int], tuple[float, float]] = {}
        tasks = []
        for first, second in sorted(positive_candidates | negative_candidates):
            first_id = graph.tables[first].table_id
            second_id = graph.tables[second].table_id
            if first_id in stable_ids and second_id in stable_ids:
                key = (first_id, second_id) if first_id <= second_id else (second_id, first_id)
                reused[(first, second)] = cached_scores.get(key, (0.0, 0.0))
                continue
            tasks.append(
                (first, second, (first, second) in positive_candidates,
                 (first, second) in negative_candidates,
                 pair_counts.get((first, second), 0), left_counts.get((first, second), 0))
            )
        self.last_build_stats.pairs_scored = len(tasks)
        self.last_build_stats.pairs_reused = len(reused)
        results = self._score_blocked_pairs(graph.tables, tasks)
        results.update(reused)

        for first, second in sorted(positive_candidates):
            weight = results[(first, second)][0]
            if weight >= self.config.edge_threshold:
                graph.add_positive(first, second, weight)

        for first, second in sorted(negative_candidates):
            weight = results[(first, second)][1]
            if weight < 0.0:
                graph.add_negative(first, second, weight)
        return graph
