"""LP relaxation and region-growing rounding (paper Problem 15, Appendix D).

The loss-minimization view of table synthesis (Problem 14) can be written as an
embedding over pairwise distance variables ``d_ij`` with triangle-inequality
constraints; negative edges below ``τ`` force ``d_ij = 1``.  Relaxing integrality
gives an LP whose optimal fractional solution can be rounded by region growing to an
``O(log N)`` approximation.  The paper does not run this at full scale (quadratic
variable count); we implement it for small components so its quality can be compared
against the greedy heuristic in ablation benches.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import linprog

from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph
from repro.graph.connected import UnionFind
from repro.graph.partition import Partition, PartitionResult

__all__ = ["lp_relaxation_partition"]

_MAX_LP_VERTICES = 40


def _solve_lp(graph: CompatibilityGraph, config: SynthesisConfig) -> np.ndarray | None:
    """Solve the relaxed embedding LP; returns the ``d_ij`` matrix or ``None``."""
    n = graph.num_vertices
    pairs = list(itertools.combinations(range(n), 2))
    index_of = {pair: position for position, pair in enumerate(pairs)}
    num_vars = len(pairs)
    if num_vars == 0:
        return np.zeros((n, n))

    # Objective: minimize sum of w+(i,j) * d_ij  (positive weight "lost" by separation).
    costs = np.zeros(num_vars)
    for (i, j), weight in graph.positive_edges.items():
        costs[index_of[(i, j)]] = weight

    # Triangle inequalities: d_ij <= d_ik + d_kj for all ordered triples.
    rows: list[np.ndarray] = []
    for i, j, k in itertools.combinations(range(n), 3):
        for (a, b), (c, d), (e, f) in (
            ((i, j), (i, k), (k, j)),
            ((i, k), (i, j), (j, k)),
            ((j, k), (i, j), (i, k)),
        ):
            row = np.zeros(num_vars)
            row[index_of[tuple(sorted((a, b)))]] = 1.0
            row[index_of[tuple(sorted((c, d)))]] = -1.0
            row[index_of[tuple(sorted((e, f)))]] = -1.0
            rows.append(row)
    a_ub = np.vstack(rows) if rows else None
    b_ub = np.zeros(len(rows)) if rows else None

    # Bounds: d_ij in [0, 1]; negative edges below tau are pinned to 1.
    bounds = []
    for pair in pairs:
        weight = graph.negative_edges.get(pair, 0.0)
        if config.use_negative_edges and weight < config.conflict_threshold:
            bounds.append((1.0, 1.0))
        else:
            bounds.append((0.0, 1.0))

    result = linprog(costs, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        return None
    distances = np.zeros((n, n))
    for pair, position in index_of.items():
        i, j = pair
        distances[i, j] = distances[j, i] = result.x[position]
    return distances


def _region_growing(
    graph: CompatibilityGraph,
    distances: np.ndarray,
    config: SynthesisConfig,
    radius: float = 0.49,
) -> list[frozenset[int]]:
    """Round a fractional embedding into clusters by growing balls around pivots.

    Vertices within ``radius`` of a pivot (in the LP metric) join the pivot's
    cluster, unless doing so would violate a hard negative constraint, in which case
    the offending vertex is left for a later pivot.
    """
    n = graph.num_vertices
    unassigned = set(range(n))
    clusters: list[frozenset[int]] = []
    while unassigned:
        pivot = min(unassigned)
        ball = {pivot}
        for vertex in sorted(unassigned - {pivot}):
            if distances[pivot, vertex] <= radius:
                conflict = any(
                    config.use_negative_edges
                    and graph.negative(member, vertex) < config.conflict_threshold
                    for member in ball
                )
                if not conflict:
                    ball.add(vertex)
        clusters.append(frozenset(ball))
        unassigned -= ball
    return clusters


def lp_relaxation_partition(
    graph: CompatibilityGraph, config: SynthesisConfig | None = None
) -> PartitionResult:
    """Partition a (small) graph via LP relaxation + region growing.

    Falls back to connected components of the positive graph if the LP fails.

    Raises
    ------
    ValueError
        If the graph is too large for the quadratic LP formulation.
    """
    config = config or SynthesisConfig()
    if graph.num_vertices > _MAX_LP_VERTICES:
        raise ValueError(
            f"lp_relaxation_partition supports at most {_MAX_LP_VERTICES} vertices, "
            f"got {graph.num_vertices}"
        )
    distances = _solve_lp(graph, config)
    if distances is None:
        finder = UnionFind(range(graph.num_vertices))
        for (i, j) in graph.positive_edges:
            if not (
                config.use_negative_edges
                and graph.negative(i, j) < config.conflict_threshold
            ):
                finder.union(i, j)
        groups = [frozenset(group) for group in finder.groups()]
    else:
        groups = _region_growing(graph, distances, config)
    objective = 0.0
    for group in groups:
        members = sorted(group)
        for a in range(len(members)):
            for b in range(a + 1, len(members)):
                objective += graph.positive(members[a], members[b])
    partitions = [Partition(group) for group in groups]
    partitions.sort(key=lambda partition: (-len(partition), sorted(partition.vertices)))
    return PartitionResult(partitions=partitions, objective=objective)
