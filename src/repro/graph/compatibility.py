"""Positive and negative compatibility between candidate tables (paper §4.1).

* **Positive compatibility** ``w+`` (Equation 3) — symmetric maximum-of-containment
  of shared value pairs: two tables describing the same relationship share many
  ``(left, right)`` pairs even when one is much smaller than the other.
* **Negative incompatibility** ``w−`` (Equation 4) — driven by the conflict set
  ``F(B, B')``: left values that map to *different* right values in the two tables,
  which violates the definition of a mapping and signals that the two tables encode
  different relationships (e.g. IOC codes vs ISO codes).

Both computations use approximate string matching so footnote markers and minor
synonyms do not artificially depress ``w+`` or inflate ``w−``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary

__all__ = [
    "CompatibilityScores",
    "CompatibilityScorer",
    "positive_compatibility",
    "negative_compatibility",
    "conflict_set",
]


@dataclass(frozen=True)
class CompatibilityScores:
    """The pairwise scores between two candidate tables."""

    positive: float
    negative: float
    shared_pairs: int
    shared_lefts: int
    conflicts: int


class CompatibilityScorer:
    """Computes ``w+`` and ``w−`` between binary tables.

    Parameters
    ----------
    config:
        Synthesis configuration (edit-distance thresholds, approximate matching).
    synonyms:
        Optional synonym dictionary; synonymous right-hand sides are not conflicts,
        and synonymous values count as overlap (paper §4.1 "Synonyms").
    """

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.matcher = ValueMatcher(
            fraction=self.config.edit_fraction,
            cap=self.config.edit_cap,
            synonyms=synonyms,
            approximate=self.config.use_approximate_matching,
        )

    # -- Pair matching ------------------------------------------------------------------
    def _pair_matches(
        self, pair: tuple[str, str], other: tuple[str, str]
    ) -> bool:
        return self.matcher.matches(pair[0], other[0]) and self.matcher.matches(
            pair[1], other[1]
        )

    def _matched_pair_count(self, source: BinaryTable, target: BinaryTable) -> int:
        """Number of pairs of ``source`` that have a matching pair in ``target``."""
        target_exact = {
            (self.matcher.match_key(p.left), self.matcher.match_key(p.right))
            for p in target.pairs
        }
        target_pairs = [(p.left, p.right) for p in target.pairs]
        count = 0
        for pair in source.pairs:
            key = (self.matcher.match_key(pair.left), self.matcher.match_key(pair.right))
            if key in target_exact:
                count += 1
                continue
            if self.config.use_approximate_matching and any(
                self._pair_matches((pair.left, pair.right), other)
                for other in target_pairs
            ):
                count += 1
        return count

    # -- Public scores -------------------------------------------------------------------
    def positive(self, first: BinaryTable, second: BinaryTable) -> float:
        """``w+(B, B')`` — maximum containment of shared value pairs (Equation 3)."""
        if not first.pairs or not second.pairs:
            return 0.0
        matched_first = self._matched_pair_count(first, second)
        matched_second = self._matched_pair_count(second, first)
        return max(matched_first / len(first), matched_second / len(second))

    def conflict_lefts(self, first: BinaryTable, second: BinaryTable) -> set[str]:
        """The conflict set ``F(B, B')`` — left values with disagreeing right values."""
        conflicts: set[str] = set()
        second_by_left: dict[str, list[tuple[str, str]]] = {}
        for pair in second.pairs:
            second_by_left.setdefault(self.matcher.match_key(pair.left), []).append(
                (pair.left, pair.right)
            )
        for pair in first.pairs:
            left_key = self.matcher.match_key(pair.left)
            candidates = list(second_by_left.get(left_key, []))
            if self.config.use_approximate_matching and not candidates:
                candidates = [
                    (other.left, other.right)
                    for other in second.pairs
                    if self.matcher.matches(pair.left, other.left)
                ]
            for _, other_right in candidates:
                if not self.matcher.matches(pair.right, other_right):
                    conflicts.add(pair.left)
                    break
        return conflicts

    def negative(self, first: BinaryTable, second: BinaryTable) -> float:
        """``w−(B, B')`` — negative incompatibility from conflicts (Equation 4)."""
        if not first.pairs or not second.pairs:
            return 0.0
        conflicts = self.conflict_lefts(first, second)
        if not conflicts:
            return 0.0
        return -max(len(conflicts) / len(first), len(conflicts) / len(second))

    def shared_pair_count(self, first: BinaryTable, second: BinaryTable) -> int:
        """Number of exactly-shared (normalized) value pairs — used for blocking."""
        first_keys = {
            (self.matcher.match_key(p.left), self.matcher.match_key(p.right))
            for p in first.pairs
        }
        second_keys = {
            (self.matcher.match_key(p.left), self.matcher.match_key(p.right))
            for p in second.pairs
        }
        return len(first_keys & second_keys)

    def shared_left_count(self, first: BinaryTable, second: BinaryTable) -> int:
        """Number of exactly-shared (normalized) left values — used for blocking."""
        first_lefts = {self.matcher.match_key(p.left) for p in first.pairs}
        second_lefts = {self.matcher.match_key(p.left) for p in second.pairs}
        return len(first_lefts & second_lefts)

    def score(self, first: BinaryTable, second: BinaryTable) -> CompatibilityScores:
        """Compute all pairwise scores between two tables."""
        conflicts = self.conflict_lefts(first, second)
        negative = 0.0
        if conflicts and first.pairs and second.pairs:
            negative = -max(len(conflicts) / len(first), len(conflicts) / len(second))
        return CompatibilityScores(
            positive=self.positive(first, second),
            negative=negative,
            shared_pairs=self.shared_pair_count(first, second),
            shared_lefts=self.shared_left_count(first, second),
            conflicts=len(conflicts),
        )


# -- Module-level convenience functions (used in docs, examples and tests) -------------
def positive_compatibility(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> float:
    """Compute ``w+`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).positive(first, second)


def negative_compatibility(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> float:
    """Compute ``w−`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).negative(first, second)


def conflict_set(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> set[str]:
    """Compute the conflict set ``F(B, B')`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).conflict_lefts(first, second)
