"""Positive and negative compatibility between candidate tables (paper §4.1).

* **Positive compatibility** ``w+`` (Equation 3) — symmetric maximum-of-containment
  of shared value pairs: two tables describing the same relationship share many
  ``(left, right)`` pairs even when one is much smaller than the other.
* **Negative incompatibility** ``w−`` (Equation 4) — driven by the conflict set
  ``F(B, B')``: left values that map to *different* right values in the two tables,
  which violates the definition of a mapping and signals that the two tables encode
  different relationships (e.g. IOC codes vs ISO codes).

Both computations use approximate string matching so footnote markers and minor
synonyms do not artificially depress ``w+`` or inflate ``w−``.

The scorer works on :class:`~repro.graph.profile.TableProfile` objects: each table
is profiled once (normalized key sets, left-key → rows map, compact forms, length
buckets) and every subsequent pairwise score reuses the profile.  ``score()``
computes ``w+``, ``w−``, shared counts and the conflict set in a single fused pass
over each side's rows, and every ``matches()`` verdict is memoized in a pair cache
shared across all scored pairs — corpus values repeat heavily across tables, so the
cache hit rate climbs quickly during graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.profile import TableProfile, build_profile
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary

__all__ = [
    "CompatibilityScores",
    "CompatibilityScorer",
    "positive_compatibility",
    "negative_compatibility",
    "conflict_set",
]


@dataclass(frozen=True)
class CompatibilityScores:
    """The pairwise scores between two candidate tables."""

    positive: float
    negative: float
    shared_pairs: int
    shared_lefts: int
    conflicts: int


class CompatibilityScorer:
    """Computes ``w+`` and ``w−`` between binary tables.

    Parameters
    ----------
    config:
        Synthesis configuration (edit-distance thresholds, approximate matching).
    synonyms:
        Optional synonym dictionary; synonymous right-hand sides are not conflicts,
        and synonymous values count as overlap (paper §4.1 "Synonyms").
    """

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.synonyms = synonyms
        self.matcher = ValueMatcher(
            fraction=self.config.edit_fraction,
            cap=self.config.edit_cap,
            synonyms=synonyms,
            approximate=self.config.use_approximate_matching,
        )
        # Profiles are keyed by object identity; each entry keeps a strong
        # reference to its table (via TableProfile.table), so an id() can never be
        # recycled while its cache slot is live.
        self._profiles: dict[int, TableProfile] = {}
        self._match_cache: dict[tuple[str, str], bool] = {}
        self.match_cache_hits = 0
        self.match_cache_misses = 0

    #: Long-lived scorers (e.g. one held by a TableExpander across thousands of
    #: throwaway tables) must not grow without bound; when a cache exceeds its
    #: limit it is cleared wholesale.  The bounds are far above what one graph
    #: build touches, so build-time behavior is unaffected.
    MAX_PROFILE_CACHE = 8192
    MAX_MATCH_CACHE = 1 << 20

    # -- Profiles and memoized matching ---------------------------------------------
    def profile(self, table: BinaryTable) -> TableProfile:
        """Return the (cached) scoring profile of ``table``."""
        cached = self._profiles.get(id(table))
        if cached is None or cached.table is not table:
            if len(self._profiles) >= self.MAX_PROFILE_CACHE:
                self._profiles.clear()
            cached = build_profile(table, self.matcher, self.config.edit_cap)
            self._profiles[id(table)] = cached
        return cached

    def prime_profile(self, table: BinaryTable, profile: TableProfile) -> None:
        """Seed the profile cache with a precomputed profile for ``table``.

        Used by the artifact store's incremental-refresh path to reuse profiles
        persisted from an earlier run instead of re-deriving them.  The caller
        is responsible for the profile having been computed under an equivalent
        matcher (same normalization, synonyms, and ``edit_cap``); profiles
        loaded from an artifact produced with the same config satisfy this.

        Priming deliberately ignores ``MAX_PROFILE_CACHE``: the bound protects
        long-lived scorers against unbounded throwaway tables, while a priming
        pass is a finite bulk-load (one entry per candidate) — evicting earlier
        primed entries here would silently defeat the reuse it exists for.
        """
        if profile.table is not table:
            raise ValueError("profile.table must be the table being primed")
        self._profiles[id(table)] = profile

    def matches(self, first: str, second: str) -> bool:
        """Memoized :meth:`ValueMatcher.matches` over surface forms."""
        if first == second:
            return True
        key = (first, second) if first <= second else (second, first)
        verdict = self._match_cache.get(key)
        if verdict is None:
            self.match_cache_misses += 1
            if len(self._match_cache) >= self.MAX_MATCH_CACHE:
                self._match_cache.clear()
            verdict = self.matcher.matches(first, second)
            self._match_cache[key] = verdict
        else:
            self.match_cache_hits += 1
        return verdict

    @property
    def match_cache_size(self) -> int:
        """Number of memoized value-pair verdicts."""
        return len(self._match_cache)

    # -- Fused per-row scoring --------------------------------------------------------
    def _row_verdict(
        self, source: TableProfile, index: int, target: TableProfile
    ) -> tuple[bool, bool]:
        """Return ``(pair matched in target, left value conflicts with target)``.

        A row matches when some target row agrees on both sides (exact normalized
        keys, synonyms, or banded edit distance).  A row conflicts when a target
        row with the *same* left value maps it to a different right value; rows
        whose left key occurs exactly in the target only compare against those
        occurrences, otherwise approximate left matches are consulted (mirroring
        how the paper resolves conflicts after blocking on left values).
        """
        left_key = source.left_keys[index]
        matched = (left_key, source.right_keys[index]) in target.pair_keys
        conflict = False
        approximate = self.config.use_approximate_matching
        right = source.rights[index]

        exact_rows = target.rows_with_left_key(left_key)
        if exact_rows:
            for row in exact_rows:
                if self.matches(right, target.rights[row]):
                    matched = True
                else:
                    conflict = True
                if matched and conflict:
                    return matched, conflict
            if matched or not approximate:
                return matched, conflict
            # Fall through: the pair may still match a target row whose left
            # value only matches approximately.
            left = source.lefts[index]
            exact_set = set(exact_rows)
            for row in source_band_rows(source, index, target):
                if row in exact_set:
                    continue
                if self.matches(left, target.lefts[row]) and self.matches(
                    right, target.rights[row]
                ):
                    return True, conflict
            return matched, conflict

        if not approximate:
            return matched, conflict
        # No exact left-key occurrence in the target: both the pair match and the
        # conflict verdict come from approximate left matches in the length band.
        left = source.lefts[index]
        for row in source_band_rows(source, index, target):
            if not self.matches(left, target.lefts[row]):
                continue
            if self.matches(right, target.rights[row]):
                matched = True
            else:
                conflict = True
            if matched and conflict:
                break
        return matched, conflict

    def _matched_row_count(self, source: TableProfile, target: TableProfile) -> int:
        """Number of rows of ``source`` with a matching pair in ``target``."""
        return sum(
            1
            for index in range(len(source))
            if self._row_verdict(source, index, target)[0]
        )

    # -- Public scores -------------------------------------------------------------------
    def positive(self, first: BinaryTable, second: BinaryTable) -> float:
        """``w+(B, B')`` — maximum containment of shared value pairs (Equation 3)."""
        return self.positive_profiles(self.profile(first), self.profile(second))

    def conflict_lefts(self, first: BinaryTable, second: BinaryTable) -> set[str]:
        """The conflict set ``F(B, B')`` — left values with disagreeing right values."""
        return self.conflict_lefts_profiles(self.profile(first), self.profile(second))

    def negative(self, first: BinaryTable, second: BinaryTable) -> float:
        """``w−(B, B')`` — negative incompatibility from conflicts (Equation 4)."""
        return self.negative_profiles(self.profile(first), self.profile(second))

    def shared_pair_count(self, first: BinaryTable, second: BinaryTable) -> int:
        """Number of exactly-shared (normalized) value pairs — used for blocking."""
        return len(self.profile(first).pair_keys & self.profile(second).pair_keys)

    def shared_left_count(self, first: BinaryTable, second: BinaryTable) -> int:
        """Number of exactly-shared (normalized) left values — used for blocking."""
        return len(self.profile(first).left_key_set & self.profile(second).left_key_set)

    def score(self, first: BinaryTable, second: BinaryTable) -> CompatibilityScores:
        """Compute all pairwise scores between two tables."""
        return self.score_profiles(self.profile(first), self.profile(second))

    # -- Profile-level scores (no table re-derivation) --------------------------------
    def positive_profiles(self, first: TableProfile, second: TableProfile) -> float:
        """``w+`` over pre-built profiles."""
        if not len(first) or not len(second):
            return 0.0
        matched_first = self._matched_row_count(first, second)
        matched_second = self._matched_row_count(second, first)
        return max(matched_first / len(first), matched_second / len(second))

    def conflict_lefts_profiles(
        self, first: TableProfile, second: TableProfile
    ) -> set[str]:
        """Conflict set ``F(B, B')`` over pre-built profiles."""
        return {
            first.lefts[index]
            for index in range(len(first))
            if self._row_verdict(first, index, second)[1]
        }

    def negative_profiles(self, first: TableProfile, second: TableProfile) -> float:
        """``w−`` over pre-built profiles."""
        if not len(first) or not len(second):
            return 0.0
        conflicts = self.conflict_lefts_profiles(first, second)
        if not conflicts:
            return 0.0
        return -max(len(conflicts) / len(first), len(conflicts) / len(second))

    def score_profiles(
        self,
        first: TableProfile,
        second: TableProfile,
        shared_pairs: int | None = None,
        shared_lefts: int | None = None,
    ) -> CompatibilityScores:
        """Single-pass scoring of two profiles.

        One sweep over ``first``'s rows yields both its matched-pair count and the
        conflict set; a second sweep over ``second``'s rows yields the reverse
        matched count.  Callers that already know the blocking overlap counts
        (``shared_pairs`` / ``shared_lefts``) can pass them in to skip the set
        intersections.
        """
        if shared_pairs is None:
            shared_pairs = len(first.pair_keys & second.pair_keys)
        if shared_lefts is None:
            shared_lefts = len(first.left_key_set & second.left_key_set)

        conflicts: set[str] = set()
        matched_first = 0
        for index in range(len(first)):
            matched, conflict = self._row_verdict(first, index, second)
            if matched:
                matched_first += 1
            if conflict:
                conflicts.add(first.lefts[index])
        positive = 0.0
        if len(first) and len(second):
            matched_second = self._matched_row_count(second, first)
            positive = max(matched_first / len(first), matched_second / len(second))
        negative = 0.0
        if conflicts and len(first) and len(second):
            negative = -max(len(conflicts) / len(first), len(conflicts) / len(second))
        return CompatibilityScores(
            positive=positive,
            negative=negative,
            shared_pairs=shared_pairs,
            shared_lefts=shared_lefts,
            conflicts=len(conflicts),
        )


def source_band_rows(source: TableProfile, index: int, target: TableProfile):
    """Target rows whose compact-left length is within the edit cap of the source row."""
    return target.rows_in_length_band(len(source.compact_lefts[index]))


# -- Module-level convenience functions (used in docs, examples and tests) -------------
def positive_compatibility(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> float:
    """Compute ``w+`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).positive(first, second)


def negative_compatibility(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> float:
    """Compute ``w−`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).negative(first, second)


def conflict_set(
    first: BinaryTable,
    second: BinaryTable,
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> set[str]:
    """Compute the conflict set ``F(B, B')`` with a throw-away scorer."""
    return CompatibilityScorer(config, synonyms).conflict_lefts(first, second)
