"""Compatibility graph construction and partitioning (paper §4)."""

from repro.graph.compatibility import (
    CompatibilityScorer,
    CompatibilityScores,
    conflict_set,
    negative_compatibility,
    positive_compatibility,
)
from repro.graph.build import BuildStats, CompatibilityGraph, GraphBuilder
from repro.graph.connected import UnionFind, connected_components
from repro.graph.profile import TableProfile, build_profile
from repro.graph.partition import GreedyPartitioner, Partition, PartitionResult
from repro.graph.exact import exact_partition, is_feasible_partition, partition_objective
from repro.graph.lp import lp_relaxation_partition

__all__ = [
    "CompatibilityScorer",
    "CompatibilityScores",
    "positive_compatibility",
    "negative_compatibility",
    "conflict_set",
    "CompatibilityGraph",
    "GraphBuilder",
    "BuildStats",
    "TableProfile",
    "build_profile",
    "UnionFind",
    "connected_components",
    "GreedyPartitioner",
    "Partition",
    "PartitionResult",
    "exact_partition",
    "is_feasible_partition",
    "partition_objective",
    "lp_relaxation_partition",
]
