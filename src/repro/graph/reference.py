"""Naive reference implementations of compatibility scoring and graph building.

This module preserves the original, un-indexed scorer verbatim: every pairwise
score re-derives normalized key sets, left→right maps and shared counts from the
raw tables, and approximate matching scans every row of the other table.  It is
deliberately slow and exists for two reasons:

* the equivalence tests assert that the profiled, cached, parallel fast path in
  :mod:`repro.graph.compatibility` / :mod:`repro.graph.build` produces the exact
  same graph (edges and weights) as this oracle;
* the scoring-hot-path benchmark measures the fast path's speedup against it.

Do not use it outside tests and benchmarks.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary

__all__ = ["NaiveCompatibilityScorer", "naive_build_graph"]


class NaiveCompatibilityScorer:
    """The seed ``CompatibilityScorer``: correct, cache-free, quadratic."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.matcher = ValueMatcher(
            fraction=self.config.edit_fraction,
            cap=self.config.edit_cap,
            synonyms=synonyms,
            approximate=self.config.use_approximate_matching,
        )

    def _pair_matches(self, pair: tuple[str, str], other: tuple[str, str]) -> bool:
        return self.matcher.matches(pair[0], other[0]) and self.matcher.matches(
            pair[1], other[1]
        )

    def _matched_pair_count(self, source: BinaryTable, target: BinaryTable) -> int:
        target_exact = {
            (self.matcher.match_key(p.left), self.matcher.match_key(p.right))
            for p in target.pairs
        }
        target_pairs = [(p.left, p.right) for p in target.pairs]
        count = 0
        for pair in source.pairs:
            key = (self.matcher.match_key(pair.left), self.matcher.match_key(pair.right))
            if key in target_exact:
                count += 1
                continue
            if self.config.use_approximate_matching and any(
                self._pair_matches((pair.left, pair.right), other)
                for other in target_pairs
            ):
                count += 1
        return count

    def positive(self, first: BinaryTable, second: BinaryTable) -> float:
        if not first.pairs or not second.pairs:
            return 0.0
        matched_first = self._matched_pair_count(first, second)
        matched_second = self._matched_pair_count(second, first)
        return max(matched_first / len(first), matched_second / len(second))

    def conflict_lefts(self, first: BinaryTable, second: BinaryTable) -> set[str]:
        conflicts: set[str] = set()
        second_by_left: dict[str, list[tuple[str, str]]] = {}
        for pair in second.pairs:
            second_by_left.setdefault(self.matcher.match_key(pair.left), []).append(
                (pair.left, pair.right)
            )
        for pair in first.pairs:
            left_key = self.matcher.match_key(pair.left)
            candidates = list(second_by_left.get(left_key, []))
            if self.config.use_approximate_matching and not candidates:
                candidates = [
                    (other.left, other.right)
                    for other in second.pairs
                    if self.matcher.matches(pair.left, other.left)
                ]
            for _, other_right in candidates:
                if not self.matcher.matches(pair.right, other_right):
                    conflicts.add(pair.left)
                    break
        return conflicts

    def negative(self, first: BinaryTable, second: BinaryTable) -> float:
        if not first.pairs or not second.pairs:
            return 0.0
        conflicts = self.conflict_lefts(first, second)
        if not conflicts:
            return 0.0
        return -max(len(conflicts) / len(first), len(conflicts) / len(second))


def naive_build_graph(
    tables: list[BinaryTable],
    config: SynthesisConfig | None = None,
    synonyms: SynonymDictionary | None = None,
) -> CompatibilityGraph:
    """The seed ``GraphBuilder.build``: block, then rescore every pair from scratch."""
    config = config or SynthesisConfig()
    scorer = NaiveCompatibilityScorer(config, synonyms)
    matcher = scorer.matcher
    graph = CompatibilityGraph(tables=list(tables))

    pair_posting: dict[tuple[str, str], list[int]] = defaultdict(list)
    left_posting: dict[str, list[int]] = defaultdict(list)
    for index, table in enumerate(graph.tables):
        keys = {
            (matcher.match_key(p.left), matcher.match_key(p.right))
            for p in table.pairs
        }
        for key in keys:
            pair_posting[key].append(index)
        for left_key in {matcher.match_key(p.left) for p in table.pairs}:
            left_posting[left_key].append(index)

    def pair_counts(posting: dict) -> dict[tuple[int, int], int]:
        counts: dict[tuple[int, int], int] = defaultdict(int)
        for indices in posting.values():
            if len(indices) < 2:
                continue
            for i in range(len(indices)):
                for j in range(i + 1, len(indices)):
                    counts[(indices[i], indices[j])] += 1
        return counts

    overlap = config.overlap_threshold
    positive_candidates = {
        pair for pair, count in pair_counts(pair_posting).items() if count >= overlap
    }
    negative_candidates = {
        pair for pair, count in pair_counts(left_posting).items() if count >= overlap
    }

    for first, second in sorted(positive_candidates):
        weight = scorer.positive(graph.tables[first], graph.tables[second])
        if weight >= config.edge_threshold:
            graph.add_positive(first, second, weight)

    if config.use_negative_edges:
        for first, second in sorted(negative_candidates):
            weight = scorer.negative(graph.tables[first], graph.tables[second])
            if weight < 0.0:
                graph.add_negative(first, second, weight)
    return graph
