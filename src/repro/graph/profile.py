"""Immutable per-table scoring profiles (paper §4.1 "Efficiency", Appendix B).

Scoring a pair of candidate tables needs the same derived data over and over:
normalized ``match_key`` forms of every value, the set of normalized value pairs,
a left-key → rows map, and the whitespace-free "compact" forms the banded edit
distance runs on.  The seed implementation re-derived all of it for *every*
scored pair, which made pairwise scoring the hot path of graph construction.

A :class:`TableProfile` computes each of these exactly once per table.  It also
carries a length-bucketed index over the compact left values: the fractional
edit-distance threshold is capped at ``k_ed`` (paper Appendix B), so two values
whose compact lengths differ by more than the cap can never match approximately
— the banded DP would reject them on the length difference alone.  Approximate
candidate lookups therefore only touch rows whose compact-left length falls
inside the ``± k_ed`` band, instead of scanning the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.core.binary_table import BinaryTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.text.matching import ValueMatcher

__all__ = ["TableProfile", "build_profile"]


@dataclass(frozen=True)
class TableProfile:
    """Precomputed, immutable scoring view of one :class:`BinaryTable`.

    All per-row tuples are parallel: index ``i`` refers to the same value pair in
    ``lefts``, ``rights``, ``left_keys``, ``right_keys`` and ``compact_lefts``.

    Attributes
    ----------
    table:
        The profiled table (kept alive so identity-keyed caches stay valid).
    lefts / rights:
        Original (surface-form) values per pair, as stored in the table.
    left_keys / right_keys:
        Normalized ``match_key`` form of each value (synonym-canonicalized).
    compact_lefts:
        Whitespace-free normalized left values — the strings the banded edit
        distance actually compares.
    pair_keys:
        Set of normalized ``(left_key, right_key)`` pairs; used for exact pair
        matching and for blocking overlap counts.
    left_key_set:
        Set of normalized left keys; used for negative-edge blocking.
    by_left_key:
        Left key → indices of rows carrying that key.
    left_length_buckets:
        Compact-left length → indices of rows with that length; supports the
        banded-DP length-pruning precondition.
    edit_cap:
        ``k_ed`` used to build the length buckets (approximate matches can never
        span a larger length difference).
    """

    table: BinaryTable
    lefts: tuple[str, ...]
    rights: tuple[str, ...]
    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]
    compact_lefts: tuple[str, ...]
    pair_keys: frozenset[tuple[str, str]]
    left_key_set: frozenset[str]
    by_left_key: dict[str, tuple[int, ...]]
    left_length_buckets: dict[int, tuple[int, ...]]
    edit_cap: int

    def __len__(self) -> int:
        return len(self.lefts)

    def rows_with_left_key(self, left_key: str) -> tuple[int, ...]:
        """Indices of rows whose left value has exactly the given match key."""
        return self.by_left_key.get(left_key, ())

    def rows_in_length_band(self, compact_length: int) -> Iterator[int]:
        """Indices of rows whose compact-left length is within ``± edit_cap``.

        This is a conservative superset of the rows whose left value could match
        approximately: the edit threshold is ``min(⌊|a|·f⌋, ⌊|b|·f⌋, k_ed)`` and
        the banded DP rejects any pair whose lengths differ by more than it.
        """
        lower = max(0, compact_length - self.edit_cap)
        for length in range(lower, compact_length + self.edit_cap + 1):
            bucket = self.left_length_buckets.get(length)
            if bucket:
                yield from bucket


def build_profile(
    table: BinaryTable, matcher: "ValueMatcher", edit_cap: int
) -> TableProfile:
    """Derive the :class:`TableProfile` of ``table`` under ``matcher``."""
    lefts: list[str] = []
    rights: list[str] = []
    left_keys: list[str] = []
    right_keys: list[str] = []
    compact_lefts: list[str] = []
    by_left_key: dict[str, list[int]] = {}
    buckets: dict[int, list[int]] = {}

    for index, pair in enumerate(table.pairs):
        left_key = matcher.match_key(pair.left)
        right_key = matcher.match_key(pair.right)
        compact_left = matcher.normalize(pair.left).replace(" ", "")
        lefts.append(pair.left)
        rights.append(pair.right)
        left_keys.append(left_key)
        right_keys.append(right_key)
        compact_lefts.append(compact_left)
        by_left_key.setdefault(left_key, []).append(index)
        buckets.setdefault(len(compact_left), []).append(index)

    return TableProfile(
        table=table,
        lefts=tuple(lefts),
        rights=tuple(rights),
        left_keys=tuple(left_keys),
        right_keys=tuple(right_keys),
        compact_lefts=tuple(compact_lefts),
        pair_keys=frozenset(zip(left_keys, right_keys)),
        left_key_set=frozenset(left_keys),
        by_left_key={key: tuple(rows) for key, rows in by_left_key.items()},
        left_length_buckets={length: tuple(rows) for length, rows in buckets.items()},
        edit_cap=edit_cap,
    )
