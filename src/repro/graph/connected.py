"""Union-find and connected components (paper Appendix F).

The full synthesis graph is first split into components connected by positive
edges, and each component is partitioned independently — the divide-and-conquer
step that lets the paper scale Algorithm 3 to Map-Reduce.  A Hash-to-Min style
implementation over the local Map-Reduce engine lives in
:mod:`repro.mapreduce.jobs`; this module provides the in-memory equivalents.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

__all__ = ["UnionFind", "connected_components"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size.

    The paper's Algorithm 3 relies on fast set union/lookup (Hopcroft & Ullman [25]);
    this class provides exactly those operations.
    """

    def __init__(self, items: Iterable[Hashable] | None = None) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if not already present."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of ``item``'s set."""
        if item not in self._parent:
            raise KeyError(f"{item!r} has not been added to the union-find")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, first: Hashable, second: Hashable) -> Hashable:
        """Merge the sets containing ``first`` and ``second``; return the new root."""
        self.add(first)
        self.add(second)
        root_first, root_second = self.find(first), self.find(second)
        if root_first == root_second:
            return root_first
        if self._size[root_first] < self._size[root_second]:
            root_first, root_second = root_second, root_first
        self._parent[root_second] = root_first
        self._size[root_first] += self._size[root_second]
        return root_first

    def connected(self, first: Hashable, second: Hashable) -> bool:
        """Return ``True`` if the two items are in the same set."""
        return self.find(first) == self.find(second)

    def groups(self) -> list[list[Hashable]]:
        """Return all sets as lists (deterministic order by insertion)."""
        by_root: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())


def connected_components(
    vertices: Iterable[Hashable],
    edges: Iterable[tuple[Hashable, Hashable]],
) -> list[list[Hashable]]:
    """Return the connected components induced by ``edges`` over ``vertices``.

    Vertices not touched by any edge form singleton components.
    """
    finder = UnionFind(vertices)
    for first, second in edges:
        finder.union(first, second)
    return finder.groups()
