"""Greedy table-synthesis partitioning (paper §4.2, Algorithm 3, Appendix E/F).

The exact optimization (Problem 11) is NP-hard, so the paper uses a greedy
agglomerative heuristic: start with every candidate table in its own partition and
repeatedly merge the pair of partitions with the largest aggregate positive weight,
provided their aggregate negative weight does not cross the hard-constraint
threshold ``τ``.  When two partitions merge, positive weights to the rest of the
graph add up and negative weights take the minimum (most conflicting) value.

For scalability the graph is first decomposed into components connected by positive
edges (Appendix F); each component is partitioned independently.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.config import SynthesisConfig
from repro.graph.build import CompatibilityGraph

__all__ = ["Partition", "PartitionResult", "GreedyPartitioner"]


@dataclass
class Partition:
    """A group of vertex indices that will be synthesized into one mapping."""

    vertices: frozenset[int]

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self):
        return iter(sorted(self.vertices))

    def __contains__(self, vertex: object) -> bool:
        return vertex in self.vertices


@dataclass
class PartitionResult:
    """The outcome of partitioning a compatibility graph."""

    partitions: list[Partition]
    objective: float
    merges: int = 0
    metadata: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self):
        return iter(self.partitions)

    def assignment(self) -> dict[int, int]:
        """Return a map from vertex index to partition index."""
        result: dict[int, int] = {}
        for index, partition in enumerate(self.partitions):
            for vertex in partition.vertices:
                result[vertex] = index
        return result

    def non_singleton(self) -> list[Partition]:
        """Partitions that actually merged more than one candidate table."""
        return [partition for partition in self.partitions if len(partition) > 1]


class GreedyPartitioner:
    """Implements Algorithm 3 with a lazy-deletion priority queue."""

    def __init__(self, config: SynthesisConfig | None = None) -> None:
        self.config = config or SynthesisConfig()

    # -- Component-level greedy merging --------------------------------------------------
    def _partition_component(
        self, graph: CompatibilityGraph, component: list[int]
    ) -> tuple[list[frozenset[int]], float, int]:
        tau = self.config.conflict_threshold
        use_negative = self.config.use_negative_edges

        # Partition state: id -> set of vertices.  Ids are recycled never; merged
        # partitions get a fresh id so stale heap entries can be detected.
        members: dict[int, set[int]] = {i: {vertex} for i, vertex in enumerate(component)}
        next_id = len(component)
        alive = set(members)

        index_of = {vertex: i for i, vertex in enumerate(component)}
        positive: dict[int, dict[int, float]] = {i: {} for i in members}
        negative: dict[int, dict[int, float]] = {i: {} for i in members}

        for (a, b), weight in graph.positive_edges.items():
            if a in index_of and b in index_of:
                i, j = index_of[a], index_of[b]
                positive[i][j] = weight
                positive[j][i] = weight
        for (a, b), weight in graph.negative_edges.items():
            if a in index_of and b in index_of:
                i, j = index_of[a], index_of[b]
                negative[i][j] = weight
                negative[j][i] = weight

        heap: list[tuple[float, int, int]] = []
        for i in positive:
            for j, weight in positive[i].items():
                if i < j and weight > 0:
                    heapq.heappush(heap, (-weight, i, j))

        objective = 0.0
        merges = 0
        while heap:
            neg_weight, i, j = heapq.heappop(heap)
            weight = -neg_weight
            if i not in alive or j not in alive:
                continue
            current = positive.get(i, {}).get(j, 0.0)
            if abs(current - weight) > 1e-12:
                continue  # stale entry
            if weight <= 0:
                break
            if use_negative and negative.get(i, {}).get(j, 0.0) < tau:
                # Hard constraint: these two partitions conflict and can never merge.
                # Remove the edge so it is not reconsidered.
                positive[i].pop(j, None)
                positive[j].pop(i, None)
                continue

            # Merge i and j into a new partition.
            new_id = next_id
            next_id += 1
            members[new_id] = members.pop(i) | members.pop(j)
            alive.discard(i)
            alive.discard(j)
            alive.add(new_id)
            objective += weight
            merges += 1

            new_positive: dict[int, float] = {}
            new_negative: dict[int, float] = {}
            for other in set(positive.get(i, {})) | set(positive.get(j, {})):
                if other in (i, j) or other not in alive:
                    continue
                combined = positive.get(i, {}).get(other, 0.0) + positive.get(j, {}).get(
                    other, 0.0
                )
                if combined > 0:
                    new_positive[other] = combined
            for other in set(negative.get(i, {})) | set(negative.get(j, {})):
                if other in (i, j) or other not in alive:
                    continue
                new_negative[other] = min(
                    negative.get(i, {}).get(other, 0.0),
                    negative.get(j, {}).get(other, 0.0),
                )

            positive.pop(i, None)
            positive.pop(j, None)
            negative.pop(i, None)
            negative.pop(j, None)
            positive[new_id] = new_positive
            negative[new_id] = new_negative
            for other, weight_to_other in new_positive.items():
                positive[other].pop(i, None)
                positive[other].pop(j, None)
                positive[other][new_id] = weight_to_other
                a, b = (other, new_id) if other < new_id else (new_id, other)
                heapq.heappush(heap, (-weight_to_other, a, b))
            for other, weight_to_other in new_negative.items():
                negative[other].pop(i, None)
                negative[other].pop(j, None)
                negative[other][new_id] = weight_to_other
            # Drop references from neighbours that no longer have positive edges.
            for other in list(positive):
                if other in alive and other not in new_positive:
                    positive[other].pop(i, None)
                    positive[other].pop(j, None)
            for other in list(negative):
                if other in alive and other not in new_negative:
                    negative[other].pop(i, None)
                    negative[other].pop(j, None)

        groups = [frozenset(members[pid]) for pid in sorted(alive)]
        return groups, objective, merges

    # -- Public API ------------------------------------------------------------------------
    def partition(self, graph: CompatibilityGraph) -> PartitionResult:
        """Partition the graph; returns groups of vertex indices.

        The objective reported is the total intra-partition positive weight captured
        by the merges (Equation 5 restricted to edges present in the sparse graph).
        """
        partitions: list[Partition] = []
        total_objective = 0.0
        total_merges = 0
        for component in graph.positive_components():
            if len(component) == 1:
                partitions.append(Partition(frozenset(component)))
                continue
            groups, objective, merges = self._partition_component(graph, component)
            partitions.extend(Partition(group) for group in groups)
            total_objective += objective
            total_merges += merges
        # Vertices with no positive edges at all are already covered: they are their
        # own singleton components.
        partitions.sort(key=lambda partition: (-len(partition), sorted(partition.vertices)))
        return PartitionResult(
            partitions=partitions,
            objective=total_objective,
            merges=total_merges,
            metadata={
                "num_vertices": float(graph.num_vertices),
                "num_positive_edges": float(graph.num_positive_edges),
                "num_negative_edges": float(graph.num_negative_edges),
            },
        )
