"""Durable streaming delta log: sequenced, checksummed per-table updates.

A :class:`TableDelta` describes one table's change — row upserts and deletes
keyed by the row's first cell, a whole-table drop, or a brand-new table — and
is deterministic to apply: the same delta over the same corpus always yields
the same corpus (:meth:`TableDelta.apply_to` preserves corpus insertion order,
so downstream candidate/section ordering matches a cold rebuild byte for
byte).

:class:`DeltaLog` persists deltas as an append-only file of monotonically
sequenced, SHA-256-checksummed records, each fsync'd before :meth:`DeltaLog.append`
returns.  The framing is crash-safe by construction::

    +--------------------------------------------------------------+
    | magic  b"reprodeltalog\\x00\\x01"                  (15 bytes) |
    | base sequence, big-endian uint64  (last compacted seq)        |
    | records, back to back:                                        |
    |   payload length, big-endian uint32               ( 4 bytes)  |
    |   SHA-256 of the payload                          (32 bytes)  |
    |   payload: ByteWriter(seq uvarint, delta fields)              |
    +--------------------------------------------------------------+

Replay walks records in order and **stops at the first torn or checksum-failed
record** — a crash mid-append (or a corrupted byte anywhere in a record) can
lose the tail of the log but can never surface a half-written delta as valid.
Reopening the log truncates the torn tail so appends continue from the last
durable record.

Fault injection (:mod:`repro.faults`) hooks two sites here:
``delta_append_failure`` (the append tears mid-record and raises — the
in-process log refuses further appends until reopened, exactly like a crashed
writer) and ``corrupt_delta`` (the record's bytes are silently damaged on the
way to disk; the writer does not notice, and recovery discards the record at
replay).
"""

from __future__ import annotations

import hashlib
import os
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table
from repro.faults.plan import active_injector
from repro.store.codec import ByteReader, ByteWriter, CodecError
from repro.store.format import atomic_write_bytes

__all__ = [
    "LOG_MAGIC",
    "DeltaLogError",
    "TableDelta",
    "DeltaLog",
    "encode_delta_record",
    "decode_delta_record",
]

LOG_MAGIC = b"reprodeltalog\x00\x01"

_BASE_SEQ = struct.Struct(">Q")
_RECORD_LENGTH = struct.Struct(">I")
_DIGEST_SIZE = hashlib.sha256().digest_size
_HEADER_SIZE = len(LOG_MAGIC) + _BASE_SEQ.size
#: Upper bound on one record's payload length; anything larger is corruption.
_MAX_RECORD = 1 << 30

_FLAG_DROP = 1
_FLAG_CREATE = 2


class DeltaLogError(RuntimeError):
    """A delta log file is unusable, or an append could not complete."""


@dataclass(frozen=True)
class TableDelta:
    """One table's streamed change: row upserts/deletes, a drop, or a create.

    Rows are keyed by their **first cell** (the natural key of the binary
    relations this corpus models): an upsert replaces the first existing row
    with the same key, else appends; a delete removes every row with the key.
    Deletes apply before upserts, so a delta may atomically delete-and-replace
    one key.  For a table not present in the corpus, ``header`` must be given
    and the delta creates the table (appended at the end of the corpus) from
    the upsert rows.
    """

    table_id: str
    upserts: tuple[tuple[str, ...], ...] = ()
    deletes: tuple[str, ...] = ()
    drop: bool = False
    #: Column headers — required (and only used) when creating a new table.
    header: tuple[str, ...] | None = None
    domain: str = ""
    title: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "upserts",
            tuple(tuple(str(cell) for cell in row) for row in self.upserts),
        )
        object.__setattr__(self, "deletes", tuple(str(key) for key in self.deletes))
        if self.header is not None:
            object.__setattr__(
                self, "header", tuple(str(name) for name in self.header)
            )
        if not self.table_id:
            raise ValueError("TableDelta requires a table_id")
        if self.drop and (self.upserts or self.deletes or self.header is not None):
            raise ValueError("a drop delta carries no rows and no header")

    # -- Application --------------------------------------------------------------------
    def apply_to(self, corpus: TableCorpus) -> TableCorpus:
        """Return a new corpus with this delta applied (input is untouched)."""
        tables: list[Table] = []
        found = False
        for table in corpus:
            if table.table_id != self.table_id:
                tables.append(table)
                continue
            found = True
            if not self.drop:
                tables.append(self._patched(table))
        if not found:
            if self.drop:
                raise DeltaLogError(
                    f"delta drops table {self.table_id!r} which is not in the corpus"
                )
            tables.append(self._created())
        return TableCorpus(tables, name=corpus.name)

    def _patched(self, table: Table) -> Table:
        header = table.column_names()
        self._check_widths(len(header))
        deleted = set(self.deletes)
        rows = [row for row in table.rows() if not (row and row[0] in deleted)]
        for upsert in self.upserts:
            key = upsert[0] if upsert else ""
            for position, row in enumerate(rows):
                if row and row[0] == key:
                    rows[position] = upsert
                    break
            else:
                rows.append(upsert)
        return Table.from_rows(
            table_id=table.table_id,
            header=header,
            rows=rows,
            domain=table.domain,
            title=table.title,
        )

    def _created(self) -> Table:
        if self.header is None:
            raise DeltaLogError(
                f"delta targets unknown table {self.table_id!r} and has no "
                "header to create it with"
            )
        self._check_widths(len(self.header))
        deleted = set(self.deletes)
        rows = [row for row in self.upserts if not (row and row[0] in deleted)]
        return Table.from_rows(
            table_id=self.table_id,
            header=list(self.header),
            rows=rows,
            domain=self.domain,
            title=self.title,
        )

    def _check_widths(self, width: int) -> None:
        for row in self.upserts:
            if len(row) != width:
                raise DeltaLogError(
                    f"delta for table {self.table_id!r}: upsert row has "
                    f"{len(row)} cells, table has {width} columns"
                )

    # -- JSON converters (used by the artifact delta sections) --------------------------
    def as_json(self) -> dict:
        payload: dict = {
            "table_id": self.table_id,
            "upserts": [list(row) for row in self.upserts],
            "deletes": list(self.deletes),
            "drop": self.drop,
        }
        if self.header is not None:
            payload["header"] = list(self.header)
            payload["domain"] = self.domain
            payload["title"] = self.title
        return payload

    @classmethod
    def from_json(cls, data: Mapping) -> "TableDelta":
        header = data.get("header")
        return cls(
            table_id=data["table_id"],
            upserts=tuple(tuple(row) for row in data.get("upserts", [])),
            deletes=tuple(data.get("deletes", [])),
            drop=bool(data.get("drop", False)),
            header=tuple(header) if header is not None else None,
            domain=data.get("domain", ""),
            title=data.get("title", ""),
        )


# ---------------------------------------------------------------------------------------
# Binary record codec (repro.store.codec primitives)
# ---------------------------------------------------------------------------------------
def encode_delta_record(seq: int, delta: TableDelta) -> bytes:
    """Encode one ``(seq, delta)`` record payload (length/checksum framed by the log)."""
    writer = ByteWriter()
    writer.write_uvarint(seq)
    writer.write_str(delta.table_id)
    flags = (_FLAG_DROP if delta.drop else 0) | (
        _FLAG_CREATE if delta.header is not None else 0
    )
    writer.write_uvarint(flags)
    if delta.header is not None:
        writer.write_uvarint(len(delta.header))
        for name in delta.header:
            writer.write_str(name)
        writer.write_str(delta.domain)
        writer.write_str(delta.title)
    writer.write_uvarint(len(delta.upserts))
    for row in delta.upserts:
        writer.write_uvarint(len(row))
        for cell in row:
            writer.write_str(cell)
    writer.write_uvarint(len(delta.deletes))
    for key in delta.deletes:
        writer.write_str(key)
    return writer.getvalue()


def decode_delta_record(payload: bytes) -> tuple[int, TableDelta]:
    """Decode one record payload back to ``(seq, delta)``; raises CodecError."""
    reader = ByteReader(payload)
    seq = reader.read_uvarint()
    table_id = reader.read_str()
    flags = reader.read_uvarint()
    header: tuple[str, ...] | None = None
    domain = ""
    title = ""
    if flags & _FLAG_CREATE:
        header = tuple(reader.read_str() for _ in range(reader.read_uvarint()))
        domain = reader.read_str()
        title = reader.read_str()
    upserts = tuple(
        tuple(reader.read_str() for _ in range(reader.read_uvarint()))
        for _ in range(reader.read_uvarint())
    )
    deletes = tuple(reader.read_str() for _ in range(reader.read_uvarint()))
    reader.expect_eof()
    try:
        delta = TableDelta(
            table_id=table_id,
            upserts=upserts,
            deletes=deletes,
            drop=bool(flags & _FLAG_DROP),
            header=header,
            domain=domain,
            title=title,
        )
    except ValueError as exc:
        raise CodecError(f"delta record is inconsistent: {exc}") from exc
    return seq, delta


# ---------------------------------------------------------------------------------------
# The log
# ---------------------------------------------------------------------------------------
@dataclass
class DeltaLog:
    """Append-only, fsync'd, checksummed log of :class:`TableDelta` records.

    Opening an existing log replays it: valid records populate
    :meth:`records`, and any torn/corrupt tail is truncated away
    (:attr:`truncated_on_open` reports how many bytes were discarded) so new
    appends continue the valid chain.  Sequence numbers are contiguous and
    survive compaction: :meth:`truncate` persists the last folded sequence in
    the header, so a log reopened after compaction keeps counting from there.
    """

    path: Path
    truncated_on_open: int = field(default=0, init=False)
    _base_seq: int = field(default=0, init=False)
    _records: list[tuple[int, TableDelta]] = field(default_factory=list, init=False)
    _broken: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.path.exists():
            self._replay_file()
        else:
            atomic_write_bytes(self.path, LOG_MAGIC + _BASE_SEQ.pack(0))

    # -- Introspection ------------------------------------------------------------------
    @property
    def base_seq(self) -> int:
        """The last sequence folded into the base artifact by compaction (0 = none)."""
        return self._base_seq

    @property
    def last_seq(self) -> int:
        return self._records[-1][0] if self._records else self._base_seq

    @property
    def next_seq(self) -> int:
        return self.last_seq + 1

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> list[tuple[int, TableDelta]]:
        """The durable, valid ``(seq, delta)`` records, in sequence order."""
        return list(self._records)

    # -- Replay / recovery --------------------------------------------------------------
    def _replay_file(self) -> None:
        data = self.path.read_bytes()
        if len(data) < _HEADER_SIZE or not data.startswith(LOG_MAGIC):
            raise DeltaLogError(f"{self.path} is not a repro delta log")
        self._base_seq = _BASE_SEQ.unpack_from(data, len(LOG_MAGIC))[0]
        offset = _HEADER_SIZE
        expected = self._base_seq + 1
        while True:
            if offset + _RECORD_LENGTH.size > len(data):
                break
            (length,) = _RECORD_LENGTH.unpack_from(data, offset)
            start = offset + _RECORD_LENGTH.size
            end = start + _DIGEST_SIZE + length
            if length > _MAX_RECORD or end > len(data):
                break
            digest = data[start : start + _DIGEST_SIZE]
            payload = data[start + _DIGEST_SIZE : end]
            if hashlib.sha256(payload).digest() != digest:
                break
            try:
                seq, delta = decode_delta_record(payload)
            except CodecError:
                break
            if seq != expected:
                break
            self._records.append((seq, delta))
            expected += 1
            offset = end
        # Truncate any torn/corrupt tail so appends continue the valid chain.
        self.truncated_on_open = len(data) - offset
        if self.truncated_on_open:
            with open(self.path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())

    # -- Mutation -----------------------------------------------------------------------
    def append(self, delta: TableDelta) -> int:
        """Durably append one delta; returns its sequence number.

        The record is flushed and fsync'd before returning, so a crash after
        ``append`` can never lose the delta.  Raises :class:`DeltaLogError` if
        the write fails mid-record (the log then refuses further appends until
        reopened — reopening truncates the torn tail).
        """
        if self._broken:
            raise DeltaLogError(
                f"{self.path} has a torn tail from a failed append; reopen the "
                "log to recover"
            )
        seq = self.next_seq
        payload = encode_delta_record(seq, delta)
        record = (
            _RECORD_LENGTH.pack(len(payload))
            + hashlib.sha256(payload).digest()
            + payload
        )
        injector = active_injector()
        torn = injector is not None and injector.delta_append_failure()
        if injector is not None and not torn and injector.corrupt_delta():
            # The bytes are damaged on the way to disk; the writer does not
            # notice.  Replay stops at this record and discards it.
            record = injector.corrupt(record)
        with open(self.path, "ab") as handle:
            if torn:
                handle.write(record[: max(1, len(record) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                self._broken = True
                raise DeltaLogError(
                    f"append of delta seq {seq} to {self.path} tore mid-record"
                )
            handle.write(record)
            handle.flush()
            os.fsync(handle.fileno())
        self._records.append((seq, delta))
        return seq

    def truncate(self, through_seq: int | None = None) -> None:
        """Drop all records, recording ``through_seq`` as folded into the base.

        Called after compaction: the deltas now live in the base artifact
        sections, so the log restarts empty with its base sequence advanced
        (sequence numbers stay monotonic across compactions and reopens).
        """
        base = self.last_seq if through_seq is None else through_seq
        atomic_write_bytes(self.path, LOG_MAGIC + _BASE_SEQ.pack(base))
        self._base_seq = base
        self._records = []
        self._broken = False

    def replay(self, corpus: TableCorpus) -> TableCorpus:
        """Apply every valid record, in order, to ``corpus`` (crash recovery)."""
        for _, delta in self._records:
            corpus = delta.apply_to(corpus)
        return corpus
