"""Streaming updates: durable delta log, incremental repair, live delta serving.

The update path keeps a served corpus fresh without cold rebuilds:

* :mod:`repro.updates.deltalog` — :class:`TableDelta` (one table's change) and
  :class:`DeltaLog` (append-only, fsync'd, checksummed, crash-safe).
* :mod:`repro.updates.engine` — :class:`IncrementalEngine`, which repairs the
  compatibility graph and only the touched partitions, producing a
  :class:`PoolPatch` byte-identical to a cold rebuild's pool.
* :mod:`repro.updates.journal` — ``delta.N`` sections appended to v2
  artifacts, plus :class:`ArtifactDeltaView` for base + journal reads.
* :mod:`repro.updates.stream` — :class:`UpdateStream`, the writer that
  sequences log -> engine -> journal -> daemon/router and auto-compacts.
"""

from repro.updates.deltalog import (
    DeltaLog,
    DeltaLogError,
    TableDelta,
    decode_delta_record,
    encode_delta_record,
)
from repro.updates.engine import (
    EngineStats,
    IncrementalEngine,
    PoolPatch,
    diff_pool,
)
from repro.updates.journal import (
    DELTA_SECTION_PREFIX,
    ArtifactDeltaView,
    DeltaRecord,
    append_delta_section,
    read_delta_sections,
)
from repro.updates.stream import UpdateStream

__all__ = [
    "TableDelta",
    "DeltaLog",
    "DeltaLogError",
    "encode_delta_record",
    "decode_delta_record",
    "IncrementalEngine",
    "PoolPatch",
    "EngineStats",
    "diff_pool",
    "DELTA_SECTION_PREFIX",
    "DeltaRecord",
    "append_delta_section",
    "read_delta_sections",
    "ArtifactDeltaView",
    "UpdateStream",
]
