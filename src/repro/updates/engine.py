"""Incremental graph/partition repair: re-synthesize only what a delta touched.

:class:`IncrementalEngine` keeps the whole synthesis state of one corpus live
in memory and repairs it in place when a
:class:`~repro.updates.deltalog.TableDelta` arrives.  The repair exploits the
locality the paper's pipeline already has:

* **Blocking is a pure pair function.**  A pair of candidates is blocked iff
  their profile key sets share ``overlap_threshold`` keys — a property of the
  two candidates alone.  The engine maintains the inverted-index postings and
  shared-key counts incrementally, so only pairs whose postings actually
  changed (pairs touching a changed candidate) are re-examined.
* **Scores are pure pair functions too.**  Edges between two unchanged
  candidates are carried over verbatim — the same reuse contract
  :meth:`GraphBuilder.build` exposes through ``reusable_scores`` and
  :func:`repro.store.incremental.refresh_artifact` relies on.  Only the
  blocked pairs involving a changed candidate are re-scored.
* **Partitioning is per positive component.**  Components whose membership
  and internal edges did not change (no member candidate changed) reuse
  their previous grouping; dirty components are re-partitioned through the
  real :class:`GreedyPartitioner` over an order-preserving subgraph, which
  reproduces the global algorithm's tie-breaking exactly.
* **Materialization is a pure partition function.**  Unchanged partitions at
  an unchanged global index reuse their previous
  :class:`MappingRelationship` object via
  :meth:`TableSynthesizer.materialize_partition`.

The result is **exactly** what a cold pipeline run over the updated corpus
would produce (the equivalence suite locks this byte-for-byte), at a cost
proportional to the delta's blast radius instead of the corpus size — which
is what gets update-to-servable latency from a pipeline run to milliseconds.

The engine requires ``use_pmi_filter=False`` (the PMI filter is corpus-global,
so per-table candidate reuse would only approximate a cold rebuild — the same
restriction incremental refresh documents) and ``expand_tables=False``
(expansion depends on trusted sources outside the corpus).
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, replace

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.corpus.corpus import TableCorpus
from repro.extraction.candidates import CandidateExtractor, ExtractionStats
from repro.graph.build import CompatibilityGraph
from repro.graph.connected import UnionFind
from repro.store.fingerprint import (
    corpus_digest,
    fingerprint_synonyms,
    fingerprint_table,
)
from repro.synthesis.curation import curate_mappings
from repro.synthesis.synthesizer import TableSynthesizer
from repro.updates.deltalog import TableDelta

__all__ = ["PoolPatch", "EngineStats", "IncrementalEngine", "diff_pool"]


@dataclass(frozen=True)
class PoolPatch:
    """The served-pool difference one delta caused: upserts + removals.

    ``upserts`` carries every mapping that is new or changed in the updated
    pool; ``removed`` the ids no longer present.  Applying the patch to the
    old pool (remove, then upsert) reproduces the new pool as a set — serving
    layers re-sort by the total rank order, so set equality is enough for
    byte-identical responses.
    """

    upserts: tuple[MappingRelationship, ...]
    removed: tuple[str, ...]
    #: Size of the updated served pool (after the patch).
    pool_size: int

    @property
    def change_count(self) -> int:
        return len(self.upserts) + len(self.removed)

    @property
    def is_empty(self) -> bool:
        return self.change_count == 0


def diff_pool(
    old: list[MappingRelationship], new: list[MappingRelationship]
) -> PoolPatch:
    """Diff two served pools by mapping id + full value equality."""
    old_by_id = {mapping.mapping_id: mapping for mapping in old}
    upserts = tuple(
        mapping
        for mapping in new
        if (previous := old_by_id.get(mapping.mapping_id)) is None
        or (previous is not mapping and previous != mapping)
    )
    new_ids = {mapping.mapping_id for mapping in new}
    removed = tuple(
        mapping_id for mapping_id in old_by_id if mapping_id not in new_ids
    )
    return PoolPatch(upserts=upserts, removed=removed, pool_size=len(new))


@dataclass
class EngineStats:
    """Accounting for one :meth:`IncrementalEngine.apply` call."""

    tables_touched: int = 0
    candidates_total: int = 0
    candidates_changed: int = 0
    pairs_dirty: int = 0
    pairs_scored: int = 0
    partitions_recomputed: int = 0
    partitions_reused: int = 0
    mappings_rematerialized: int = 0
    mappings_reused: int = 0
    patch_upserts: int = 0
    patch_removed: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "tables_touched": float(self.tables_touched),
            "candidates_total": float(self.candidates_total),
            "candidates_changed": float(self.candidates_changed),
            "pairs_dirty": float(self.pairs_dirty),
            "pairs_scored": float(self.pairs_scored),
            "partitions_recomputed": float(self.partitions_recomputed),
            "partitions_reused": float(self.partitions_reused),
            "mappings_rematerialized": float(self.mappings_rematerialized),
            "mappings_reused": float(self.mappings_reused),
            "patch_upserts": float(self.patch_upserts),
            "patch_removed": float(self.patch_removed),
            "seconds": self.seconds,
        }


def _id_key(first: str, second: str) -> tuple[str, str]:
    return (first, second) if first <= second else (second, first)


def _same_candidate(old: BinaryTable, new: BinaryTable) -> bool:
    """Full content equality (``BinaryTable.__eq__`` only compares ids)."""
    return (
        old.pairs == new.pairs
        and old.left_name == new.left_name
        and old.right_name == new.right_name
        and old.source_table_id == new.source_table_id
        and old.domain == new.domain
        and old.metadata == new.metadata
    )


class IncrementalEngine:
    """Live synthesis state with delta-sized repair cost (see module docstring)."""

    def __init__(
        self,
        corpus: TableCorpus,
        config: SynthesisConfig | None = None,
        synonyms=None,
        *,
        prefer_curated: bool = True,
    ) -> None:
        self.config = config or SynthesisConfig()
        if self.config.use_pmi_filter:
            raise ValueError(
                "IncrementalEngine requires use_pmi_filter=False: the PMI "
                "filter is corpus-global, so per-table candidate reuse would "
                "only approximate a cold rebuild"
            )
        if self.config.expand_tables:
            raise ValueError(
                "IncrementalEngine does not support expand_tables: expansion "
                "depends on trusted sources outside the corpus"
            )
        self.synonyms = synonyms
        self.prefer_curated = prefer_curated
        self._extractor = CandidateExtractor(self.config)
        self._synthesizer = TableSynthesizer(self.config, synonyms)
        self._corpus = corpus
        self._fingerprints: dict[str, str] = {}
        self._cands_by_source: dict[str, list[BinaryTable]] = {}
        self._stats_by_source: dict[str, ExtractionStats] = {}
        self.last_stats = EngineStats()

        for table in corpus:
            self._fingerprints[table.table_id] = fingerprint_table(table)
            self._extract_one(table)
        self._candidates: list[BinaryTable] = []
        self._assemble_candidates()

        # Cold start: one full synthesis through the standard builder, then
        # derive the incremental indexes (postings, shared-key counts,
        # id-keyed edges, per-component partition cache, per-partition
        # mapping cache) from its outputs.
        synthesis = self._synthesizer.synthesize(self._candidates)
        self._pos_edges: dict[tuple[str, str], float] = {}
        self._neg_edges: dict[tuple[str, str], float] = {}
        graph = synthesis.graph
        for (i, j), weight in graph.positive_edges.items():
            key = _id_key(graph.tables[i].table_id, graph.tables[j].table_id)
            self._pos_edges[key] = weight
        for (i, j), weight in graph.negative_edges.items():
            key = _id_key(graph.tables[i].table_id, graph.tables[j].table_id)
            self._neg_edges[key] = weight
        self._rebuild_blocking_index()
        # Dirty pairs whose negative side is blocked but not yet scored.
        # Negative edges only influence partitioning *within* a positive
        # component (the conflict constraint) and the persisted edges section,
        # so scoring them is deferred until a dirty component or
        # :meth:`graph` actually needs them — w− is by far the most expensive
        # score, and most negative-blocked pairs span unrelated components.
        self._pending_neg: set[tuple[str, str]] = set()
        self._mappings = synthesis.mappings
        self._seed_caches(synthesis)
        self._finish_outputs()

    # -- State views --------------------------------------------------------------------
    @property
    def corpus(self) -> TableCorpus:
        return self._corpus

    @property
    def candidates(self) -> list[BinaryTable]:
        return list(self._candidates)

    @property
    def mappings(self) -> list[MappingRelationship]:
        return list(self._mappings)

    @property
    def curated(self) -> list[MappingRelationship]:
        return list(self._curated)

    @property
    def pool(self) -> list[MappingRelationship]:
        """The served pool (curated when preferred and non-empty, else all)."""
        return list(self._pool)

    # -- Cold-start helpers -------------------------------------------------------------
    def _extract_one(self, table) -> None:
        cands, stats = self._extractor.extract_tables([table])
        self._cands_by_source[table.table_id] = cands
        self._stats_by_source[table.table_id] = stats

    def _assemble_candidates(self) -> None:
        candidates: list[BinaryTable] = []
        for table in self._corpus:
            candidates.extend(self._cands_by_source.get(table.table_id, ()))
        self._candidates = candidates
        self._index_of = {c.table_id: i for i, c in enumerate(candidates)}
        self._by_id = {c.table_id: c for c in candidates}

    def _rebuild_blocking_index(self) -> None:
        """Postings + shared-key counts over all current candidates (cold path)."""
        scorer = self._synthesizer.graph_builder.scorer
        self._pair_posting: dict[tuple[str, str], set[str]] = defaultdict(set)
        self._left_posting: dict[str, set[str]] = defaultdict(set)
        self._pair_counts: dict[tuple[str, str], int] = {}
        self._left_counts: dict[tuple[str, str], int] = {}
        for candidate in self._candidates:
            profile = scorer.profile(candidate)
            cid = candidate.table_id
            for key in profile.pair_keys:
                posting = self._pair_posting[key]
                for other in posting:
                    pk = _id_key(cid, other)
                    self._pair_counts[pk] = self._pair_counts.get(pk, 0) + 1
                posting.add(cid)
            for key in profile.left_key_set:
                posting = self._left_posting[key]
                for other in posting:
                    pk = _id_key(cid, other)
                    self._left_counts[pk] = self._left_counts.get(pk, 0) + 1
                posting.add(cid)

    def _seed_caches(self, synthesis) -> None:
        """Per-component partition groups + per-partition mappings from a cold run."""
        finder = UnionFind(c.table_id for c in self._candidates)
        for first, second in self._pos_edges:
            finder.union(first, second)
        groups_by_component: dict[frozenset, list[frozenset]] = defaultdict(list)
        self._mapping_cache: dict[tuple, MappingRelationship] = {}
        partitions = synthesis.partition_result.partitions
        for index, partition in enumerate(partitions):
            member_ids = [self._candidates[v].table_id for v in partition]
            root = finder.find(member_ids[0])
            groups_by_component[root].append(frozenset(member_ids))
            self._mapping_cache[tuple(member_ids)] = self._mappings[index]
        self._partition_cache: dict[frozenset, tuple[frozenset, ...]] = {}
        components: dict = defaultdict(list)
        for candidate in self._candidates:
            components[finder.find(candidate.table_id)].append(candidate.table_id)
        for root, members in components.items():
            self._partition_cache[frozenset(members)] = tuple(
                groups_by_component[root]
            )

    # -- Blocking maintenance -----------------------------------------------------------
    def _blocking_remove(self, candidate: BinaryTable) -> set[tuple[str, str]]:
        scorer = self._synthesizer.graph_builder.scorer
        profile = scorer.profile(candidate)
        cid = candidate.table_id
        dirty: set[tuple[str, str]] = set()
        for key in profile.pair_keys:
            posting = self._pair_posting.get(key)
            if posting is None:
                continue
            posting.discard(cid)
            if not posting:
                del self._pair_posting[key]
                continue
            for other in posting:
                pk = _id_key(cid, other)
                dirty.add(pk)
                remaining = self._pair_counts.get(pk, 0) - 1
                if remaining > 0:
                    self._pair_counts[pk] = remaining
                else:
                    self._pair_counts.pop(pk, None)
        for key in profile.left_key_set:
            posting = self._left_posting.get(key)
            if posting is None:
                continue
            posting.discard(cid)
            if not posting:
                del self._left_posting[key]
                continue
            for other in posting:
                pk = _id_key(cid, other)
                dirty.add(pk)
                remaining = self._left_counts.get(pk, 0) - 1
                if remaining > 0:
                    self._left_counts[pk] = remaining
                else:
                    self._left_counts.pop(pk, None)
        return dirty

    def _blocking_add(self, candidate: BinaryTable) -> set[tuple[str, str]]:
        scorer = self._synthesizer.graph_builder.scorer
        profile = scorer.profile(candidate)
        cid = candidate.table_id
        dirty: set[tuple[str, str]] = set()
        for key in profile.pair_keys:
            posting = self._pair_posting[key]
            for other in posting:
                pk = _id_key(cid, other)
                dirty.add(pk)
                self._pair_counts[pk] = self._pair_counts.get(pk, 0) + 1
            posting.add(cid)
        for key in profile.left_key_set:
            posting = self._left_posting[key]
            for other in posting:
                pk = _id_key(cid, other)
                dirty.add(pk)
                self._left_counts[pk] = self._left_counts.get(pk, 0) + 1
            posting.add(cid)
        return dirty

    # -- Delta application --------------------------------------------------------------
    def apply(self, delta: TableDelta | list[TableDelta]) -> PoolPatch:
        """Apply one delta (or a batch) and return the served-pool patch.

        Raises :class:`~repro.updates.deltalog.DeltaLogError` (before any
        state changes) if a delta is inconsistent with the corpus; the engine
        is never left half-updated.
        """
        start = time.perf_counter()
        deltas = [delta] if isinstance(delta, TableDelta) else list(delta)
        corpus = self._corpus
        touched: set[str] = set()
        for one in deltas:
            corpus = one.apply_to(corpus)
            touched.add(one.table_id)
        old_pool = self._pool
        stats = EngineStats(tables_touched=len(touched))
        self.last_stats = stats

        # 1. Re-fingerprint and re-extract only the touched tables.  A
        #    re-extracted candidate whose content is unchanged keeps its old
        #    object: the scorer's identity-keyed profile cache, the carried
        #    edges, and the partition/mapping caches all stay valid for it.
        new_tables = {table.table_id: table for table in corpus}
        removed_cands: list[BinaryTable] = []
        added_cands: list[BinaryTable] = []
        for source in sorted(touched):
            previous = self._cands_by_source.pop(source, [])
            self._stats_by_source.pop(source, None)
            self._fingerprints.pop(source, None)
            table = new_tables.get(source)
            if table is None:
                removed_cands.extend(previous)
                continue
            self._fingerprints[source] = fingerprint_table(table)
            fresh, fresh_stats = self._extractor.extract_tables([table])
            previous_by_id = {c.table_id: c for c in previous}
            kept: list[BinaryTable] = []
            for candidate in fresh:
                old = previous_by_id.pop(candidate.table_id, None)
                if old is not None and _same_candidate(old, candidate):
                    kept.append(old)
                else:
                    kept.append(candidate)
                    added_cands.append(candidate)
                    if old is not None:
                        removed_cands.append(old)
            removed_cands.extend(previous_by_id.values())
            self._cands_by_source[source] = kept
            self._stats_by_source[source] = fresh_stats
        changed_ids = {c.table_id for c in removed_cands} | {
            c.table_id for c in added_cands
        }
        stats.candidates_changed = len(changed_ids)

        # 2. Update postings/counts; every pair whose postings changed is
        #    dirty.  Edges between unchanged candidates are untouched.
        dirty: set[tuple[str, str]] = set()
        for candidate in removed_cands:
            dirty |= self._blocking_remove(candidate)
        for candidate in added_cands:
            dirty |= self._blocking_add(candidate)
        for pk in dirty:
            self._pos_edges.pop(pk, None)
            self._neg_edges.pop(pk, None)
        stats.pairs_dirty = len(dirty)

        self._corpus = corpus
        self._assemble_candidates()

        # 3. Re-score only the dirty pairs that are currently blocked,
        #    mirroring GraphBuilder's task semantics (compute only the sides
        #    the blocking asked for; argument order follows candidate order).
        scorer = self._synthesizer.graph_builder.scorer
        overlap = self.config.overlap_threshold
        use_negative = self.config.use_negative_edges
        edge_threshold = self.config.edge_threshold
        for pk in dirty:
            self._pending_neg.discard(pk)
            first_id, second_id = pk
            first = self._by_id.get(first_id)
            second = self._by_id.get(second_id)
            if first is None or second is None:
                continue
            blocked_pos = self._pair_counts.get(pk, 0) >= overlap
            blocked_neg = use_negative and self._left_counts.get(pk, 0) >= overlap
            if blocked_pos:
                # Positive edges define component membership, so they must be
                # exact *now*.  Profile arguments follow candidate order,
                # mirroring the cold builder's task layout.
                if self._index_of[first_id] > self._index_of[second_id]:
                    first, second = second, first
                positive = scorer.positive_profiles(
                    scorer.profile(first), scorer.profile(second)
                )
                stats.pairs_scored += 1
                if positive >= edge_threshold:
                    self._pos_edges[pk] = positive
            if blocked_neg:
                self._pending_neg.add(pk)

        # 4. Re-partition only dirty components; reuse groupings elsewhere.
        self._repair_partitions(changed_ids, stats)

        self._finish_outputs()
        patch = diff_pool(old_pool, self._pool)
        stats.candidates_total = len(self._candidates)
        stats.patch_upserts = len(patch.upserts)
        stats.patch_removed = len(patch.removed)
        stats.seconds = time.perf_counter() - start
        self.last_stats = stats
        return patch

    # -- Partition / materialization repair ---------------------------------------------
    def _repair_partitions(self, changed_ids: set[str], stats: EngineStats) -> None:
        finder = UnionFind(c.table_id for c in self._candidates)
        for first, second in self._pos_edges:
            finder.union(first, second)
        # UnionFind.groups() lists members in insertion order == candidate
        # (global index) order — the same within-component order the global
        # partitioner sees, so local tie-breaking is reproduced exactly.
        new_partition_cache: dict[frozenset, tuple[frozenset, ...]] = {}
        groups_global: list[list[int]] = []
        for component in finder.groups():
            key = frozenset(component)
            if len(component) == 1:
                groups = (key,)
            elif key in self._partition_cache and key.isdisjoint(changed_ids):
                groups = self._partition_cache[key]
                stats.partitions_reused += len(groups)
            else:
                groups = self._partition_component(component)
                stats.partitions_recomputed += len(groups)
            new_partition_cache[key] = groups
            for group in groups:
                groups_global.append(
                    sorted(self._index_of[cid] for cid in group)
                )
        self._partition_cache = new_partition_cache
        groups_global.sort(key=lambda vertices: (-len(vertices), vertices))

        new_mapping_cache: dict[tuple, MappingRelationship] = {}
        mappings: list[MappingRelationship] = []
        for index, vertices in enumerate(groups_global):
            ids_key = tuple(self._candidates[v].table_id for v in vertices)
            mapping_id = f"mapping-{index:05d}"
            cached = self._mapping_cache.get(ids_key)
            if cached is not None and changed_ids.isdisjoint(ids_key):
                if cached.mapping_id == mapping_id:
                    mapping = cached
                else:
                    # The partition itself is unchanged; only its position in
                    # the global size-sorted order moved.  The id is the sole
                    # index-dependent output of materialization, so a renamed
                    # copy is exact (and skips conflict re-resolution).
                    mapping = replace(cached, mapping_id=mapping_id)
                stats.mappings_reused += 1
            else:
                tables = [self._candidates[v] for v in vertices]
                mapping = self._synthesizer.materialize_partition(tables, index)
                stats.mappings_rematerialized += 1
            new_mapping_cache[ids_key] = mapping
            mappings.append(mapping)
        self._mapping_cache = new_mapping_cache
        self._mappings = mappings

    def _partition_component(self, component: list[str]) -> tuple[frozenset, ...]:
        """Partition one dirty component through the real greedy partitioner.

        The subgraph preserves the component's global candidate order, so the
        partitioner's local-index tie-breaking matches what it would do inside
        a full-graph run.
        """
        tables = [self._by_id[cid] for cid in component]
        sub = CompatibilityGraph(tables=tables)
        size = len(component)
        for i in range(size):
            for j in range(i + 1, size):
                pk = _id_key(component[i], component[j])
                if pk in self._pending_neg:
                    self._resolve_negative(pk)
                positive = self._pos_edges.get(pk)
                if positive is not None:
                    sub.add_positive(i, j, positive)
                negative = self._neg_edges.get(pk)
                if negative is not None:
                    sub.add_negative(i, j, negative)
        result = self._synthesizer.partitioner.partition(sub)
        return tuple(
            frozenset(component[v] for v in partition.vertices)
            for partition in result.partitions
        )

    def _resolve_negative(self, pk: tuple[str, str]) -> None:
        """Score one deferred negative pair (see ``_pending_neg``).

        Pending pairs are maintained so that both candidates exist and the
        pair is negative-blocked whenever this runs: any delta that changes
        either side re-dirties the pair, which removes and (only if still
        blocked) re-defers it.
        """
        self._pending_neg.discard(pk)
        first = self._by_id[pk[0]]
        second = self._by_id[pk[1]]
        if self._index_of[first.table_id] > self._index_of[second.table_id]:
            first, second = second, first
        scorer = self._synthesizer.graph_builder.scorer
        negative = scorer.negative_profiles(
            scorer.profile(first), scorer.profile(second)
        )
        self.last_stats.pairs_scored += 1
        if negative < 0.0:
            self._neg_edges[pk] = negative

    def _finish_outputs(self) -> None:
        curation = curate_mappings(
            self._mappings,
            min_domains=self.config.min_domains,
            min_size=self.config.min_mapping_size,
        )
        self._curated = curation.kept
        self._pool = (
            curation.kept
            if self.prefer_curated and curation.kept
            else self._mappings
        )

    # -- Artifact materialization -------------------------------------------------------
    def extraction_stats(self) -> ExtractionStats:
        """Exact whole-corpus extraction stats, merged from the per-table shards."""
        merged = ExtractionStats()
        for table in self._corpus:
            stats = self._stats_by_source.get(table.table_id)
            if stats is not None:
                merged.merge(stats)
        return merged

    def graph(self) -> CompatibilityGraph:
        """The current compatibility graph (rebuilt from the id-keyed edges)."""
        for pk in list(self._pending_neg):
            self._resolve_negative(pk)
        graph = CompatibilityGraph(tables=list(self._candidates))
        for (first_id, second_id), weight in self._pos_edges.items():
            graph.add_positive(
                self._index_of[first_id], self._index_of[second_id], weight
            )
        for (first_id, second_id), weight in self._neg_edges.items():
            graph.add_negative(
                self._index_of[first_id], self._index_of[second_id], weight
            )
        return graph

    def artifact(self):
        """The current state as an eager :class:`SynthesisArtifact`.

        Everything except the ``stats`` section (wall-clock timings) is
        byte-identical to what a cold :class:`SynthesisPipeline` run over the
        current corpus would persist — candidates are assembled in corpus
        order, profiles come from the same scorer that computed them for
        blocking, and edges carry the reuse-exact scores.
        """
        from repro.store.artifact import SynthesisArtifact

        scorer = self._synthesizer.graph_builder.scorer
        fingerprints = {
            table.table_id: self._fingerprints[table.table_id]
            for table in self._corpus
        }
        extraction = self.extraction_stats()
        graph = self.graph()  # resolves pending negative scores first
        metadata = {
            "num_tables": float(len(self._corpus)),
            "num_candidates": float(len(self._candidates)),
            "num_mappings": float(len(self._mappings)),
            "num_curated": float(len(self._curated)),
            "num_positive_edges": float(len(self._pos_edges)),
            "num_negative_edges": float(len(self._neg_edges)),
        }
        return SynthesisArtifact.from_run(
            config=self.config,
            corpus_name=self._corpus.name,
            corpus_fingerprint=corpus_digest(fingerprints),
            table_fingerprints=fingerprints,
            candidates=self._candidates,
            graph=graph,
            synonyms_fingerprint=fingerprint_synonyms(self.synonyms),
            profiles={c.table_id: scorer.profile(c) for c in self._candidates},
            mappings=self._mappings,
            curated=self._curated,
            extraction_stats=extraction.as_dict(),
            timings={"incremental_apply": self.last_stats.seconds},
            metadata=metadata,
        )
