"""Live update stream: delta log -> incremental engine -> serving tier, in order.

:class:`UpdateStream` is the one writer that keeps the four update-path pieces
consistent for a served corpus:

1. **Durability first.**  Every delta is appended to the fsync'd
   :class:`~repro.updates.deltalog.DeltaLog` *before* any state changes.  If
   the append fails (crash, injected ``delta_append_failure``), nothing else
   moves — the engine, artifact, and serving tier still agree with the log.
2. **Exact repair.**  The :class:`~repro.updates.engine.IncrementalEngine`
   applies the delta and returns the :class:`~repro.updates.engine.PoolPatch`
   (mapping upserts/removals) that makes the served pool byte-identical to a
   cold rebuild over the updated corpus.
3. **Restart story.**  When an artifact path is attached, the patch is
   journaled as a ``delta.N`` section
   (:func:`~repro.updates.journal.append_delta_section`), so a restarted
   server can load base + journal without replaying extraction.
4. **Live serving.**  The patch fans out to an attached
   :class:`~repro.serving.SynthesisDaemon` and/or
   :class:`~repro.cluster.ClusterRouter` via their ``apply_delta`` — in-place
   index splices for small patches, full generation swaps past the
   escalation ratio.

Once the log holds :attr:`~repro.core.config.SynthesisConfig.delta_compact_threshold`
entries, :meth:`UpdateStream.apply` folds them back automatically:
:meth:`UpdateStream.compact` re-saves the engine's current artifact (dropping
the ``delta.N`` sections — :func:`~repro.store.artifact.save_artifact` only
writes base sections) and truncates the log, preserving sequence numbers.

Daemons fed through this stream must run with ``watch=False``: a file watcher
would observe the journal rewrite and swap in the *base* artifact, discarding
the live patches it already carries.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.store.artifact import save_artifact
from repro.updates.deltalog import DeltaLog, TableDelta
from repro.updates.engine import IncrementalEngine, PoolPatch
from repro.updates.journal import append_delta_section

__all__ = ["UpdateStream"]


class UpdateStream:
    """Sequences deltas through log, engine, artifact journal, and serving tier."""

    def __init__(
        self,
        engine: IncrementalEngine,
        log: DeltaLog,
        *,
        artifact_path: str | Path | None = None,
        daemon=None,
        router=None,
        auto_compact: bool = True,
    ) -> None:
        self.engine = engine
        self.log = log
        self.artifact_path = Path(artifact_path) if artifact_path else None
        self.daemon = daemon
        self.router = router
        self.auto_compact = auto_compact
        self.compactions = 0

    # -- Construction -------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        corpus: TableCorpus,
        log_path: str | Path,
        config: SynthesisConfig | None = None,
        synonyms=None,
        **kwargs,
    ) -> "UpdateStream":
        """Rebuild a stream from the base corpus plus the durable delta log.

        Opening the log truncates any torn tail from a crashed append, then the
        surviving records replay through a fresh engine — the recovered state
        is exactly the state after the last *durable* delta.  ``corpus`` must
        be the corpus as of the log's base sequence (the last compaction).
        """
        log = DeltaLog(Path(log_path))
        engine = IncrementalEngine(corpus, config, synonyms)
        for _, delta in log.records():
            engine.apply(delta)
        return cls(engine, log, **kwargs)

    # -- Properties ----------------------------------------------------------------------
    @property
    def config(self) -> SynthesisConfig:
        return self.engine.config

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable delta."""
        return self.log.last_seq

    # -- The write path -----------------------------------------------------------------
    def apply(self, delta: TableDelta) -> PoolPatch:
        """Durably log ``delta``, repair the pool, journal + serve the patch.

        The log append happens first and is the commit point: a
        :class:`~repro.updates.deltalog.DeltaLogError` (real or injected)
        propagates before the engine or any serving surface is touched.
        Auto-compacts afterwards when the log reaches
        :attr:`~repro.core.config.SynthesisConfig.delta_compact_threshold`.
        """
        seq = self.log.append(delta)
        patch = self.engine.apply(delta)
        if self.artifact_path is not None:
            append_delta_section(
                self.artifact_path,
                seq=seq,
                delta=delta,
                patch=patch,
                compress=self.config.artifact_compress,
            )
        self._fan_out(patch, seq)
        if self.auto_compact and len(self.log) >= self.config.delta_compact_threshold:
            self.compact()
        return patch

    def _fan_out(self, patch: PoolPatch, seq: int) -> None:
        ratio = self.config.delta_escalation_ratio
        if self.daemon is not None:
            self.daemon.apply_delta(
                patch.upserts, patch.removed, seq=seq, escalation_ratio=ratio
            )
        if self.router is not None:
            self.router.apply_delta(
                patch.upserts,
                patch.removed,
                seq=seq,
                escalation_ratio=ratio,
                pool_size=patch.pool_size,
            )

    # -- Compaction ----------------------------------------------------------------------
    def compact(self) -> Path | None:
        """Fold the journal into the base artifact and truncate the log.

        Re-saves the engine's current artifact over the journaled file —
        :func:`~repro.store.artifact.save_artifact` writes only the base
        sections, so every ``delta.N`` section is dropped and every section
        except ``stats`` (whose timings record how the artifact was produced)
        is byte-identical to one written by a cold rebuild over the updated
        corpus.  The log restarts empty with its base sequence advanced,
        keeping sequence numbers monotonic across compactions.
        """
        path = None
        if self.artifact_path is not None:
            path = save_artifact(
                self.engine.artifact(),
                self.artifact_path,
                compress=self.config.artifact_compress,
            )
        self.log.truncate()
        self.compactions += 1
        return path
