"""Delta sections inside v2 artifacts: journal appends + merged views + compaction.

A served artifact and its live update stream must survive a restart together.
Rewriting the whole artifact per delta would make update durability cost
O(corpus); this module instead appends each delta as an extra ``delta.N``
section to the existing sectioned container (:mod:`repro.store.format`):

* every *base* section's stored bytes are copied **verbatim** (no decode, no
  re-encode — the same reuse path :func:`repro.store.artifact.save_artifact`
  uses for clean sections), so the append costs one file rewrite but zero
  re-encoding work;
* the new ``delta.N`` section carries the table delta *and* the served-pool
  patch it produced, canonically JSON-encoded and checksummed like any other
  section — :meth:`ArtifactReader.verify` covers delta sections for free.

:class:`ArtifactDeltaView` is the read side: the lazily-decoded base artifact
plus every delta section in order, with :meth:`ArtifactDeltaView.merged_pool`
reproducing the pool a live daemon that applied the same patches serves.

**Compaction is a plain save**: :func:`repro.store.artifact.save_artifact`
iterates only the base section names, so saving the update engine's current
artifact to the same path folds every delta into the base sections and drops
the journal — byte-identical, section by section, to an artifact written by a
cold rebuild over the updated corpus, except the ``stats`` section whose
timings record *how* the artifact was produced (the equivalence suite locks
this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.mapping import MappingRelationship
from repro.store.artifact import SynthesisArtifact
from repro.store.format import ArtifactReader, ArtifactWriter
from repro.store.sections import decode_mapping, encode_mapping
from repro.updates.deltalog import TableDelta
from repro.updates.engine import PoolPatch

__all__ = [
    "DELTA_SECTION_PREFIX",
    "DeltaRecord",
    "append_delta_section",
    "read_delta_sections",
    "ArtifactDeltaView",
]

#: Section-name prefix for journal entries: ``delta.0``, ``delta.1``, ...
DELTA_SECTION_PREFIX = "delta."


def _canonical_bytes(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class DeltaRecord:
    """One decoded ``delta.N`` section: the table delta plus its pool patch."""

    #: Delta-log sequence number this section mirrors.
    seq: int
    #: The corpus-level change.
    delta: TableDelta
    #: The served-pool patch the update engine derived from it.
    patch: PoolPatch


def _delta_section_count(reader: ArtifactReader) -> int:
    return sum(
        1 for name in reader.sections if name.startswith(DELTA_SECTION_PREFIX)
    )


def append_delta_section(
    path: str | Path,
    *,
    seq: int,
    delta: TableDelta,
    patch: PoolPatch,
    compress: bool = True,
) -> Path:
    """Append one delta as a ``delta.N`` section to the artifact at ``path``.

    Base sections (and previously appended deltas) are carried over verbatim
    from their stored bytes; only the new section is encoded.  The rewrite
    itself goes through the container writer's fsynced atomic commit, so a
    crash mid-append leaves the previous artifact version intact.
    """
    path = Path(path)
    reader = ArtifactReader.from_path(path)
    writer = ArtifactWriter(path, compress=compress)
    for name, info in reader.sections.items():
        writer.add_stored(
            name,
            reader.stored_bytes(name, verify=False),
            info.codec,
            items=info.items,
            checksum=info.checksum,
        )
    payload = {
        "seq": seq,
        "delta": delta.as_json(),
        "patch": {
            "upserts": [encode_mapping(mapping) for mapping in patch.upserts],
            "removed": list(patch.removed),
            "pool_size": patch.pool_size,
        },
    }
    writer.add(
        f"{DELTA_SECTION_PREFIX}{_delta_section_count(reader)}",
        _canonical_bytes(payload),
        codec="json",
        items=1,
    )
    writer.commit()
    return path


def read_delta_sections(source: ArtifactReader | str | Path) -> list[DeltaRecord]:
    """Decode every ``delta.N`` section of an artifact, in append order."""
    reader = (
        source
        if isinstance(source, ArtifactReader)
        else ArtifactReader.from_path(source)
    )
    records: list[DeltaRecord] = []
    for index in range(_delta_section_count(reader)):
        payload = json.loads(
            reader.payload_bytes(f"{DELTA_SECTION_PREFIX}{index}")
        )
        patch = payload["patch"]
        records.append(
            DeltaRecord(
                seq=int(payload["seq"]),
                delta=TableDelta.from_json(payload["delta"]),
                patch=PoolPatch(
                    upserts=tuple(
                        decode_mapping(data) for data in patch["upserts"]
                    ),
                    removed=tuple(patch["removed"]),
                    pool_size=int(patch["pool_size"]),
                ),
            )
        )
    return records


class ArtifactDeltaView:
    """Merged base + journal view of an artifact carrying delta sections."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.reader = ArtifactReader.from_path(self.path)
        #: The base artifact (lazily decoded; delta sections are ignored by it).
        self.base = SynthesisArtifact.from_reader(self.reader)
        #: Journal entries in append order.
        self.records = read_delta_sections(self.reader)

    @property
    def last_seq(self) -> int | None:
        """Sequence number of the newest journal entry (``None`` when empty)."""
        return self.records[-1].seq if self.records else None

    def merged_pool(
        self, *, prefer_curated: bool = True
    ) -> list[MappingRelationship]:
        """The served pool after replaying every journal patch over the base.

        Matches what a daemon that applied the same patches via
        :meth:`~repro.serving.SynthesisDaemon.apply_delta` serves (the serving
        index re-sorts, so pool order here is insertion order, not rank
        order).
        """
        curated = self.base.curated
        pool = (
            curated if prefer_curated and curated else self.base.mappings
        )
        by_id = {mapping.mapping_id: mapping for mapping in pool}
        for record in self.records:
            for mapping_id in record.patch.removed:
                by_id.pop(mapping_id, None)
            for mapping in record.patch.upserts:
                by_id[mapping.mapping_id] = mapping
        return list(by_id.values())
