"""repro — reproduction of *Synthesizing Mapping Relationships Using Table Corpus*.

The package implements the full pipeline from Wang & He (SIGMOD 2017):

* :mod:`repro.corpus` — table corpus substrate (synthetic web / enterprise corpora).
* :mod:`repro.extraction` — candidate two-column table extraction (PMI + FD filters).
* :mod:`repro.text` — approximate string matching used throughout.
* :mod:`repro.graph` — compatibility graph construction and partitioning.
* :mod:`repro.synthesis` — table synthesis, conflict resolution, expansion, curation.
* :mod:`repro.core` — configuration, pipeline orchestration, result model.
* :mod:`repro.exec` — pluggable execution backends (serial / thread / process)
  behind :attr:`SynthesisConfig.executor`, shared by every parallel stage.
* :mod:`repro.baselines` — every comparison method from the paper's evaluation.
* :mod:`repro.mapreduce` — a small local map/shuffle/reduce engine.
* :mod:`repro.applications` — auto-correction, auto-fill, auto-join on top of mappings.
* :mod:`repro.store` — versioned on-disk synthesis artifacts + incremental refresh.
* :mod:`repro.serving` — concurrent service daemon with artifact hot-reload.
* :mod:`repro.faults` — retry/backoff, circuit breaking, and deterministic
  fault injection backing the exec and serving tiers' fault tolerance.
* :mod:`repro.evaluation` — metrics, benchmarks, and experiment drivers.
"""

from repro.core.config import SynthesisConfig
from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.mapping import MappingRelationship
from repro.core.pipeline import SynthesisPipeline

__version__ = "1.0.0"

__all__ = [
    "SynthesisConfig",
    "BinaryTable",
    "ValuePair",
    "MappingRelationship",
    "SynthesisPipeline",
    "__version__",
]
