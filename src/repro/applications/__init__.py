"""Applications powered by synthesized mapping tables (paper §1).

The paper motivates mapping tables with three applications: auto-correction,
auto-fill, and auto-join.  All three are implemented here on top of a
:class:`~repro.applications.index.MappingIndex` that finds the relevant mapping via
value containment, using bloom filters for cheap membership pre-checks (as the
paper suggests for indexing materialized mappings).

:class:`~repro.applications.service.MappingService` wraps all three behind a
batched serving API over one shared index, loadable from a persisted synthesis
artifact (:mod:`repro.store`) so serving never pays for a pipeline run.
"""

from repro.applications.bloom import BloomFilter
from repro.applications.index import MappingIndex, MappingMatch
from repro.applications.autocorrect import AutoCorrector, CorrectionSuggestion
from repro.applications.autofill import AutoFiller, FillResult
from repro.applications.autojoin import AutoJoiner, JoinResult
from repro.applications.service import (
    CorrectRequest,
    FillRequest,
    JoinRequest,
    LookupRequest,
    MappingService,
    ServedResponse,
    ServiceStats,
)

__all__ = [
    "BloomFilter",
    "MappingIndex",
    "MappingMatch",
    "AutoCorrector",
    "CorrectionSuggestion",
    "AutoFiller",
    "FillResult",
    "AutoJoiner",
    "JoinResult",
    "MappingService",
    "FillRequest",
    "JoinRequest",
    "CorrectRequest",
    "LookupRequest",
    "ServedResponse",
    "ServiceStats",
]
