"""Mapping index: find the synthesized mapping that covers a set of user values.

Applications (auto-correct, auto-fill, auto-join) all start from the same question:
*given values from a user's column(s), which mapping relationship are they from?*
The index answers it by value containment — the fraction of (normalized) user
values found in a mapping's left or right column — with bloom filters as a cheap
pre-filter before exact containment is computed.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.applications.bloom import BloomFilter
from repro.core.mapping import MappingRelationship
from repro.text.matching import normalize_value

__all__ = ["MappingMatch", "MappingIndex"]


@dataclass(frozen=True)
class MappingMatch:
    """One candidate mapping for a lookup, with its containment scores."""

    mapping: MappingRelationship
    left_containment: float
    right_containment: float
    direction: str  # "forward" (values matched the left column) or "reverse"

    @property
    def score(self) -> float:
        """The containment in the matched direction."""
        return self.left_containment if self.direction == "forward" else self.right_containment


class MappingIndex:
    """Index of synthesized mappings supporting containment-based lookup."""

    def __init__(
        self,
        mappings: Iterable[MappingRelationship],
        bloom_false_positive_rate: float = 0.01,
    ) -> None:
        self.mappings = list(mappings)
        self._left_sets: list[set[str]] = []
        self._right_sets: list[set[str]] = []
        self._left_blooms: list[BloomFilter] = []
        self._right_blooms: list[BloomFilter] = []
        for mapping in self.mappings:
            left, right, left_bloom, right_bloom = self._entry(
                mapping, bloom_false_positive_rate
            )
            self._left_sets.append(left)
            self._right_sets.append(right)
            self._left_blooms.append(left_bloom)
            self._right_blooms.append(right_bloom)

    @staticmethod
    def _entry(mapping: MappingRelationship, bloom_false_positive_rate: float):
        """One mapping's index entry — a pure function of the mapping."""
        left = {normalize_value(pair.left) for pair in mapping.pairs}
        right = {normalize_value(pair.right) for pair in mapping.pairs}
        left_bloom = BloomFilter(max(1, len(left)), bloom_false_positive_rate)
        left_bloom.update(left)
        right_bloom = BloomFilter(max(1, len(right)), bloom_false_positive_rate)
        right_bloom.update(right)
        return left, right, left_bloom, right_bloom

    @classmethod
    def patched(
        cls,
        base: "MappingIndex",
        mappings: Iterable[MappingRelationship],
        bloom_false_positive_rate: float = 0.01,
    ) -> "MappingIndex":
        """An index over ``mappings`` reusing ``base``'s per-mapping entries.

        Entries are pure functions of the mapping object, so any mapping that
        is *the same object* as one ``base`` already indexed copies its
        normalized value sets and Bloom filters instead of recomputing them —
        this is what keeps the serving daemon's in-place delta patch
        O(changed mappings) instead of O(pool).  The shared entries are never
        mutated after construction (lookups only read them), so sharing is
        safe and the result is indistinguishable from a cold build.
        """
        index = cls.__new__(cls)
        index.mappings = list(mappings)
        index._left_sets = []
        index._right_sets = []
        index._left_blooms = []
        index._right_blooms = []
        positions = {id(mapping): at for at, mapping in enumerate(base.mappings)}
        for mapping in index.mappings:
            at = positions.get(id(mapping))
            if at is None:
                entry = cls._entry(mapping, bloom_false_positive_rate)
            else:
                entry = (
                    base._left_sets[at],
                    base._right_sets[at],
                    base._left_blooms[at],
                    base._right_blooms[at],
                )
            index._left_sets.append(entry[0])
            index._right_sets.append(entry[1])
            index._left_blooms.append(entry[2])
            index._right_blooms.append(entry[3])
        return index

    def __len__(self) -> int:
        return len(self.mappings)

    # -- Lookup ---------------------------------------------------------------------------
    @staticmethod
    def _containment(values: list[str], target: set[str]) -> float:
        if not values:
            return 0.0
        hits = sum(1 for value in values if value in target)
        return hits / len(values)

    def lookup(
        self,
        values: Iterable[str],
        min_containment: float = 0.5,
        top_k: int = 5,
    ) -> list[MappingMatch]:
        """Return mappings whose left or right column covers the given values.

        Results are sorted by containment (best first) and include the direction in
        which the values matched.
        """
        if not 0.0 <= min_containment <= 1.0:
            raise ValueError(f"min_containment must be in [0, 1], got {min_containment}")
        normalized = [normalize_value(value) for value in values if value.strip()]
        if not normalized:
            return []
        matches: list[MappingMatch] = []
        for position, mapping in enumerate(self.mappings):
            # Bloom pre-check: skip mappings that cannot possibly reach the cutoff.
            bloom_left_hits = sum(
                1 for value in normalized if value in self._left_blooms[position]
            )
            bloom_right_hits = sum(
                1 for value in normalized if value in self._right_blooms[position]
            )
            best_possible = max(bloom_left_hits, bloom_right_hits) / len(normalized)
            if best_possible < min_containment:
                continue
            left_containment = self._containment(normalized, self._left_sets[position])
            right_containment = self._containment(normalized, self._right_sets[position])
            if max(left_containment, right_containment) < min_containment:
                continue
            direction = "forward" if left_containment >= right_containment else "reverse"
            matches.append(
                MappingMatch(
                    mapping=mapping,
                    left_containment=left_containment,
                    right_containment=right_containment,
                    direction=direction,
                )
            )
        matches.sort(key=lambda match: match.score, reverse=True)
        return matches[:top_k]

    def lookup_pairs(
        self,
        pairs: Iterable[tuple[str, str]],
        min_containment: float = 0.5,
        top_k: int = 5,
    ) -> list[MappingMatch]:
        """Find mappings that cover example ``(left, right)`` pairs.

        Used by auto-fill, where the user provides a few example pairs and the
        system infers the intended mapping.
        """
        pair_list = [
            (normalize_value(left), normalize_value(right)) for left, right in pairs
        ]
        if not pair_list:
            return []
        matches: list[MappingMatch] = []
        for position, mapping in enumerate(self.mappings):
            normalized_pairs = {
                (normalize_value(pair.left), normalize_value(pair.right))
                for pair in mapping.pairs
            }
            forward_hits = sum(1 for pair in pair_list if pair in normalized_pairs)
            reverse_hits = sum(
                1 for left, right in pair_list if (right, left) in normalized_pairs
            )
            forward = forward_hits / len(pair_list)
            reverse = reverse_hits / len(pair_list)
            if max(forward, reverse) < min_containment:
                continue
            direction = "forward" if forward >= reverse else "reverse"
            matches.append(
                MappingMatch(
                    mapping=mapping,
                    left_containment=forward,
                    right_containment=reverse,
                    direction=direction,
                )
            )
        matches.sort(key=lambda match: match.score, reverse=True)
        return matches[:top_k]
