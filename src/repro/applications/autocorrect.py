"""Auto-correction: detect and fix inconsistent values in a column (paper Table 3).

If a user column mixes values from both sides of a mapping (e.g. full state names
and state abbreviations), the corrector detects the inconsistency and suggests
rewriting the minority representation into the majority one using the mapping.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.applications.index import MappingIndex
from repro.core.mapping import MappingRelationship
from repro.text.matching import normalize_value

__all__ = ["CorrectionSuggestion", "AutoCorrector"]


@dataclass(frozen=True)
class CorrectionSuggestion:
    """A suggested rewrite for one cell."""

    row_index: int
    original: str
    suggestion: str
    mapping_id: str
    reason: str


class AutoCorrector:
    """Detects mixed-representation columns and suggests corrections."""

    def __init__(self, index: MappingIndex, min_containment: float = 0.6) -> None:
        self.index = index
        self.min_containment = min_containment

    # -- Internals ---------------------------------------------------------------------
    @staticmethod
    def _split_by_side(
        values: list[str], mapping: MappingRelationship
    ) -> tuple[list[int], list[int]]:
        """Partition row indices into those matching the left vs right column."""
        left_side = {normalize_value(pair.left) for pair in mapping.pairs}
        right_side = {normalize_value(pair.right) for pair in mapping.pairs}
        left_rows: list[int] = []
        right_rows: list[int] = []
        for row_index, value in enumerate(values):
            normalized = normalize_value(value)
            if normalized in left_side:
                left_rows.append(row_index)
            elif normalized in right_side:
                right_rows.append(row_index)
        return left_rows, right_rows

    # -- Public API ------------------------------------------------------------------------
    def detect(self, values: Iterable[str]) -> MappingRelationship | None:
        """Return the mapping that best explains a mixed column, if any.

        A column is "mixed" when a substantial share of its values comes from each
        side of one mapping relationship.
        """
        values = [value for value in values if value.strip()]
        if not values:
            return None
        combined_best: tuple[float, MappingRelationship] | None = None
        for match in self.index.lookup(values, min_containment=0.0, top_k=20):
            left_rows, right_rows = self._split_by_side(values, match.mapping)
            coverage = (len(left_rows) + len(right_rows)) / len(values)
            minority = min(len(left_rows), len(right_rows))
            if coverage >= self.min_containment and minority > 0:
                if combined_best is None or coverage > combined_best[0]:
                    combined_best = (coverage, match.mapping)
        return combined_best[1] if combined_best else None

    def suggest(self, values: Iterable[str]) -> list[CorrectionSuggestion]:
        """Suggest corrections that normalize the minority representation.

        Returns an empty list when no mixed-representation mapping is detected.
        """
        values = [value for value in values]
        mapping = self.detect(values)
        if mapping is None:
            return []
        left_rows, right_rows = self._split_by_side(values, mapping)
        if not left_rows or not right_rows:
            return []
        # Convert the minority side into the majority side.
        convert_to_left = len(left_rows) >= len(right_rows)
        rows_to_fix = right_rows if convert_to_left else left_rows

        forward = {}
        backward = {}
        for pair in mapping.pairs:
            forward.setdefault(normalize_value(pair.left), pair.right)
            backward.setdefault(normalize_value(pair.right), pair.left)
        lookup = backward if convert_to_left else forward
        direction = "right->left" if convert_to_left else "left->right"

        suggestions: list[CorrectionSuggestion] = []
        for row_index in rows_to_fix:
            original = values[row_index]
            replacement = lookup.get(normalize_value(original))
            if replacement is None or normalize_value(replacement) == normalize_value(original):
                continue
            suggestions.append(
                CorrectionSuggestion(
                    row_index=row_index,
                    original=original,
                    suggestion=replacement,
                    mapping_id=mapping.mapping_id,
                    reason=f"column mixes both sides of {mapping.mapping_id} ({direction})",
                )
            )
        return suggestions

    def apply(self, values: Iterable[str]) -> list[str]:
        """Return a corrected copy of the column (non-matching rows unchanged)."""
        values = list(values)
        corrected = list(values)
        for suggestion in self.suggest(values):
            corrected[suggestion.row_index] = suggestion.suggestion
        return corrected
