"""A simple bloom filter for value-containment pre-checks.

The paper argues that materialized mapping tables are easy to index with hash-based
techniques such as bloom filters so applications can cheaply test whether their
values are covered by a mapping before doing exact lookups.
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Iterable

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic bloom filter over strings.

    Parameters
    ----------
    expected_items:
        Number of items the filter is sized for.
    false_positive_rate:
        Target false-positive probability at the expected load.
    """

    def __init__(self, expected_items: int = 1000, false_positive_rate: float = 0.01) -> None:
        if expected_items < 1:
            raise ValueError(f"expected_items must be >= 1, got {expected_items}")
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError(
                f"false_positive_rate must be in (0, 1), got {false_positive_rate}"
            )
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        size = -expected_items * math.log(false_positive_rate) / (math.log(2) ** 2)
        self.num_bits = max(8, int(math.ceil(size)))
        self.num_hashes = max(1, int(round(self.num_bits / expected_items * math.log(2))))
        self._bits = bytearray((self.num_bits + 7) // 8)
        self._count = 0

    # -- Hashing -------------------------------------------------------------------------
    def _positions(self, value: str) -> list[int]:
        digest = hashlib.sha256(value.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [(h1 + i * h2) % self.num_bits for i in range(self.num_hashes)]

    def _get_bit(self, position: int) -> bool:
        return bool(self._bits[position // 8] & (1 << (position % 8)))

    def _set_bit(self, position: int) -> None:
        self._bits[position // 8] |= 1 << (position % 8)

    # -- Public API ------------------------------------------------------------------------
    def add(self, value: str) -> None:
        """Insert a value."""
        for position in self._positions(value):
            self._set_bit(position)
        self._count += 1

    def update(self, values: Iterable[str]) -> None:
        """Insert many values."""
        for value in values:
            self.add(value)

    def __contains__(self, value: object) -> bool:
        if not isinstance(value, str):
            return False
        return all(self._get_bit(position) for position in self._positions(value))

    def __len__(self) -> int:
        return self._count

    def estimated_false_positive_rate(self) -> float:
        """Estimate the current false-positive rate from the fill ratio."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        fill = set_bits / self.num_bits
        return fill ** self.num_hashes
