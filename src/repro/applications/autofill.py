"""Auto-fill: populate a target column from a few example pairs (paper Table 4).

The user supplies a key column (e.g. city names), a couple of example values for
the desired output column (e.g. their states), and the system finds the mapping
that is consistent with the examples and fills in the remaining rows.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.applications.index import MappingIndex
from repro.core.mapping import MappingRelationship
from repro.text.matching import normalize_value

__all__ = ["FillResult", "AutoFiller"]


@dataclass
class FillResult:
    """The outcome of an auto-fill request."""

    filled: dict[int, str] = field(default_factory=dict)
    mapping_id: str | None = None
    unmatched_rows: list[int] = field(default_factory=list)

    @property
    def fill_rate(self) -> float:
        """Fraction of requested rows that received a value."""
        total = len(self.filled) + len(self.unmatched_rows)
        return len(self.filled) / total if total else 0.0


class AutoFiller:
    """Fills a column using synthesized mappings and user-provided examples."""

    def __init__(self, index: MappingIndex, min_example_agreement: float = 0.99) -> None:
        if not 0.0 < min_example_agreement <= 1.0:
            raise ValueError(
                f"min_example_agreement must be in (0, 1], got {min_example_agreement}"
            )
        self.index = index
        self.min_example_agreement = min_example_agreement

    def _select_mapping(
        self, keys: list[str], examples: dict[int, str]
    ) -> tuple[MappingRelationship, str] | None:
        example_pairs = [(keys[row], value) for row, value in examples.items()]
        if example_pairs:
            matches = self.index.lookup_pairs(
                example_pairs, min_containment=self.min_example_agreement, top_k=3
            )
            if matches:
                best = matches[0]
                return best.mapping, best.direction
            return None
        # Without examples fall back to key containment alone.
        matches = self.index.lookup(keys, min_containment=0.6, top_k=3)
        if matches:
            best = matches[0]
            return best.mapping, best.direction
        return None

    def fill(
        self,
        keys: Iterable[str],
        examples: dict[int, str] | None = None,
    ) -> FillResult:
        """Fill the output column for ``keys``.

        Parameters
        ----------
        keys:
            The user's key column values, in row order.
        examples:
            Optional ``row index -> example output value`` hints; the chosen mapping
            must agree with (almost) all of them.

        Raises
        ------
        ValueError
            If an example's row index does not address a row of ``keys``.  Such
            examples used to be dropped silently, which hid caller bugs (an
            off-by-one in row indexing simply weakened the mapping selection);
            the contract is now explicit.
        """
        keys = list(keys)
        examples = dict(examples or {})
        invalid = sorted(
            (
                row
                for row in examples
                if not isinstance(row, int) or not 0 <= row < len(keys)
            ),
            key=repr,
        )
        if invalid:
            raise ValueError(
                f"example row indices {invalid} are out of range for {len(keys)} keys"
            )
        selection = self._select_mapping(keys, examples)
        if selection is None:
            return FillResult(unmatched_rows=list(range(len(keys))))
        mapping, direction = selection

        lookup: dict[str, str] = {}
        for pair in mapping.pairs:
            if direction == "forward":
                lookup.setdefault(normalize_value(pair.left), pair.right)
            else:
                lookup.setdefault(normalize_value(pair.right), pair.left)

        result = FillResult(mapping_id=mapping.mapping_id)
        for row_index, key in enumerate(keys):
            if row_index in examples:
                result.filled[row_index] = examples[row_index]
                continue
            value = lookup.get(normalize_value(key))
            if value is None:
                result.unmatched_rows.append(row_index)
            else:
                result.filled[row_index] = value
        return result
