"""Auto-join: join two tables whose key columns use different representations
(paper Table 5).

A mapping relationship acts as a bridge table: the left user table joins to the
mapping's one side, the right user table to its other side, producing a three-way
join without the user supplying an explicit correspondence.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.applications.index import MappingIndex
from repro.core.mapping import MappingRelationship
from repro.text.matching import normalize_value

__all__ = ["JoinResult", "AutoJoiner"]


@dataclass
class JoinResult:
    """The outcome of an auto-join between two key columns."""

    row_pairs: list[tuple[int, int]] = field(default_factory=list)
    mapping_id: str | None = None
    unmatched_left: list[int] = field(default_factory=list)
    unmatched_right: list[int] = field(default_factory=list)

    @property
    def join_rate(self) -> float:
        """Fraction of left rows that found a join partner."""
        total = len(self.row_pairs) + len(self.unmatched_left)
        return len(self.row_pairs) / total if total else 0.0


class AutoJoiner:
    """Joins two key columns through a synthesized mapping."""

    def __init__(self, index: MappingIndex, min_containment: float = 0.5) -> None:
        self.index = index
        self.min_containment = min_containment

    def _select_mapping(
        self, left_keys: Sequence[str], right_keys: Sequence[str]
    ) -> tuple[MappingRelationship, bool] | None:
        """Pick the mapping that best covers both key columns.

        Returns the mapping and a flag indicating whether the left user column
        matches the mapping's left side (``True``) or its right side (``False``).
        """
        best: tuple[float, MappingRelationship, bool] | None = None
        left_matches = self.index.lookup(list(left_keys), self.min_containment, top_k=10)
        for match in left_matches:
            mapping = match.mapping
            left_values = {normalize_value(pair.left) for pair in mapping.pairs}
            right_values = {normalize_value(pair.right) for pair in mapping.pairs}
            normalized_right_keys = [normalize_value(key) for key in right_keys]
            if match.direction == "forward":
                other_containment = (
                    sum(1 for key in normalized_right_keys if key in right_values)
                    / max(1, len(normalized_right_keys))
                )
                orientation = True
            else:
                other_containment = (
                    sum(1 for key in normalized_right_keys if key in left_values)
                    / max(1, len(normalized_right_keys))
                )
                orientation = False
            if other_containment < self.min_containment:
                continue
            score = match.score + other_containment
            if best is None or score > best[0]:
                best = (score, mapping, orientation)
        if best is None:
            return None
        return best[1], best[2]

    def join(self, left_keys: Sequence[str], right_keys: Sequence[str]) -> JoinResult:
        """Join the two key columns; returns matched row-index pairs."""
        selection = self._select_mapping(left_keys, right_keys)
        if selection is None:
            return JoinResult(
                unmatched_left=list(range(len(left_keys))),
                unmatched_right=list(range(len(right_keys))),
            )
        mapping, left_is_left_side = selection

        bridge: dict[str, str] = {}
        for pair in mapping.pairs:
            left_norm = normalize_value(pair.left)
            right_norm = normalize_value(pair.right)
            if left_is_left_side:
                bridge.setdefault(left_norm, right_norm)
            else:
                bridge.setdefault(right_norm, left_norm)

        right_rows_by_value: dict[str, list[int]] = {}
        for row_index, key in enumerate(right_keys):
            right_rows_by_value.setdefault(normalize_value(key), []).append(row_index)

        result = JoinResult(mapping_id=mapping.mapping_id)
        matched_right: set[int] = set()
        for left_row, key in enumerate(left_keys):
            target = bridge.get(normalize_value(key))
            partners = right_rows_by_value.get(target, []) if target is not None else []
            if not partners:
                result.unmatched_left.append(left_row)
                continue
            for right_row in partners:
                result.row_pairs.append((left_row, right_row))
                matched_right.add(right_row)
        result.unmatched_right = [
            row_index for row_index in range(len(right_keys)) if row_index not in matched_right
        ]
        return result
