"""Batched mapping-serving layer over a prebuilt :class:`MappingIndex`.

The paper's end-game is interactive applications — auto-fill, auto-join,
auto-correct (Table 4) — answering many small requests.  Re-running the
pipeline (or even rebuilding the index) per request would dwarf the request
itself, so :class:`MappingService` builds the index **once** — from an
in-process :class:`~repro.core.pipeline.PipelineResult` or from a persisted
artifact (:mod:`repro.store`) — and serves batches against it.

Serving is deterministic: the mapping pool is ordered by the same total order
as :meth:`PipelineResult.top_mappings` (popularity, tables, size, then
``mapping_id``), so a service loaded from an artifact returns byte-identical
answers to one built from the fresh run that produced the artifact.

Every response is wrapped in a :class:`ServedResponse` envelope carrying
per-request latency and any per-request error, so one malformed request cannot
take down the rest of its batch, and :class:`ServiceStats` aggregates counts
and latencies across the service's lifetime.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.store.artifact import SynthesisArtifact

from repro.applications.autocorrect import AutoCorrector, CorrectionSuggestion
from repro.applications.autofill import AutoFiller, FillResult
from repro.applications.autojoin import AutoJoiner, JoinResult
from repro.applications.index import MappingIndex
from repro.core.mapping import MappingRelationship, mapping_rank_key
from repro.core.pipeline import PipelineResult

__all__ = [
    "FillRequest",
    "JoinRequest",
    "CorrectRequest",
    "LookupRequest",
    "ServedResponse",
    "ServiceStats",
    "MappingService",
]


# ---------------------------------------------------------------------------------------
# Request / response envelopes
# ---------------------------------------------------------------------------------------
@dataclass(frozen=True)
class FillRequest:
    """One auto-fill request: a key column plus optional example outputs.

    ``examples`` accepts any ``row index -> value`` mapping and is normalized
    to a sorted tuple of items, so the request is deeply immutable and hashable
    like the other request types (mutating the dict passed in cannot change the
    request afterwards).
    """

    keys: tuple[str, ...]
    examples: Mapping[int, str] | tuple[tuple[int, str], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "keys", tuple(self.keys))
        items = dict(self.examples).items() if self.examples else ()
        object.__setattr__(self, "examples", tuple(sorted(items, key=lambda kv: repr(kv[0]))))


@dataclass(frozen=True)
class JoinRequest:
    """One auto-join request: two key columns to bridge through a mapping."""

    left_keys: tuple[str, ...]
    right_keys: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "left_keys", tuple(self.left_keys))
        object.__setattr__(self, "right_keys", tuple(self.right_keys))


@dataclass(frozen=True)
class CorrectRequest:
    """One auto-correct request: a column that may mix representations."""

    values: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class LookupRequest:
    """One shard-local index lookup, used by the cluster scatter-gather tier.

    A :class:`~repro.cluster.ClusterRouter` decomposes every application
    request into raw :meth:`MappingIndex.lookup` / :meth:`~MappingIndex.
    lookup_pairs` calls, scatters them to shard replicas as ``cluster_lookup``
    batches, and merges the returned :class:`~repro.applications.index.
    MappingMatch` lists.  ``op`` selects the index entry point: ``"values"``
    carries a tuple of cell values, ``"pairs"`` a tuple of ``(left, right)``
    example pairs.
    """

    op: str
    values: tuple = ()
    min_containment: float = 0.5
    top_k: int = 5

    def __post_init__(self) -> None:
        if self.op not in ("values", "pairs"):
            raise ValueError(f"unknown lookup op {self.op!r}")
        object.__setattr__(
            self,
            "values",
            tuple(
                tuple(value) if isinstance(value, (list, tuple)) else value
                for value in self.values
            ),
        )


@dataclass
class ServedResponse:
    """Envelope around one request's outcome within a batch.

    ``result`` is the underlying application result (:class:`FillResult`,
    :class:`JoinResult`, or a list of :class:`CorrectionSuggestion`); ``error``
    carries the message of a per-request failure instead of aborting the batch.
    """

    kind: str
    request_index: int
    elapsed_seconds: float
    result: FillResult | JoinResult | list[CorrectionSuggestion] | None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the request was served without error."""
        return self.error is None


#: How many recent per-request latencies each ServiceStats retains per kind for
#: percentile reporting (a bounded window, so a long-lived daemon cannot grow
#: its stats without bound).
STATS_LATENCY_WINDOW = 1024


@dataclass
class ServiceStats:
    """Lifetime counters for one :class:`MappingService`.

    All mutation goes through :meth:`record` / :meth:`record_batch`, which hold
    an internal lock — a service shared by a pool of daemon worker threads
    (:class:`repro.serving.SynthesisDaemon`) must not lose counts to check-
    then-set races on the shared dicts.  ``generation`` tags the stats with the
    served artifact generation, so a daemon that hot-swaps services keeps one
    cleanly separated :class:`ServiceStats` per generation.
    """

    source: str = "memory"
    generation: int = 0
    index_size: int = 0
    build_seconds: float = 0.0
    load_seconds: float = 0.0
    batches: int = 0
    requests: dict[str, int] = field(default_factory=dict)
    errors: dict[str, int] = field(default_factory=dict)
    serve_seconds: dict[str, float] = field(default_factory=dict)
    recent_seconds: dict[str, deque[float]] = field(default_factory=dict)
    # -- Shed-load counters: work the service *refused* rather than served, so
    #    operators see degradation directly instead of inferring it from a
    #    throughput dip.  Bumped via :meth:`bump` by the daemon front-end.
    #: Batches rejected at submit time because the queue was full.
    rejected: int = 0
    #: Batches failed because their deadline expired while still queued.
    expired: int = 0
    #: Batches re-submitted by a retrying client wrapper.
    retried: int = 0
    #: Times this generation's circuit breaker transitioned to open.
    breaker_opened: int = 0
    #: Batches rejected because the circuit breaker was open.
    breaker_rejections: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def bump(self, counter: str, amount: int = 1) -> int:
        """Increment one shed-load counter by name (thread-safe); returns it.

        Only the shed-load counters are reachable — the served-path counters
        must go through :meth:`record` so their dicts stay consistent.
        """
        if counter not in {
            "rejected",
            "expired",
            "retried",
            "breaker_opened",
            "breaker_rejections",
        }:
            raise ValueError(f"unknown shed-load counter {counter!r}")
        with self._lock:
            value = getattr(self, counter) + amount
            setattr(self, counter, value)
            return value

    @property
    def total_requests(self) -> int:
        """Requests served across all kinds (including errored ones)."""
        with self._lock:
            return sum(self.requests.values())

    def record(self, kind: str, elapsed: float, ok: bool) -> None:
        """Fold one served request into the counters (thread-safe)."""
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1
            self.serve_seconds[kind] = self.serve_seconds.get(kind, 0.0) + elapsed
            try:
                self.recent_seconds[kind].append(elapsed)
            except KeyError:
                self.recent_seconds[kind] = deque(
                    [elapsed], maxlen=STATS_LATENCY_WINDOW
                )
            if not ok:
                self.errors[kind] = self.errors.get(kind, 0) + 1

    def record_batch(self) -> None:
        """Count one served batch (thread-safe)."""
        with self._lock:
            self.batches += 1

    def latency_percentile(self, kind: str, quantile: float) -> float:
        """Latency percentile (e.g. ``0.95``) over the recent window for ``kind``.

        Returns 0.0 when no request of that kind has been recorded yet.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            window = sorted(self.recent_seconds.get(kind, ()))
        if not window:
            return 0.0
        position = min(len(window) - 1, int(quantile * len(window)))
        return window[position]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reporting artifacts (a consistent snapshot)."""
        with self._lock:
            return {
                "source": self.source,
                "generation": self.generation,
                "index_size": self.index_size,
                "build_seconds": self.build_seconds,
                "load_seconds": self.load_seconds,
                "batches": self.batches,
                "total_requests": sum(self.requests.values()),
                "requests": dict(self.requests),
                "errors": dict(self.errors),
                "serve_seconds": dict(self.serve_seconds),
                "shed": {
                    "rejected": self.rejected,
                    "expired": self.expired,
                    "retried": self.retried,
                    "breaker_opened": self.breaker_opened,
                    "breaker_rejections": self.breaker_rejections,
                },
            }


def _serving_order(mappings: Iterable[MappingRelationship]) -> list[MappingRelationship]:
    """The deterministic pool order shared with :meth:`PipelineResult.top_mappings`."""
    return sorted(mappings, key=mapping_rank_key)


# ---------------------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------------------
class MappingService:
    """Answers batched autofill/autojoin/autocorrect requests.

    One :class:`MappingIndex` build is amortized over every request the service
    ever answers.  Construct it from mappings directly, from a pipeline result
    (:meth:`from_result`), or — the intended production path — from a persisted
    artifact (:meth:`from_artifact`).
    """

    def __init__(
        self,
        mappings: Iterable[MappingRelationship],
        *,
        min_containment: float = 0.5,
        min_example_agreement: float = 0.99,
        correction_containment: float = 0.6,
        source: str = "memory",
    ) -> None:
        start = time.perf_counter()
        pool = _serving_order(mappings)
        self.index = MappingIndex(pool)
        self.filler = AutoFiller(self.index, min_example_agreement=min_example_agreement)
        self.joiner = AutoJoiner(self.index, min_containment=min_containment)
        self.corrector = AutoCorrector(self.index, min_containment=correction_containment)
        #: The thresholds this service was built with, as picklable kwargs — a
        #: process-pool serving backend (repro.serving) rebuilds an identical
        #: service in each worker from (mapping_pool, serving_kwargs).
        self.serving_kwargs: dict[str, float] = {
            "min_containment": min_containment,
            "min_example_agreement": min_example_agreement,
            "correction_containment": correction_containment,
        }
        self.stats = ServiceStats(
            source=source,
            index_size=len(self.index),
            build_seconds=time.perf_counter() - start,
        )

    @property
    def mapping_pool(self) -> list[MappingRelationship]:
        """The served mappings in their deterministic serving order.

        Rebuilding a service from this list (with :attr:`serving_kwargs`)
        reproduces this service's answers exactly — ``_serving_order`` is a
        total order, so re-sorting an already-sorted pool is the identity.
        """
        return list(self.index.mappings)

    def __len__(self) -> int:
        return len(self.index)

    # -- Constructors -------------------------------------------------------------------
    @classmethod
    def from_result(
        cls, result: PipelineResult, *, prefer_curated: bool = True, **kwargs
    ) -> "MappingService":
        """Build a service from an in-process pipeline run.

        Serves the curated mappings when curation kept any (the paper's intended
        deployment), otherwise all synthesized mappings — the same fallback as
        :meth:`PipelineResult.top_mappings`.
        """
        pool = result.curated if prefer_curated and result.curated else result.mappings
        kwargs.setdefault("source", "result")
        return cls(pool, **kwargs)

    @classmethod
    def from_artifact(
        cls, path: str | Path, *, prefer_curated: bool = True, **kwargs
    ) -> "MappingService":
        """Load a persisted artifact and build the service from it.

        This is the cold-start path for serving processes: no extraction,
        scoring, or synthesis — just artifact deserialization plus one index
        build.  Sectioned (v2) artifacts load lazily, so this decodes **only**
        the mappings + curation sections; candidates, profiles, and edges stay
        encoded on disk.  The load-and-decode time (everything but the index
        build) is recorded in :attr:`ServiceStats.load_seconds`.
        """
        from repro.store.artifact import load_artifact

        start = time.perf_counter()
        artifact = load_artifact(path)
        kwargs.setdefault("source", f"artifact:{path}")
        service = cls.from_artifact_object(
            artifact, prefer_curated=prefer_curated, **kwargs
        )
        # Lazy artifacts decode their served sections inside from_artifact_object,
        # so "load" is everything up to here minus the index build itself.
        service.stats.load_seconds = (
            time.perf_counter() - start - service.stats.build_seconds
        )
        return service

    @classmethod
    def from_artifact_object(
        cls, artifact: "SynthesisArtifact", *, prefer_curated: bool = True, **kwargs
    ) -> "MappingService":
        """Build a service from an already-loaded artifact.

        Used by callers that need the artifact itself as well as the service —
        the serving daemon's hot-reload path loads the artifact once, tags the
        new generation with its corpus fingerprint, and builds the service from
        the same object.  Touches only :attr:`SynthesisArtifact.curated` /
        :attr:`~SynthesisArtifact.mappings`, so a lazy artifact's cold
        sections (profiles, edges, candidates) are never decoded — a hot
        reload pays for exactly what it serves.
        """
        curated = artifact.curated
        pool = curated if prefer_curated and curated else artifact.mappings
        kwargs.setdefault("source", "artifact")
        return cls(pool, **kwargs)

    def with_pool(
        self, mappings: Iterable[MappingRelationship], *, source: str | None = None
    ) -> "MappingService":
        """A new service over ``mappings``, sharing this one's thresholds.

        The streaming-update fast path: per-mapping index entries are reused
        (:meth:`MappingIndex.patched`) for every mapping object this service
        already serves, so the cost is O(changed mappings), not O(pool).
        Answers are identical to ``type(self)(mappings, **serving_kwargs)`` —
        ``_serving_order`` is a total order and index entries are pure
        per-mapping.  Subclasses that add construction-time state must
        override this method (the base implementation only wires the fields
        ``MappingService.__init__`` sets).
        """
        start = time.perf_counter()
        service = type(self).__new__(type(self))
        pool = _serving_order(mappings)
        service.index = MappingIndex.patched(self.index, pool)
        service.filler = AutoFiller(
            service.index,
            min_example_agreement=self.serving_kwargs["min_example_agreement"],
        )
        service.joiner = AutoJoiner(
            service.index, min_containment=self.serving_kwargs["min_containment"]
        )
        service.corrector = AutoCorrector(
            service.index,
            min_containment=self.serving_kwargs["correction_containment"],
        )
        service.serving_kwargs = dict(self.serving_kwargs)
        service.stats = ServiceStats(
            source=source or self.stats.source,
            index_size=len(service.index),
            build_seconds=time.perf_counter() - start,
        )
        return service

    # -- Batched serving ----------------------------------------------------------------
    def _serve_batch(
        self, kind: str, requests: Sequence[object], handler: Callable[[object], object]
    ) -> list[ServedResponse]:
        responses: list[ServedResponse] = []
        self.stats.record_batch()
        for position, request in enumerate(requests):
            start = time.perf_counter()
            try:
                outcome = handler(request)
                error = None
            except Exception as exc:
                # Any per-request failure — bad indices, malformed values — is
                # isolated in its envelope; the rest of the batch still serves.
                outcome = None
                error = str(exc) or type(exc).__name__
            elapsed = time.perf_counter() - start
            self.stats.record(kind, elapsed, ok=error is None)
            responses.append(
                ServedResponse(
                    kind=kind,
                    request_index=position,
                    elapsed_seconds=elapsed,
                    result=outcome,
                    error=error,
                )
            )
        return responses

    def autofill(self, requests: Sequence[FillRequest]) -> list[ServedResponse]:
        """Serve a batch of auto-fill requests (empty batch → empty list)."""
        return self._serve_batch(
            "autofill",
            requests,
            lambda request: self.filler.fill(
                list(request.keys), dict(request.examples or {})
            ),
        )

    def autojoin(self, requests: Sequence[JoinRequest]) -> list[ServedResponse]:
        """Serve a batch of auto-join requests (empty batch → empty list)."""
        return self._serve_batch(
            "autojoin",
            requests,
            lambda request: self.joiner.join(
                list(request.left_keys), list(request.right_keys)
            ),
        )

    def autocorrect(self, requests: Sequence[CorrectRequest]) -> list[ServedResponse]:
        """Serve a batch of auto-correct requests (empty batch → empty list)."""
        return self._serve_batch(
            "autocorrect",
            requests,
            lambda request: self.corrector.suggest(list(request.values)),
        )

    def _lookup_one(self, request: LookupRequest) -> list:
        if request.op == "pairs":
            return self.index.lookup_pairs(
                list(request.values),
                min_containment=request.min_containment,
                top_k=request.top_k,
            )
        return self.index.lookup(
            list(request.values),
            min_containment=request.min_containment,
            top_k=request.top_k,
        )

    def cluster_lookup(self, requests: Sequence[LookupRequest]) -> list[ServedResponse]:
        """Serve a batch of raw index lookups for the cluster scatter-gather tier.

        Each response's ``result`` is the shard-local ``list[MappingMatch]``
        (full mapping objects — matches are picklable, so process-backed
        replicas can return them across pool boundaries).  Because every
        mapping's score is computed independently of the rest of the pool, a
        router that merges shard-local top-k lists by ``(-score,
        mapping_rank_key)`` and truncates reproduces the single-index answer
        exactly (see :mod:`repro.cluster`).
        """
        return self._serve_batch("cluster_lookup", requests, self._lookup_one)
