"""End-to-end table synthesis (paper §4: Step 2 of the pipeline).

The :class:`TableSynthesizer` takes candidate binary tables, builds the sparse
compatibility graph, partitions it with the greedy Algorithm 3, optionally resolves
conflicts within each partition, and materializes each partition as a
:class:`~repro.core.mapping.MappingRelationship`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship, mapping_rank_key
from repro.graph.build import CompatibilityGraph, GraphBuilder
from repro.graph.partition import GreedyPartitioner, PartitionResult
from repro.synthesis.conflict import (
    majority_vote_resolution,
    resolve_conflicts_greedy,
)
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary

__all__ = ["SynthesisResult", "TableSynthesizer"]


@dataclass
class SynthesisResult:
    """The outcome of table synthesis over a set of candidate tables."""

    mappings: list[MappingRelationship]
    graph: CompatibilityGraph
    partition_result: PartitionResult
    elapsed_seconds: float = 0.0
    metadata: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.mappings)

    def __iter__(self):
        return iter(self.mappings)

    def top_by_popularity(self, count: int = 10) -> list[MappingRelationship]:
        """The ``count`` most popular mappings (by number of contributing domains).

        Ties are broken by ascending ``mapping_id`` so the ranking is a total
        order — serving layers built on it return the same results run to run.
        """
        return sorted(self.mappings, key=mapping_rank_key)[:count]


class TableSynthesizer:
    """Synthesizes mapping relationships from candidate binary tables."""

    def __init__(
        self,
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
    ) -> None:
        self.config = config or SynthesisConfig()
        self.synonyms = synonyms
        self.graph_builder = GraphBuilder(self.config, synonyms)
        self.partitioner = GreedyPartitioner(self.config)
        self.matcher = ValueMatcher(
            fraction=self.config.edit_fraction,
            cap=self.config.edit_cap,
            synonyms=synonyms,
            approximate=self.config.use_approximate_matching,
        )

    # -- Internals ----------------------------------------------------------------------
    def _resolve_partition(self, tables: list[BinaryTable]) -> list[BinaryTable]:
        """Apply the configured conflict-resolution strategy to one partition."""
        if not self.config.resolve_conflicts or len(tables) < 2:
            return tables
        if self.config.conflict_strategy == "majority":
            resolution = majority_vote_resolution(tables, self.matcher, self.synonyms)
            # Majority voting keeps all tables but filters pairs; rebuild one table
            # carrying the surviving pairs so provenance is preserved at group level.
            merged = BinaryTable(
                table_id="majority-resolved",
                pairs=resolution.pairs,
                source_table_id="majority-resolved",
            )
            return [merged] + []
        resolution = resolve_conflicts_greedy(tables, self.matcher, self.synonyms)
        return resolution.kept_tables if resolution.kept_tables else tables

    def _materialize(
        self, tables: list[BinaryTable], index: int, original: list[BinaryTable]
    ) -> MappingRelationship:
        mapping = MappingRelationship.from_tables(f"mapping-{index:05d}", tables)
        # Domain/table provenance should reflect the full partition even when the
        # majority-vote strategy collapsed pairs into a single synthetic table.
        mapping.domains.update(table.domain for table in original if table.domain)
        mapping.source_tables = [table.table_id for table in original]
        return mapping

    def materialize_partition(
        self, tables: list[BinaryTable], index: int
    ) -> MappingRelationship:
        """Resolve conflicts and materialize one partition's mapping.

        Pure function of ``(tables, index)`` — the incremental update engine
        (:mod:`repro.updates.engine`) relies on that to memoize unchanged
        partitions across deltas while staying byte-identical to
        :meth:`synthesize`, which routes every partition through here.
        """
        resolved = self._resolve_partition(tables)
        return self._materialize(resolved, index, tables)

    # -- Public API ------------------------------------------------------------------------
    def build_graph(
        self,
        candidates: list[BinaryTable],
        *,
        reusable_scores: dict[tuple[str, str], tuple[float, float]] | None = None,
        reusable_ids: set[str] | None = None,
    ) -> CompatibilityGraph:
        """Build the sparse compatibility graph over the candidates.

        ``reusable_scores`` / ``reusable_ids`` are forwarded to
        :meth:`GraphBuilder.build` for incremental maintenance — pairs of
        unchanged tables take their weights from a previous run.
        """
        return self.graph_builder.build(
            candidates, reusable_scores=reusable_scores, reusable_ids=reusable_ids
        )

    def synthesize(
        self,
        candidates: list[BinaryTable],
        *,
        reusable_scores: dict[tuple[str, str], tuple[float, float]] | None = None,
        reusable_ids: set[str] | None = None,
    ) -> SynthesisResult:
        """Run graph construction, partitioning, and conflict resolution."""
        start = time.perf_counter()
        graph = self.build_graph(
            candidates, reusable_scores=reusable_scores, reusable_ids=reusable_ids
        )
        partition_result = self.partitioner.partition(graph)

        mappings: list[MappingRelationship] = []
        for index, partition in enumerate(partition_result.partitions):
            tables = [graph.tables[vertex] for vertex in partition]
            mappings.append(self.materialize_partition(tables, index))
        elapsed = time.perf_counter() - start
        return SynthesisResult(
            mappings=mappings,
            graph=graph,
            partition_result=partition_result,
            elapsed_seconds=elapsed,
            metadata={
                "num_candidates": float(len(candidates)),
                "num_mappings": float(len(mappings)),
                "num_positive_edges": float(graph.num_positive_edges),
                "num_negative_edges": float(graph.num_negative_edges),
            },
        )
