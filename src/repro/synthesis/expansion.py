"""Table expansion from trusted sources (paper Appendix I).

Large relationships (e.g. airport codes with >10K instances) are under-represented
in web tables, so synthesized "cores" can be expanded with instances from trusted
external feeds (data.gov-style files, spreadsheet exports).  A trusted table is
merged into a synthesized mapping only if it is sufficiently similar (high positive
compatibility) and not conflicting (no substantial negative compatibility) with the
core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable, ValuePair
from repro.core.config import SynthesisConfig
from repro.core.mapping import MappingRelationship
from repro.graph.compatibility import CompatibilityScorer
from repro.text.synonyms import SynonymDictionary

__all__ = ["TableExpander", "ExpansionReport"]


@dataclass
class ExpansionReport:
    """Records which trusted sources were merged into which mappings."""

    merged: dict[str, list[str]] = field(default_factory=dict)
    added_pairs: dict[str, int] = field(default_factory=dict)

    def total_added(self) -> int:
        """Total number of value pairs added across all mappings."""
        return sum(self.added_pairs.values())


class TableExpander:
    """Expands synthesized mapping cores using trusted external tables."""

    def __init__(
        self,
        trusted_sources: list[BinaryTable],
        config: SynthesisConfig | None = None,
        synonyms: SynonymDictionary | None = None,
        min_overlap: float = 0.3,
        max_conflict: float = -0.05,
    ) -> None:
        if not -1.0 <= max_conflict <= 0.0:
            raise ValueError(f"max_conflict must be in [-1, 0], got {max_conflict}")
        if not 0.0 < min_overlap <= 1.0:
            raise ValueError(f"min_overlap must be in (0, 1], got {min_overlap}")
        self.trusted_sources = list(trusted_sources)
        self.config = config or SynthesisConfig()
        self.scorer = CompatibilityScorer(self.config, synonyms)
        self.min_overlap = min_overlap
        self.max_conflict = max_conflict

    def expand_mapping(self, mapping: MappingRelationship) -> tuple[MappingRelationship, list[str]]:
        """Return an expanded copy of ``mapping`` plus the merged source ids."""
        core = mapping.to_binary_table()
        merged_sources: list[str] = []
        new_pairs: list[ValuePair] = list(mapping.pairs)
        for source in self.trusted_sources:
            positive = self.scorer.positive(core, source)
            negative = self.scorer.negative(core, source)
            if positive >= self.min_overlap and negative >= self.max_conflict:
                existing_lefts = {
                    self.scorer.matcher.match_key(pair.left) for pair in new_pairs
                }
                for pair in source.pairs:
                    if self.scorer.matcher.match_key(pair.left) not in existing_lefts:
                        new_pairs.append(pair)
                merged_sources.append(source.table_id)
        if not merged_sources:
            return mapping, []
        expanded = MappingRelationship(
            mapping_id=mapping.mapping_id,
            pairs=new_pairs,
            source_tables=list(mapping.source_tables) + merged_sources,
            domains=set(mapping.domains) | {"trusted"},
            column_names=mapping.column_names,
            metadata=dict(mapping.metadata),
        )
        return expanded, merged_sources

    def expand_all(
        self, mappings: list[MappingRelationship]
    ) -> tuple[list[MappingRelationship], ExpansionReport]:
        """Expand every mapping; returns the new mappings and a report."""
        report = ExpansionReport()
        expanded_mappings: list[MappingRelationship] = []
        for mapping in mappings:
            expanded, merged_sources = self.expand_mapping(mapping)
            expanded_mappings.append(expanded)
            if merged_sources:
                report.merged[mapping.mapping_id] = merged_sources
                report.added_pairs[mapping.mapping_id] = len(expanded) - len(mapping)
        return expanded_mappings, report
