"""Table synthesis, conflict resolution, expansion, and curation (paper §4)."""

from repro.synthesis.synthesizer import SynthesisResult, TableSynthesizer
from repro.synthesis.conflict import (
    ConflictResolution,
    majority_vote_resolution,
    resolve_conflicts_greedy,
)
from repro.synthesis.expansion import TableExpander
from repro.synthesis.curation import CurationReport, curate_mappings, popularity_rank

__all__ = [
    "TableSynthesizer",
    "SynthesisResult",
    "ConflictResolution",
    "resolve_conflicts_greedy",
    "majority_vote_resolution",
    "TableExpander",
    "curate_mappings",
    "popularity_rank",
    "CurationReport",
]
