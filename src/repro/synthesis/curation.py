"""Curation support: popularity ranking and filtering of synthesized mappings (§4.3).

The paper emphasizes that synthesized mappings are meant to be *curated by humans*
before they power user-facing features.  The curation story relies on two signals:
the number of distinct source domains contributing to a mapping (popularity) and
the number of raw tables synthesized into it.  Only mappings popular enough (the
paper uses ≥ 8 web domains) are surfaced, shrinking millions of raw tables into a
reviewable list.  Numeric/temporal relationships can additionally be pruned.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.mapping import MappingRelationship, mapping_rank_key

__all__ = ["CurationReport", "popularity_rank", "curate_mappings"]

_NUMERIC_RE = re.compile(r"^-?\d+(\.\d+)?$")


def _numeric_fraction(values: list[str]) -> float:
    if not values:
        return 0.0
    numeric = sum(1 for value in values if _NUMERIC_RE.match(value.strip()))
    return numeric / len(values)


@dataclass
class CurationReport:
    """Summary of what curation kept and why the rest was dropped."""

    kept: list[MappingRelationship] = field(default_factory=list)
    dropped_low_popularity: int = 0
    dropped_small: int = 0
    dropped_numeric: int = 0

    @property
    def total_dropped(self) -> int:
        """Total number of mappings dropped by curation."""
        return self.dropped_low_popularity + self.dropped_small + self.dropped_numeric


def popularity_rank(mappings: list[MappingRelationship]) -> list[MappingRelationship]:
    """Rank mappings by (domains, contributing tables, size), most popular first.

    Ties are broken by ascending ``mapping_id``, making the ranking a total
    order that cannot flap across runs (the shared
    :func:`~repro.core.mapping.mapping_rank_key` order).
    """
    return sorted(mappings, key=mapping_rank_key)


def curate_mappings(
    mappings: list[MappingRelationship],
    min_domains: int = 2,
    min_size: int = 5,
    drop_numeric_left: bool = True,
    numeric_threshold: float = 0.9,
) -> CurationReport:
    """Filter synthesized mappings down to a human-curable set.

    Parameters
    ----------
    min_domains:
        Minimum number of distinct contributing domains (the paper uses 8 on the
        Web corpus; smaller corpora need smaller values).
    min_size:
        Minimum number of value pairs.
    drop_numeric_left:
        Drop mappings whose left column is almost entirely numeric — these are
        usually rank/score columns rather than entity mappings.
    numeric_threshold:
        Fraction of numeric left values above which a mapping counts as numeric.
    """
    if min_domains < 1:
        raise ValueError(f"min_domains must be >= 1, got {min_domains}")
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    report = CurationReport()
    for mapping in popularity_rank(mappings):
        if len(mapping) < min_size:
            report.dropped_small += 1
            continue
        if mapping.popularity < min_domains:
            report.dropped_low_popularity += 1
            continue
        if drop_numeric_left:
            left_fraction = _numeric_fraction([pair.left for pair in mapping.pairs])
            if left_fraction >= numeric_threshold:
                report.dropped_numeric += 1
                continue
        report.kept.append(mapping)
    return report
