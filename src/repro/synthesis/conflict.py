"""Conflict resolution inside synthesized partitions (paper §4.2, Algorithm 4).

A synthesized partition is the union of many raw tables; a small fraction of rows
will have the same left value with *different* right values (extraction or quality
errors, or a slightly different relationship that slipped in).  The paper resolves
this by removing the fewest candidate tables such that no conflicts remain
(Problem 17, NP-hard via Independent Set), using a greedy heuristic that repeatedly
removes the table responsible for the most conflicting value pairs.

A majority-voting alternative (keep, for each left value, the right value supported
by the most tables) is provided as the comparison point used in §5.6.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable, ValuePair
from repro.text.matching import ValueMatcher
from repro.text.synonyms import SynonymDictionary

__all__ = ["ConflictResolution", "resolve_conflicts_greedy", "majority_vote_resolution"]


@dataclass
class ConflictResolution:
    """Result of resolving conflicts within one partition."""

    kept_tables: list[BinaryTable]
    removed_tables: list[BinaryTable]
    pairs: list[ValuePair]
    iterations: int = 0
    metadata: dict[str, float] = field(default_factory=dict)

    @property
    def removed_count(self) -> int:
        """Number of candidate tables removed."""
        return len(self.removed_tables)


def _conflicting_table_counts(
    tables: list[BinaryTable], matcher: ValueMatcher, synonyms: SynonymDictionary | None
) -> tuple[dict[int, int], int]:
    """Per-table conflict scores following Algorithm 4.

    For every value pair, count how many other value pairs it conflicts with
    (``cntV``); a table's score is the *maximum* ``cntV`` over its pairs
    (``cntB``).  A table whose single pair disagrees with many tables (a genuine
    error or a mixed-in foreign relation) therefore outranks the many innocent
    tables it disagrees with, each of which conflicts with only that one pair.

    Returns the per-table scores and the number of conflicting left keys.
    """
    # Group every (table, pair) by the normalized left value.
    by_left: dict[str, list[tuple[int, ValuePair]]] = {}
    for index, table in enumerate(tables):
        for pair in table.pairs:
            by_left.setdefault(matcher.match_key(pair.left), []).append((index, pair))

    counts: dict[int, int] = {index: 0 for index in range(len(tables))}
    conflicting_lefts = 0
    for entries in by_left.values():
        if len(entries) < 2:
            continue
        # cntV for each entry: how many other entries under this left it disagrees with.
        pair_conflicts = [0] * len(entries)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                right_i, right_j = entries[i][1].right, entries[j][1].right
                if matcher.matches(right_i, right_j):
                    continue
                if synonyms is not None and synonyms.are_synonyms(right_i, right_j):
                    continue
                pair_conflicts[i] += 1
                pair_conflicts[j] += 1
        if any(pair_conflicts):
            conflicting_lefts += 1
            for position, conflict_count in enumerate(pair_conflicts):
                table_index = entries[position][0]
                counts[table_index] = max(counts[table_index], conflict_count)
    return counts, conflicting_lefts


def resolve_conflicts_greedy(
    tables: list[BinaryTable],
    matcher: ValueMatcher | None = None,
    synonyms: SynonymDictionary | None = None,
    max_iterations: int | None = None,
) -> ConflictResolution:
    """Algorithm 4: iteratively drop the table contributing the most conflicts.

    The loop stops when no conflicts remain or when every table but one has been
    removed (a degenerate partition).
    """
    matcher = matcher or ValueMatcher()
    kept = list(tables)
    removed: list[BinaryTable] = []
    iterations = 0
    limit = max_iterations if max_iterations is not None else len(tables)
    while len(kept) > 1 and iterations < limit:
        counts, conflicting_lefts = _conflicting_table_counts(kept, matcher, synonyms)
        if conflicting_lefts == 0:
            break
        worst_index = max(counts, key=lambda index: (counts[index], len(kept[index]) * -1))
        if counts[worst_index] == 0:
            break
        removed.append(kept.pop(worst_index))
        iterations += 1

    pairs: list[ValuePair] = []
    for table in kept:
        pairs.extend(table.pairs)
    return ConflictResolution(
        kept_tables=kept,
        removed_tables=removed,
        pairs=pairs,
        iterations=iterations,
        metadata={"input_tables": float(len(tables))},
    )


def majority_vote_resolution(
    tables: list[BinaryTable],
    matcher: ValueMatcher | None = None,
    synonyms: SynonymDictionary | None = None,
) -> ConflictResolution:
    """Majority voting: for each left value keep the right value most tables agree on.

    Unlike Algorithm 4 this keeps every table but drops individual minority pairs;
    it is the alternative conflict-resolution scheme the paper compares against in
    §5.6 (slightly lower F-score than the greedy table-removal approach).
    """
    matcher = matcher or ValueMatcher()
    votes: dict[str, Counter[str]] = {}
    surface_form: dict[tuple[str, str], ValuePair] = {}
    for table in tables:
        for pair in table.pairs:
            left_key = matcher.match_key(pair.left)
            right_key = matcher.match_key(pair.right)
            if synonyms is not None:
                right_key = synonyms.canonical(right_key)
            votes.setdefault(left_key, Counter())[right_key] += 1
            surface_form.setdefault((left_key, right_key), pair)

    winners: dict[str, str] = {}
    for left_key, counter in votes.items():
        winners[left_key] = counter.most_common(1)[0][0]

    pairs: list[ValuePair] = []
    seen: set[tuple[str, str]] = set()
    for table in tables:
        for pair in table.pairs:
            left_key = matcher.match_key(pair.left)
            right_key = matcher.match_key(pair.right)
            if synonyms is not None:
                right_key = synonyms.canonical(right_key)
            if winners.get(left_key) != right_key:
                continue
            key = pair.as_tuple()
            if key not in seen:
                seen.add(key)
                pairs.append(pair)
    return ConflictResolution(
        kept_tables=list(tables),
        removed_tables=[],
        pairs=pairs,
        iterations=0,
        metadata={"input_tables": float(len(tables))},
    )
