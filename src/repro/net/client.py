"""Socket client for a replica server, duck-typed as a ``SynthesisDaemon``.

:class:`RemoteReplica` exposes exactly the surface the cluster router calls on
an in-process replica — ``submit`` / ``apply_delta`` / ``health`` / ``closed``
/ ``close`` / ``generation`` / ``watcher`` — so
:class:`~repro.cluster.ClusterRouter` swaps transports without a single change
to its scatter, merge, failover, rollout, or delta logic.

One persistent connection per replica; a background reader thread demultiplexes
response frames to their waiting futures by request id, so any number of router
threads can have lookups in flight concurrently.  A dead connection fails every
pending future with :class:`ConnectionError` (the router's retry schedule
recomputes the cover and the replica's breaker opens), and the next submission
reconnects lazily under the client's :class:`~repro.faults.RetryPolicy`.

Remote failures arrive as typed error envelopes and are re-raised as the *same*
exception classes the in-process daemon raises (``DeadlineExpiredError``,
``QueueFullError``, ...), so every caller-side failure policy — router retries,
breaker filters, test assertions — behaves identically across transports.

Deadlines fail fast on this side too: the remaining budget is measured *after*
any injected/real send-side stall, encoded into the frame, and re-enforced by
the replica — a slow network can only shrink the budget, never let an expired
ticket consume daemon work.
"""

from __future__ import annotations

import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.applications.service import LookupRequest, ServedResponse
from repro.faults.plan import active_injector
from repro.faults.retry import RetryPolicy
from repro.net import codec
from repro.net.codec import Frame, TornFrameError, TransportStats
from repro.serving.daemon import (
    CircuitOpenError,
    DaemonError,
    DaemonStoppedError,
    DeadlineExpiredError,
    QueueFullError,
)

__all__ = ["RemoteReplica", "RemoteReplicaError", "RemoteResult"]

#: Reconnect schedule for a lazily re-established replica connection.
DEFAULT_RECONNECT_POLICY = RetryPolicy(
    attempts=2, base_seconds=0.05, max_seconds=0.5, retry_on=(OSError,)
)


class RemoteReplicaError(RuntimeError):
    """A remote failure with no local exception class to map onto."""

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type


#: Remote error-envelope types re-raised as their local classes, so failure
#: handling (router retries, breaker policy, tests) is transport-agnostic.
_ERROR_CLASSES: dict[str, type[Exception]] = {
    "DaemonError": DaemonError,
    "QueueFullError": QueueFullError,
    "DeadlineExpiredError": DeadlineExpiredError,
    "DaemonStoppedError": DaemonStoppedError,
    "CircuitOpenError": CircuitOpenError,
    "ValueError": ValueError,
    "TimeoutError": TimeoutError,
}


def _raise_remote(payload: bytes) -> None:
    remote_type, message = codec.decode_error(payload)
    raise _ERROR_CLASSES.get(remote_type, RemoteReplicaError)(
        *((message,) if remote_type in _ERROR_CLASSES else (remote_type, message))
    )


@dataclass
class RemoteResult:
    """A decoded lookup batch: the wire twin of ``DaemonResult``."""

    kind: str
    responses: list[ServedResponse]
    generation: int
    fingerprint: str


class _RemoteTicket:
    """Future handle for one in-flight remote lookup (mirrors ``DaemonTicket``)."""

    __slots__ = ("_client", "future", "kind")

    def __init__(self, client: "RemoteReplica", kind: str, future: Future) -> None:
        self._client = client
        self.kind = kind
        self.future = future

    def result(self, timeout: float | None = None) -> RemoteResult:
        frame: Frame = self.future.result(
            timeout if timeout is not None else self._client.request_timeout
        )
        if frame.frame_type == codec.T_ERROR:
            _raise_remote(frame.payload)
        responses, generation, fingerprint = codec.decode_lookup_response(
            frame.payload
        )
        self._client._note_generation(generation)
        return RemoteResult(
            kind=self.kind,
            responses=responses,
            generation=generation,
            fingerprint=fingerprint,
        )

    def done(self) -> bool:
        return self.future.done()


class _RemoteGeneration:
    """Lazy ``generation.number`` view over the wire (cached on failure)."""

    __slots__ = ("_client",)

    def __init__(self, client: "RemoteReplica") -> None:
        self._client = client

    @property
    def number(self) -> int:
        try:
            return self._client.await_generation(0, timeout=0.0)
        except Exception:
            return self._client._last_generation


class _RemoteWatcher:
    """Remote watcher facade: ``check_now`` asks the *server* to poll its own."""

    __slots__ = ("_client",)

    def __init__(self, client: "RemoteReplica") -> None:
        self._client = client

    def check_now(self, *, force: bool = False) -> bool:
        before = self._client._last_generation
        return self._client.await_generation(0, timeout=0.0) > before

    def health(self) -> dict[str, object] | None:
        view = self._client.health()
        watcher = view.get("watcher")
        return watcher if isinstance(watcher, dict) else None


class RemoteReplica:
    """One replica server's client half (see the module docstring)."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str = "replica",
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        reconnect_policy: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.name = name
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.reconnect_policy = (
            reconnect_policy if reconnect_policy is not None else DEFAULT_RECONNECT_POLICY
        )
        self.stats = TransportStats(kind="tcp")
        self._conn_lock = threading.Lock()  # connect / teardown transitions
        self._send_lock = threading.Lock()  # frame writes are atomic
        self._pending_lock = threading.Lock()
        self._pending: dict[int, tuple[Future, float]] = {}
        self._sock: socket.socket | None = None
        self._next_id = 0
        self._closed = False
        self._ever_connected = False
        self._last_generation = 0
        self._has_watcher: bool | None = None

    # -- Connection management ----------------------------------------------------------
    def _ensure_connected(self) -> socket.socket:
        with self._conn_lock:
            if self._closed:
                raise DaemonStoppedError(
                    f"remote replica client {self.name} is closed"
                )
            if self._sock is not None:
                return self._sock

            def connect() -> socket.socket:
                return socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )

            sock = self.reconnect_policy.call(connect)
            sock.settimeout(None)  # reader thread blocks; futures carry timeouts
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
            if self._ever_connected:
                self.stats.note_reconnect()
            self._ever_connected = True
            self.stats.note_connection(1)
            threading.Thread(
                target=self._read_loop,
                args=(sock,),
                name=f"remote-replica-reader-{self.name}",
                daemon=True,
            ).start()
            return sock

    def _read_loop(self, sock: socket.socket) -> None:
        try:
            while True:
                frame = codec.read_frame(sock)
                if frame is None:
                    raise ConnectionError(
                        f"replica server {self.host}:{self.port} closed the "
                        "connection"
                    )
                self.stats.note_received(len(frame))
                with self._pending_lock:
                    entry = self._pending.pop(frame.request_id, None)
                if entry is None:
                    continue  # response to a request whose waiter gave up
                future, sent_at = entry
                self.stats.note_rtt(time.monotonic() - sent_at)
                future.set_result(frame)
        except Exception as exc:
            self._teardown(sock, exc)

    def _teardown(self, sock: socket.socket | None, exc: BaseException) -> None:
        """Drop the connection and fail every pending future (never raises)."""
        with self._conn_lock:
            current = self._sock
            if sock is None or current is sock:
                self._sock = None
                if current is not None:
                    self.stats.note_connection(-1)
                    try:
                        current.close()
                    except OSError:
                        pass
            elif current is None and sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        error = (
            exc
            if isinstance(exc, (ConnectionError, TornFrameError))
            else ConnectionError(str(exc))
        )
        for future, _sent_at in pending:
            if not future.done():
                future.set_exception(error)

    def _send_frame(self, frame_type: int, payload: bytes) -> tuple[int, Future]:
        sock = self._ensure_connected()
        with self._send_lock:
            self._next_id += 1
            request_id = self._next_id
            future: Future = Future()
            with self._pending_lock:
                self._pending[request_id] = (future, time.monotonic())
            data = codec.encode_frame(frame_type, request_id, payload)
            try:
                sock.sendall(data)
            except OSError as exc:
                with self._pending_lock:
                    self._pending.pop(request_id, None)
                self._teardown(sock, exc)
                raise ConnectionError(
                    f"send to replica server {self.host}:{self.port} failed: {exc}"
                ) from exc
        self.stats.note_sent(len(data))
        return request_id, future

    def _call(self, frame_type: int, payload: bytes, *, timeout: float) -> Frame:
        """One synchronous request/response round trip."""
        _request_id, future = self._send_frame(frame_type, payload)
        frame: Frame = future.result(timeout)
        if frame.frame_type == codec.T_ERROR:
            _raise_remote(frame.payload)
        return frame

    def _inject_faults(self, deadline: float | None) -> float | None:
        """Consult the active fault plan at this transport's three sites.

        Returns the deadline budget *after* any injected stall — the stall
        consumes budget exactly like a real slow network would.
        """
        injector = active_injector()
        if injector is None:
            return deadline
        stalled = injector.slow_network()
        if stalled:
            time.sleep(stalled)
        if injector.conn_reset():
            self._teardown(self._sock, ConnectionResetError("injected conn_reset"))
            raise ConnectionResetError(
                f"injected conn_reset fault on replica {self.name}"
            )
        if injector.torn_frame():
            self._teardown(
                self._sock, TornFrameError("injected torn response frame")
            )
            raise TornFrameError(
                f"injected torn_frame fault on replica {self.name}"
            )
        return deadline - stalled if deadline is not None else None

    # -- Daemon surface -----------------------------------------------------------------
    def submit(
        self,
        kind: str,
        requests,
        *,
        deadline: float | None = None,
        block: bool = False,
        timeout: float | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> _RemoteTicket:
        """Send one ``cluster_lookup`` batch; returns a future-backed ticket.

        Mirrors :meth:`SynthesisDaemon.submit`'s signature (``block`` /
        ``timeout`` govern local admission there; here the replica server's
        own daemon applies them, so they only bound the ticket wait).
        ``deadline`` is the remaining budget in seconds — measured after any
        send-side stall and enforced again replica-side.
        """
        if kind != "cluster_lookup":
            raise ValueError(
                f"remote replicas serve 'cluster_lookup' batches, not {kind!r}"
            )
        if self._closed:
            raise DaemonStoppedError(f"remote replica client {self.name} is closed")
        deadline = self._inject_faults(deadline)
        if deadline is not None and deadline <= 0:
            raise DeadlineExpiredError(
                f"lookup budget exhausted before send ({deadline:.3f}s remaining)"
            )
        payload = codec.encode_lookup_request(
            tuple(requests), deadline_remaining=deadline
        )
        _request_id, future = self._send_frame(codec.T_LOOKUP, payload)
        return _RemoteTicket(self, kind, future)

    def apply_delta(
        self,
        upserts,
        removed,
        *,
        seq: int,
        escalation_ratio: float = 0.25,
        source: str | None = None,
    ) -> _RemoteGeneration:
        """Ship one shard-local delta slice over the wire and apply it."""
        if self._closed:
            raise DaemonStoppedError(f"remote replica client {self.name} is closed")
        payload = codec.encode_delta_request(
            list(upserts),
            list(removed),
            seq=seq,
            escalation_ratio=escalation_ratio,
            source=source,
        )
        try:
            frame = self._call(
                codec.T_APPLY_DELTA, payload, timeout=self.request_timeout
            )
        except ConnectionError as exc:
            # The router treats a closed in-process replica as skippable; a
            # dead server is morally identical (it catches up from the
            # compacted artifact on restart).
            raise DaemonStoppedError(
                f"replica server {self.host}:{self.port} unreachable for delta: "
                f"{exc}"
            ) from exc
        self._note_generation(codec.decode_generation(frame.payload))
        return _RemoteGeneration(self)

    def health(self) -> dict[str, object]:
        """The remote daemon's health, with *this side's* transport counters.

        The router reads replica health through this method, so the
        ``transport`` section reports the router→replica link as the router
        experiences it (frames, bytes, reconnects, rtt percentiles).  An
        unreachable server yields a degraded synthetic snapshot instead of an
        exception — health reporting must never take the router down.
        """
        try:
            frame = self._call(codec.T_HEALTH, b"", timeout=self.request_timeout)
            server_health = codec.decode_json(frame.payload)
            view = dict(server_health["daemon"])  # type: ignore[index]
        except Exception as exc:
            view = {
                "status": "unreachable",
                "degraded_reasons": [
                    f"replica server {self.host}:{self.port} unreachable: {exc}"
                ],
                "generation": self._last_generation,
                "watcher": None,
            }
        view["transport"] = self.stats.snapshot()
        return view

    def server_health(self) -> dict[str, object]:
        """The raw :meth:`ReplicaServer.health` snapshot (server-side view)."""
        frame = self._call(codec.T_HEALTH, b"", timeout=self.request_timeout)
        health = codec.decode_json(frame.payload)
        if not isinstance(health, dict):
            raise codec.ProtocolError(f"malformed health payload: {health!r}")
        return health

    def ping(self) -> float:
        """One round trip; returns its latency in seconds."""
        started = time.monotonic()
        self._call(codec.T_PING, b"", timeout=self.request_timeout)
        return time.monotonic() - started

    def await_generation(self, target: int, *, timeout: float = 30.0) -> int:
        """Block until the replica reaches generation ``target`` (0 = report).

        The server polls its own watcher locally; one frame covers the whole
        wait.  Returns the generation actually reached (compare to ``target``).
        """
        frame = self._call(
            codec.T_NOTIFY,
            codec.encode_notify_request(target, timeout),
            timeout=timeout + self.request_timeout,
        )
        number = codec.decode_generation(frame.payload)
        self._note_generation(number)
        return number

    def _note_generation(self, number: int) -> None:
        if number > self._last_generation:
            self._last_generation = number

    @property
    def generation(self) -> _RemoteGeneration:
        return _RemoteGeneration(self)

    @property
    def watcher(self) -> _RemoteWatcher | None:
        """A watcher facade when the remote daemon has one, else ``None``."""
        if self._has_watcher is None:
            try:
                view = self.health()
                self._has_watcher = view.get("watcher") is not None
            except Exception:
                return None
        return _RemoteWatcher(self) if self._has_watcher else None

    @property
    def closed(self) -> bool:
        """True once *this client* is closed (a dead server is failover's job)."""
        return self._closed

    def close(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Close the client; with ``drain`` ask the server to drain-then-exit.

        Idempotent and never raises: close must be safe from ``finally``
        blocks, double closes, and half-dead connections alike.
        """
        with self._conn_lock:
            if self._closed:
                return
            connected = self._sock is not None
        # Send the DRAIN while the client is still open: flipping _closed
        # first would make _ensure_connected refuse our own drain frame.
        if drain and connected:
            try:
                self._call(
                    codec.T_DRAIN, b"", timeout=timeout if timeout else 10.0
                )
            except Exception:
                pass
        with self._conn_lock:
            if self._closed:
                return  # lost a race against a concurrent close
            self._closed = True
        self._teardown(None, DaemonStoppedError("remote replica client closed"))

    def __enter__(self) -> "RemoteReplica":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"RemoteReplica({self.host}:{self.port}, {state})"
