"""Cross-host cluster transport: framed binary wire protocol over TCP.

The cluster tier (:mod:`repro.cluster`) scatters ``cluster_lookup`` batches to
shard replicas and merges their answers byte-identically to one synchronous
:class:`~repro.applications.MappingService`.  Until this package existed every
replica was an in-process :class:`~repro.serving.SynthesisDaemon`, so the
cluster could never leave one Python process, let alone one host.  ``repro.net``
adds the missing network boundary without touching the merge semantics:

* :mod:`repro.net.codec` — a versioned, length-prefixed framed binary protocol
  (magic + frame type + request id + sha256-checksummed payload) built on the
  same varint / string-pool primitives as the v2 artifact store, covering the
  full replica surface: lookup batches, delta patches, health, rollout
  notification, ping, and drain.
* :mod:`repro.net.server` — :class:`ReplicaServer`, a threaded TCP accept loop
  wrapping one daemon per shard artifact (``python -m repro.net.server
  --artifact ...`` runs a replica as a real separate process).
* :mod:`repro.net.client` — :class:`RemoteReplica`, a socket client exposing
  the same ``submit`` / ``apply_delta`` / ``health`` surface the router calls
  on in-process daemons, with reconnects, deadline fail-fast, and transport
  counters.

``ClusterRouter.from_artifact(..., transport="tcp")`` wires the three together:
replicas become subprocesses, the router talks frames, and every existing
equivalence property holds across the wire.
"""

from repro.net.codec import (
    ChecksumError,
    Frame,
    ProtocolError,
    TornFrameError,
    TransportStats,
    TRANSPORT_HEALTH_KEYS,
)

# client / server exports resolve lazily (PEP 562) so that importing the
# package never pre-imports repro.net.server — ``python -m repro.net.server``
# must execute the module fresh in replica processes (runpy warns, and module
# state would split, if the package import got there first).
_LAZY = {
    "RemoteReplica": "repro.net.client",
    "RemoteReplicaError": "repro.net.client",
    "ReplicaServer": "repro.net.server",
    "serve_shard": "repro.net.server",
    "spawn_replica_process": "repro.net.server",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.net' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "Frame",
    "ProtocolError",
    "TornFrameError",
    "ChecksumError",
    "TransportStats",
    "TRANSPORT_HEALTH_KEYS",
    "ReplicaServer",
    "serve_shard",
    "spawn_replica_process",
    "RemoteReplica",
    "RemoteReplicaError",
]
