"""Framed binary wire protocol for the cluster's cross-host transport.

Every message between a :class:`~repro.net.client.RemoteReplica` and a
:class:`~repro.net.server.ReplicaServer` is one **frame**:

.. code-block:: text

    magic+version  4 bytes   b"RNE1" (bump the digit on incompatible change)
    frame type     1 byte    request/response kind (see the T_* constants)
    request id     8 bytes   big-endian; responses echo their request's id
    payload length 4 bytes   big-endian, sanity-capped
    checksum      32 bytes   sha256(payload) — damage detection end to end
    payload        N bytes   type-specific body

Payload bodies reuse the v2 artifact store's binary primitives
(:class:`~repro.store.codec.ByteWriter` varints / strings / bit-exact float64,
plus the interned :class:`~repro.store.codec.StringPool`), and mapping records
travel as a verbatim ``"mappings"`` artifact section
(:func:`repro.store.sections.encode_section`), so a mapping decoded off the
wire is constructed by **exactly** the same code path as one decoded from a
shard artifact — which is what keeps remote answers byte-identical
(``repr``-identical) to in-process ones, set/dict iteration order included.

Read-side failures are typed: a stream that ends mid-frame raises
:class:`TornFrameError`, a checksum mismatch raises :class:`ChecksumError`,
anything else structurally invalid raises :class:`ProtocolError` (all three are
:class:`~repro.store.codec.CodecError` subclasses, so existing corruption
handling composes).
"""

from __future__ import annotations

import hashlib
import json
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.applications.index import MappingMatch
from repro.applications.service import LookupRequest, ServedResponse
from repro.store.codec import ByteReader, ByteWriter, CodecError
from repro.store.sections import decode_section, encode_section

__all__ = [
    "PROTOCOL_MAGIC",
    "MAX_FRAME_PAYLOAD",
    "ProtocolError",
    "TornFrameError",
    "ChecksumError",
    "Frame",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "TransportStats",
    "TRANSPORT_HEALTH_KEYS",
]

#: Magic + protocol version, first bytes of every frame.  An incompatible
#: protocol change bumps the trailing digit so mixed-version peers fail fast
#: with a clear error instead of misparsing each other.
PROTOCOL_MAGIC = b"RNE1"

#: Sanity cap on one frame's payload: a single lookup batch or delta slice is
#: at most a few MB; a larger declared length means the stream lost framing.
MAX_FRAME_PAYLOAD = 1 << 28

_HEADER = struct.Struct(">4sBQL")  # magic, frame type, request id, payload len
_CHECKSUM_SIZE = 32
HEADER_SIZE = _HEADER.size + _CHECKSUM_SIZE

# -- Frame types (requests odd concerns, responses paired) ------------------------------
T_PING = 1
T_PONG = 2
T_LOOKUP = 3
T_LOOKUP_OK = 4
T_APPLY_DELTA = 5
T_DELTA_OK = 6
T_HEALTH = 7
T_HEALTH_OK = 8
T_NOTIFY = 9  # rollout notification: report / await a generation number
T_NOTIFY_OK = 10
T_DRAIN = 11
T_DRAIN_OK = 12
T_ERROR = 13  # response-only: remote exception envelope

_FRAME_TYPES = frozenset(range(T_PING, T_ERROR + 1))


class ProtocolError(CodecError):
    """The byte stream violates the framed protocol (bad magic, type, length)."""


class TornFrameError(ProtocolError):
    """The connection ended (or was cut) in the middle of a frame."""


class ChecksumError(ProtocolError):
    """A frame's payload does not match its sha256 checksum."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: type, correlation id, raw payload bytes."""

    frame_type: int
    request_id: int
    payload: bytes

    def __len__(self) -> int:
        return HEADER_SIZE + len(self.payload)


def encode_frame(frame_type: int, request_id: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + checksum + payload) to wire bytes."""
    if frame_type not in _FRAME_TYPES:
        raise ValueError(f"unknown frame type {frame_type}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds cap {MAX_FRAME_PAYLOAD}"
        )
    header = _HEADER.pack(PROTOCOL_MAGIC, frame_type, request_id, len(payload))
    return header + hashlib.sha256(payload).digest() + payload


def decode_frame(data: bytes) -> Frame:
    """Decode one complete frame from ``data`` (must contain exactly one)."""
    frame, consumed = _decode_prefix(data)
    if consumed != len(data):
        raise ProtocolError(
            f"{len(data) - consumed} trailing bytes after frame payload"
        )
    return frame


def _decode_prefix(data: bytes) -> tuple[Frame, int]:
    if len(data) < HEADER_SIZE:
        raise TornFrameError(
            f"frame header truncated: {len(data)} of {HEADER_SIZE} bytes"
        )
    magic, frame_type, request_id, length = _HEADER.unpack_from(data)
    _validate_header(magic, frame_type, length)
    checksum = data[_HEADER.size : HEADER_SIZE]
    end = HEADER_SIZE + length
    if len(data) < end:
        raise TornFrameError(
            f"frame payload truncated: {len(data) - HEADER_SIZE} of {length} bytes"
        )
    payload = data[HEADER_SIZE:end]
    _validate_checksum(payload, checksum)
    return Frame(frame_type, request_id, payload), end


def _validate_header(magic: bytes, frame_type: int, length: int) -> None:
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r} (expected {PROTOCOL_MAGIC!r}); "
            "peer speaks a different protocol or the stream lost framing"
        )
    if frame_type not in _FRAME_TYPES:
        raise ProtocolError(f"unknown frame type {frame_type}")
    if length > MAX_FRAME_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds cap {MAX_FRAME_PAYLOAD}"
        )


def _validate_checksum(payload: bytes, checksum: bytes) -> None:
    if hashlib.sha256(payload).digest() != checksum:
        raise ChecksumError(
            "frame payload does not match its sha256 checksum "
            f"({len(payload)} bytes damaged in transit)"
        )


def read_frame(sock) -> Frame | None:
    """Read exactly one frame from a socket.

    Returns ``None`` on a clean end-of-stream at a frame boundary (the peer
    closed the connection between frames); raises :class:`TornFrameError` when
    the stream ends mid-frame, :class:`ChecksumError` on payload damage, and
    :class:`ProtocolError` on anything structurally invalid.
    """
    header = _recv_exactly(sock, HEADER_SIZE, allow_eof=True)
    if header is None:
        return None
    magic, frame_type, request_id, length = _HEADER.unpack_from(header)
    _validate_header(magic, frame_type, length)
    checksum = header[_HEADER.size : HEADER_SIZE]
    payload = _recv_exactly(sock, length) if length else b""
    _validate_checksum(payload, checksum)
    return Frame(frame_type, request_id, payload)


def _recv_exactly(sock, count: int, *, allow_eof: bool = False) -> bytes | None:
    """Read exactly ``count`` bytes; EOF mid-read is a torn frame."""
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise TornFrameError(
                f"connection closed mid-frame ({count - remaining} of {count} "
                "bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------------------
# Payload codecs
# ---------------------------------------------------------------------------------------
_LOOKUP_OPS = ("values", "pairs")


def encode_lookup_request(
    requests: tuple[LookupRequest, ...] | list[LookupRequest],
    *,
    deadline_remaining: float | None = None,
) -> bytes:
    """Encode one ``cluster_lookup`` batch plus its remaining deadline budget.

    ``deadline_remaining`` is the router's remaining per-scatter budget in
    seconds at send time (``None`` = no deadline) — the single source of truth
    the replica enforces at serve time, so a slow network can only *shrink*
    the budget a batch is served under, never extend it.
    """
    writer = ByteWriter()
    writer.write_float(-1.0 if deadline_remaining is None else deadline_remaining)
    writer.write_uvarint(len(requests))
    for request in requests:
        writer.write_uvarint(_LOOKUP_OPS.index(request.op))
        writer.write_float(request.min_containment)
        writer.write_uvarint(request.top_k)
        writer.write_uvarint(len(request.values))
        if request.op == "values":
            for value in request.values:
                writer.write_str(value)
        else:
            for left, right in request.values:
                writer.write_str(left)
                writer.write_str(right)
    return writer.getvalue()


def decode_lookup_request(
    payload: bytes,
) -> tuple[tuple[LookupRequest, ...], float | None]:
    reader = ByteReader(payload)
    deadline_remaining: float | None = reader.read_float()
    if deadline_remaining < 0:
        deadline_remaining = None
    requests: list[LookupRequest] = []
    for _ in range(reader.read_uvarint()):
        op_index = reader.read_uvarint()
        if op_index >= len(_LOOKUP_OPS):
            raise ProtocolError(f"unknown lookup op index {op_index}")
        op = _LOOKUP_OPS[op_index]
        min_containment = reader.read_float()
        top_k = reader.read_uvarint()
        count = reader.read_uvarint()
        if op == "values":
            values: tuple = tuple(reader.read_str() for _ in range(count))
        else:
            values = tuple(
                (reader.read_str(), reader.read_str()) for _ in range(count)
            )
        requests.append(
            LookupRequest(
                op=op, values=values, min_containment=min_containment, top_k=top_k
            )
        )
    reader.expect_eof()
    return tuple(requests), deadline_remaining


_DIRECTIONS = ("forward", "reverse")


def encode_lookup_response(
    responses: list[ServedResponse], *, generation: int, fingerprint: str
) -> bytes:
    """Encode one served batch: envelopes + the distinct mappings they cite.

    The mappings travel as a verbatim ``"mappings"`` artifact section (each
    distinct mapping once, matches reference it by index), so the client-side
    decode constructs them through the exact artifact code path — canonical
    JSON metadata, sorted-then-set domains — and the reconstructed
    :class:`MappingMatch` lists ``repr`` byte-identically to in-process ones.
    """
    distinct: dict[int, int] = {}
    mappings: list = []
    for response in responses:
        for match in response.result or ():
            if id(match.mapping) not in distinct:
                distinct[id(match.mapping)] = len(mappings)
                mappings.append(match.mapping)
    section = encode_section("mappings", {"mappings": mappings})
    writer = ByteWriter()
    writer.write_uvarint(generation)
    writer.write_str(fingerprint)
    writer.write_uvarint(len(section))
    writer.write_bytes(section)
    writer.write_uvarint(len(responses))
    for response in responses:
        writer.write_str(response.kind)
        writer.write_uvarint(response.request_index)
        writer.write_float(response.elapsed_seconds)
        writer.write_uvarint(0 if response.error is None else 1)
        if response.error is not None:
            writer.write_str(response.error)
        writer.write_uvarint(0 if response.result is None else 1)
        if response.result is not None:
            writer.write_uvarint(len(response.result))
            for match in response.result:
                writer.write_uvarint(distinct[id(match.mapping)])
                writer.write_float(match.left_containment)
                writer.write_float(match.right_containment)
                writer.write_uvarint(_DIRECTIONS.index(match.direction))
    return writer.getvalue()


def decode_lookup_response(
    payload: bytes,
) -> tuple[list[ServedResponse], int, str]:
    """Decode a served batch; returns ``(responses, generation, fingerprint)``."""
    reader = ByteReader(payload)
    generation = reader.read_uvarint()
    fingerprint = reader.read_str()
    section_len = reader.read_uvarint()
    mappings = decode_section("mappings", reader.read_bytes(section_len))["mappings"]
    responses: list[ServedResponse] = []
    for _ in range(reader.read_uvarint()):
        kind = reader.read_str()
        request_index = reader.read_uvarint()
        elapsed = reader.read_float()
        error = reader.read_str() if reader.read_uvarint() else None
        result = None
        if reader.read_uvarint():
            matches: list[MappingMatch] = []
            for _ in range(reader.read_uvarint()):
                ref = reader.read_uvarint()
                if ref >= len(mappings):
                    raise ProtocolError(
                        f"mapping reference {ref} outside section of {len(mappings)}"
                    )
                left = reader.read_float()
                right = reader.read_float()
                direction_index = reader.read_uvarint()
                if direction_index >= len(_DIRECTIONS):
                    raise ProtocolError(
                        f"unknown match direction index {direction_index}"
                    )
                matches.append(
                    MappingMatch(
                        mapping=mappings[ref],
                        left_containment=left,
                        right_containment=right,
                        direction=_DIRECTIONS[direction_index],
                    )
                )
            result = matches
        responses.append(
            ServedResponse(
                kind=kind,
                request_index=request_index,
                elapsed_seconds=elapsed,
                result=result,
                error=error,
            )
        )
    reader.expect_eof()
    return responses, generation, fingerprint


def encode_delta_request(
    upserts: list,
    removed: list[str],
    *,
    seq: int,
    escalation_ratio: float,
    source: str | None = None,
) -> bytes:
    """Encode one shard-local delta slice (upserts as a mappings section)."""
    section = encode_section("mappings", {"mappings": list(upserts)})
    writer = ByteWriter()
    writer.write_uvarint(seq)
    writer.write_float(escalation_ratio)
    writer.write_uvarint(0 if source is None else 1)
    if source is not None:
        writer.write_str(source)
    writer.write_uvarint(len(removed))
    for mapping_id in removed:
        writer.write_str(mapping_id)
    writer.write_uvarint(len(section))
    writer.write_bytes(section)
    return writer.getvalue()


def decode_delta_request(payload: bytes) -> dict[str, object]:
    reader = ByteReader(payload)
    seq = reader.read_uvarint()
    escalation_ratio = reader.read_float()
    source = reader.read_str() if reader.read_uvarint() else None
    removed = [reader.read_str() for _ in range(reader.read_uvarint())]
    section_len = reader.read_uvarint()
    upserts = decode_section("mappings", reader.read_bytes(section_len))["mappings"]
    reader.expect_eof()
    return {
        "upserts": upserts,
        "removed": removed,
        "seq": seq,
        "escalation_ratio": escalation_ratio,
        "source": source,
    }


def encode_generation(number: int) -> bytes:
    writer = ByteWriter()
    writer.write_uvarint(number)
    return writer.getvalue()


def decode_generation(payload: bytes) -> int:
    reader = ByteReader(payload)
    number = reader.read_uvarint()
    reader.expect_eof()
    return number


def encode_notify_request(target: int, timeout: float) -> bytes:
    """Target generation to await (0 = just report the current one)."""
    writer = ByteWriter()
    writer.write_uvarint(target)
    writer.write_float(timeout)
    return writer.getvalue()


def decode_notify_request(payload: bytes) -> tuple[int, float]:
    reader = ByteReader(payload)
    target = reader.read_uvarint()
    timeout = reader.read_float()
    reader.expect_eof()
    return target, timeout


def encode_json(obj: object) -> bytes:
    """Canonical JSON payload (health snapshots, error envelopes).

    ``default=str`` keeps the envelope best-effort: a health snapshot must
    never fail to serialize just because some diagnostic value is exotic.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")


def decode_json(payload: bytes) -> object:
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON payload: {exc}") from exc


def encode_error(exc: BaseException) -> bytes:
    """Encode a remote failure as ``(exception type name, message)``."""
    return encode_json({"type": type(exc).__name__, "message": str(exc)})


def decode_error(payload: bytes) -> tuple[str, str]:
    obj = decode_json(payload)
    if not isinstance(obj, dict) or "type" not in obj or "message" not in obj:
        raise ProtocolError(f"malformed error envelope: {obj!r}")
    return str(obj["type"]), str(obj["message"])


# ---------------------------------------------------------------------------------------
# Transport counters
# ---------------------------------------------------------------------------------------
#: The key-set every ``health()["transport"]`` section carries — daemon
#: (inproc zeros or the replica server's provider), replica server, remote
#: client, and the router's per-replica / aggregate views all agree on it, and
#: ``tests/test_health_schema.py`` locks it.
TRANSPORT_HEALTH_KEYS = frozenset(
    {
        "kind",
        "connections",
        "frames_sent",
        "frames_received",
        "bytes_sent",
        "bytes_received",
        "reconnects",
        "rtt_ms_p50",
        "rtt_ms_p90",
    }
)

#: Recent round-trip samples retained per client for percentile reporting.
_RTT_WINDOW = 512


def inproc_transport_snapshot() -> dict[str, object]:
    """The zero-valued transport section in-process replicas report."""
    return {
        "kind": "inproc",
        "connections": 0,
        "frames_sent": 0,
        "frames_received": 0,
        "bytes_sent": 0,
        "bytes_received": 0,
        "reconnects": 0,
        "rtt_ms_p50": 0.0,
        "rtt_ms_p90": 0.0,
    }


class TransportStats:
    """Thread-safe frame/byte/reconnect counters plus an rtt window."""

    def __init__(self, kind: str = "tcp") -> None:
        self.kind = kind
        self._lock = threading.Lock()
        self._frames_sent = 0
        self._frames_received = 0
        self._bytes_sent = 0
        self._bytes_received = 0
        self._reconnects = 0
        self._connections = 0
        self._rtt_seconds: deque[float] = deque(maxlen=_RTT_WINDOW)

    def note_sent(self, nbytes: int) -> None:
        with self._lock:
            self._frames_sent += 1
            self._bytes_sent += nbytes

    def note_received(self, nbytes: int) -> None:
        with self._lock:
            self._frames_received += 1
            self._bytes_received += nbytes

    def note_reconnect(self) -> None:
        with self._lock:
            self._reconnects += 1

    def note_connection(self, delta: int) -> None:
        with self._lock:
            self._connections += delta

    def note_rtt(self, seconds: float) -> None:
        with self._lock:
            self._rtt_seconds.append(seconds)

    def rtt_percentile(self, quantile: float) -> float:
        """Round-trip percentile over the recent window, in milliseconds."""
        with self._lock:
            window = sorted(self._rtt_seconds)
        if not window:
            return 0.0
        position = min(len(window) - 1, int(quantile * len(window)))
        return window[position] * 1000.0

    def snapshot(self) -> dict[str, object]:
        """One JSON-able view matching :data:`TRANSPORT_HEALTH_KEYS`."""
        p50 = self.rtt_percentile(0.5)
        p90 = self.rtt_percentile(0.9)
        with self._lock:
            return {
                "kind": self.kind,
                "connections": self._connections,
                "frames_sent": self._frames_sent,
                "frames_received": self._frames_received,
                "bytes_sent": self._bytes_sent,
                "bytes_received": self._bytes_received,
                "reconnects": self._reconnects,
                "rtt_ms_p50": p50,
                "rtt_ms_p90": p90,
            }


def timed_rtt(stats: TransportStats, started_at: float) -> None:
    """Record one completed round trip started at ``started_at`` (monotonic)."""
    stats.note_rtt(time.monotonic() - started_at)
