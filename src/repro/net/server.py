"""TCP replica server: one :class:`SynthesisDaemon` behind a framed socket.

A :class:`ReplicaServer` wraps one daemon (one shard artifact) in a threaded
accept loop speaking the :mod:`repro.net.codec` frame protocol.  Each
connection gets its own handler thread; lookup frames are served on further
per-request threads (responses may complete out of order — the request id in
the frame header is the correlation), so one slow batch never blocks the
connection's other traffic or its control frames.

Deadline propagation is replica-side enforced: the router encodes its
remaining per-scatter budget into every lookup frame, and the server hands it
to :meth:`SynthesisDaemon.submit` as the batch deadline — a batch whose budget
was eaten by the network (or the queue) fails fast with
:class:`DeadlineExpiredError` instead of consuming daemon work the client has
already given up on.

Replicas run as real separate processes via the module entry point::

    python -m repro.net.server --artifact shard.artifact --port 0

which prints one ``REPRO-NET READY host=... port=...`` line to stdout once the
socket is listening (the handshake :func:`spawn_replica_process` waits for).
A malformed or damaged frame (bad magic, torn stream, checksum mismatch) kills
only its connection — the accept loop and the daemon keep serving.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import asdict
from pathlib import Path

from repro.net import codec
from repro.net.codec import Frame, ProtocolError, TransportStats, read_frame
from repro.serving.daemon import DeadlineExpiredError, SynthesisDaemon

__all__ = ["ReplicaServer", "serve_shard", "spawn_replica_process", "main"]

#: Stdout handshake line prefix a freshly spawned replica prints once listening.
READY_PREFIX = "REPRO-NET READY"


class ReplicaServer:
    """Serve one daemon's replica surface over framed TCP.

    The server owns neither the artifact nor the daemon's lifecycle policy —
    it is a transport shim: frames in, daemon calls, frames out.  ``close``
    (and the ``DRAIN`` frame) drains the daemon before the socket goes away,
    so a politely-stopped replica finishes every batch it accepted.
    """

    def __init__(
        self,
        daemon: SynthesisDaemon,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
        request_timeout: float = 30.0,
    ) -> None:
        self.daemon = daemon
        self.request_timeout = request_timeout
        self.stats = TransportStats(kind="tcp")
        self._listener = socket.create_server((host, port), backlog=backlog)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._connections: set[socket.socket] = set()
        self._stopped = threading.Event()
        self._draining = False
        self._accept_thread: threading.Thread | None = None
        # Surface this server's transport counters in the daemon's own health
        # snapshot, so ``daemon.health()["transport"]`` reports real traffic
        # instead of the inproc zeros.
        daemon.transport_stats_provider = self.stats.snapshot

    # -- Lifecycle ----------------------------------------------------------------------
    def start(self) -> "ReplicaServer":
        """Start the accept loop on a background thread; returns self."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self._accept_loop, name="replica-server-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Start (if needed) and block until :meth:`close` is called."""
        self.start()
        self._stopped.wait()

    @property
    def closed(self) -> bool:
        return self._stopped.is_set()

    def close(self, *, drain: bool = True) -> None:
        """Stop accepting, optionally drain the daemon, drop every connection.

        Idempotent and exception-safe: a double close (or a close racing the
        DRAIN frame's shutdown thread) is a no-op, and no failure on one
        resource stops the others from being released.
        """
        with self._lock:
            if self._draining and drain:
                pass  # already being drained by the DRAIN frame handler
            self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            self.daemon.close(drain=drain)
        except Exception:
            pass
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            _close_socket(conn)
        self._stopped.set()
        if (
            self._accept_thread is not None
            and self._accept_thread is not threading.current_thread()
        ):
            self._accept_thread.join(timeout=5)

    def __enter__(self) -> "ReplicaServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- Health -------------------------------------------------------------------------
    def health(self) -> dict[str, object]:
        """One JSON-able snapshot: server status + transport + daemon health."""
        daemon_health = self.daemon.health()
        with self._lock:
            connections = len(self._connections)
            draining = self._draining
        if self.closed:
            status = "closed"
        elif draining:
            status = "draining"
        else:
            status = daemon_health["status"]
        return {
            "status": status,
            "host": self.host,
            "port": self.port,
            "draining": draining,
            "connections": connections,
            "transport": self.stats.snapshot(),
            "daemon": daemon_health,
        }

    # -- Accept / connection handling ---------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            with self._lock:
                if self._draining:
                    _close_socket(conn)
                    continue
                self._connections.add(conn)
            self.stats.note_connection(1)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="replica-server-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        write_lock = threading.Lock()
        try:
            while True:
                try:
                    frame = read_frame(conn)
                except ProtocolError as exc:
                    # Damaged/hostile stream: answer with an error envelope if
                    # the socket still works, then cut the connection.  The
                    # accept loop and every other connection are unaffected.
                    self._send(conn, write_lock, codec.T_ERROR, 0, codec.encode_error(exc))
                    return
                if frame is None:
                    return  # peer closed cleanly between frames
                self.stats.note_received(len(frame))
                if not self._dispatch(conn, write_lock, frame):
                    return
        except OSError:
            return  # connection died mid-write/read; nothing to salvage
        finally:
            with self._lock:
                self._connections.discard(conn)
            _close_socket(conn)
            self.stats.note_connection(-1)

    def _dispatch(
        self, conn: socket.socket, write_lock: threading.Lock, frame: Frame
    ) -> bool:
        """Handle one frame; returns False when the connection should close."""
        if frame.frame_type == codec.T_PING:
            self._send(conn, write_lock, codec.T_PONG, frame.request_id, frame.payload)
        elif frame.frame_type == codec.T_LOOKUP:
            # Per-request worker thread: responses are correlated by request
            # id, so out-of-order completion is fine and a slow batch never
            # blocks the connection's reads (drain, health, other lookups).
            threading.Thread(
                target=self._serve_lookup,
                args=(conn, write_lock, frame),
                name="replica-server-lookup",
                daemon=True,
            ).start()
        elif frame.frame_type == codec.T_APPLY_DELTA:
            self._reply(
                conn, write_lock, frame, codec.T_DELTA_OK, self._apply_delta
            )
        elif frame.frame_type == codec.T_HEALTH:
            self._reply(
                conn,
                write_lock,
                frame,
                codec.T_HEALTH_OK,
                lambda _frame: codec.encode_json(self.health()),
            )
        elif frame.frame_type == codec.T_NOTIFY:
            threading.Thread(
                target=self._reply,
                args=(conn, write_lock, frame, codec.T_NOTIFY_OK, self._notify),
                name="replica-server-notify",
                daemon=True,
            ).start()
        elif frame.frame_type == codec.T_DRAIN:
            self._send(conn, write_lock, codec.T_DRAIN_OK, frame.request_id, b"")
            # Drain-then-close on a side thread: the ack above must reach the
            # client before the daemon drain (which may take a while) and the
            # socket teardown.
            threading.Thread(
                target=self.close,
                kwargs={"drain": True},
                name="replica-server-drain",
                daemon=True,
            ).start()
            return False
        else:
            self._send(
                conn,
                write_lock,
                codec.T_ERROR,
                frame.request_id,
                codec.encode_error(
                    ProtocolError(
                        f"frame type {frame.frame_type} is not a request kind"
                    )
                ),
            )
        return True

    def _reply(self, conn, write_lock, frame: Frame, ok_type: int, handler) -> None:
        """Run ``handler(frame) -> payload`` and send the ok/error response."""
        try:
            payload = handler(frame)
        except Exception as exc:
            self._send(
                conn, write_lock, codec.T_ERROR, frame.request_id, codec.encode_error(exc)
            )
            return
        self._send(conn, write_lock, ok_type, frame.request_id, payload)

    def _send(
        self, conn, write_lock, frame_type: int, request_id: int, payload: bytes
    ) -> None:
        data = codec.encode_frame(frame_type, request_id, payload)
        try:
            with write_lock:
                conn.sendall(data)
        except OSError:
            return  # client went away; its retry path owns recovery
        self.stats.note_sent(len(data))

    # -- Request handlers ---------------------------------------------------------------
    def _serve_lookup(self, conn, write_lock, frame: Frame) -> None:
        self._reply(conn, write_lock, frame, codec.T_LOOKUP_OK, self._lookup)

    def _lookup(self, frame: Frame) -> bytes:
        requests, remaining = codec.decode_lookup_request(frame.payload)
        if remaining is not None and remaining <= 0:
            # The budget was gone before the frame even arrived (slow network,
            # queued client): fail fast without consuming daemon work, and
            # count it where operators already look for expiries.
            expired = self.daemon.stats.bump("expired")
            raise DeadlineExpiredError(
                f"lookup budget exhausted in transit ({remaining:.3f}s remaining "
                f"at send; {expired} batch(es) expired this generation)"
            )
        timeout = remaining if remaining is not None else self.request_timeout
        ticket = self.daemon.submit(
            "cluster_lookup",
            requests,
            deadline=remaining,
            block=True,
            timeout=timeout,
        )
        result = ticket.result(timeout=timeout)
        return codec.encode_lookup_response(
            result.responses,
            generation=result.generation,
            fingerprint=result.fingerprint,
        )

    def _apply_delta(self, frame: Frame) -> bytes:
        delta = codec.decode_delta_request(frame.payload)
        generation = self.daemon.apply_delta(
            delta["upserts"],
            delta["removed"],
            seq=delta["seq"],
            escalation_ratio=delta["escalation_ratio"],
            source=delta["source"],
        )
        return codec.encode_generation(generation.number)

    def _notify(self, frame: Frame) -> bytes:
        """Report the current generation, or await ``target`` (rollout wait).

        ``target=0`` answers immediately.  Otherwise the server polls its own
        watcher locally (one frame per rollout step instead of a poll storm
        over the wire) until the generation reaches the target or the caller's
        timeout lapses; the response always carries the generation reached.
        """
        target, timeout = codec.decode_notify_request(frame.payload)
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            number = self.daemon.generation.number
            if target <= 0 or number >= target or self.daemon.closed:
                return codec.encode_generation(number)
            if time.monotonic() >= deadline:
                return codec.encode_generation(number)
            watcher = self.daemon.watcher
            if watcher is not None:
                watcher.check_now()
            time.sleep(0.01)


def _close_socket(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------------------
# Process entry point
# ---------------------------------------------------------------------------------------
def serve_shard(
    artifact_path: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    config=None,
    watch: bool = True,
    workers: int | None = None,
    executor: str | None = None,
    queue_size: int | None = None,
    default_deadline: float | None = None,
    poll_seconds: float | None = None,
    prefer_curated: bool = True,
    request_timeout: float | None = None,
    service_cls=None,
    **service_kwargs,
) -> ReplicaServer:
    """Build a daemon over ``artifact_path`` and a started server around it."""
    from repro.applications.service import MappingService
    from repro.core.config import SynthesisConfig

    config = config or SynthesisConfig()
    daemon = SynthesisDaemon.from_artifact(
        artifact_path,
        config=config,
        watch=watch,
        workers=workers,
        executor=executor,
        queue_size=queue_size,
        default_deadline=default_deadline,
        poll_seconds=poll_seconds,
        prefer_curated=prefer_curated,
        service_cls=service_cls or MappingService,
        **service_kwargs,
    )
    try:
        server = ReplicaServer(
            daemon,
            host=host,
            port=port,
            request_timeout=(
                request_timeout
                if request_timeout is not None
                else config.cluster_request_timeout_seconds
            ),
        )
    except BaseException:
        daemon.close(drain=False)
        raise
    return server.start()


def _resolve_class(spec: str):
    """Import ``"package.module:ClassName"`` (the CLI's service-class hook)."""
    module_name, _, class_name = spec.partition(":")
    if not class_name:
        module_name, _, class_name = spec.rpartition(".")
    module = importlib.import_module(module_name)
    return getattr(module, class_name)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.server",
        description="Serve one shard artifact as a cluster replica over TCP.",
    )
    parser.add_argument("--artifact", required=True, help="shard artifact path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--watch", action=argparse.BooleanOptionalAction, default=True)
    parser.add_argument("--poll-seconds", type=float, default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--executor", default=None)
    parser.add_argument("--queue-size", type=int, default=None)
    parser.add_argument("--default-deadline", type=float, default=None)
    parser.add_argument("--request-timeout", type=float, default=None)
    parser.add_argument(
        "--prefer-curated", action=argparse.BooleanOptionalAction, default=True
    )
    parser.add_argument(
        "--service-cls",
        default=None,
        help="dotted path 'module:Class' of the MappingService subclass to serve",
    )
    parser.add_argument(
        "--service-kwargs", default="{}", help="JSON threshold kwargs for the service"
    )
    parser.add_argument(
        "--config-json", default=None, help="JSON dict of SynthesisConfig fields"
    )
    args = parser.parse_args(argv)

    from repro.core.config import SynthesisConfig

    config = (
        SynthesisConfig(**json.loads(args.config_json))
        if args.config_json
        else SynthesisConfig()
    )
    server = serve_shard(
        args.artifact,
        host=args.host,
        port=args.port,
        config=config,
        watch=args.watch,
        poll_seconds=args.poll_seconds,
        workers=args.workers,
        executor=args.executor,
        queue_size=args.queue_size,
        default_deadline=args.default_deadline,
        prefer_curated=args.prefer_curated,
        request_timeout=args.request_timeout,
        service_cls=_resolve_class(args.service_cls) if args.service_cls else None,
        **json.loads(args.service_kwargs),
    )

    def _stop(_signum, _frame) -> None:
        server.close(drain=False)

    signal.signal(signal.SIGTERM, _stop)
    print(f"{READY_PREFIX} host={server.host} port={server.port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close(drain=False)
    return 0


def spawn_replica_process(
    artifact_path: str | Path,
    *,
    host: str = "127.0.0.1",
    config=None,
    ready_timeout: float = 60.0,
    **serve_kwargs,
) -> tuple[subprocess.Popen, str, int]:
    """Spawn ``python -m repro.net.server`` and wait for its READY handshake.

    Returns ``(process, host, port)``.  ``serve_kwargs`` mirrors
    :func:`serve_shard`'s keyword surface (``service_cls`` as a class — its
    dotted path is what crosses the process boundary).  The child inherits the
    environment plus a ``PYTHONPATH`` entry for this repro checkout, so it
    resolves the same package no matter the parent's cwd.
    """
    import repro

    argv = [
        sys.executable,
        "-m",
        "repro.net.server",
        "--artifact",
        str(artifact_path),
        "--host",
        host,
        "--port",
        "0",
    ]
    flag_names = {
        "poll_seconds": "--poll-seconds",
        "workers": "--workers",
        "executor": "--executor",
        "queue_size": "--queue-size",
        "default_deadline": "--default-deadline",
        "request_timeout": "--request-timeout",
    }
    for key, flag in flag_names.items():
        value = serve_kwargs.pop(key, None)
        if value is not None:
            argv += [flag, str(value)]
    if not serve_kwargs.pop("watch", True):
        argv.append("--no-watch")
    if not serve_kwargs.pop("prefer_curated", True):
        argv.append("--no-prefer-curated")
    service_cls = serve_kwargs.pop("service_cls", None)
    if service_cls is not None:
        argv += [
            "--service-cls",
            f"{service_cls.__module__}:{service_cls.__qualname__}",
        ]
    if config is not None:
        fields = asdict(config)
        fields.pop("extra", None)  # may hold non-JSON experiment objects
        argv += ["--config-json", json.dumps(fields, default=str)]
    if serve_kwargs:  # whatever remains is service threshold kwargs
        argv += ["--service-kwargs", json.dumps(serve_kwargs)]

    env = os.environ.copy()
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, env=env, text=True, bufsize=1
    )
    try:
        ready_host, ready_port = _await_ready(process, ready_timeout)
    except BaseException:
        process.kill()
        process.wait(timeout=10)
        raise
    return process, ready_host, ready_port


def _await_ready(process: subprocess.Popen, timeout: float) -> tuple[str, int]:
    deadline = time.monotonic() + timeout
    stdout = process.stdout
    assert stdout is not None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"replica server did not print its READY line within {timeout}s"
            )
        readable, _, _ = select.select([stdout], [], [], min(remaining, 0.5))
        if not readable:
            if process.poll() is not None:
                raise RuntimeError(
                    f"replica server exited with code {process.returncode} "
                    "before becoming ready"
                )
            continue
        line = stdout.readline()
        if not line:
            raise RuntimeError(
                f"replica server closed stdout (exit code {process.poll()}) "
                "before becoming ready"
            )
        if line.startswith(READY_PREFIX):
            parts = dict(
                part.split("=", 1) for part in line[len(READY_PREFIX) :].split()
            )
            return parts["host"], int(parts["port"])


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
