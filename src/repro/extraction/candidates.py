"""Candidate two-column table extraction (paper §3, Algorithm 1).

For every table in the corpus the extractor:

1. drops columns whose NPMI coherence is below a threshold (PMI filter, §3.1);
2. enumerates every ordered pair of the surviving columns;
3. keeps a pair only if the approximate FD ``left → right`` holds (§3.2) and the
   pair has enough distinct rows to be useful.

The paper reports that roughly 78% of raw column pairs are filtered out by these
two steps; :class:`ExtractionStats` records the same accounting for experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.binary_table import BinaryTable
from repro.core.config import SynthesisConfig
from repro.corpus.corpus import TableCorpus
from repro.corpus.table import Table
from repro.exec.fanout import FanOut
from repro.extraction.cooccurrence import CooccurrenceIndex
from repro.extraction.fd import column_pair_fd_ratio
from repro.extraction.pmi import column_coherence

__all__ = ["CandidateExtractor", "ExtractionStats"]


@dataclass
class ExtractionStats:
    """Accounting of how many columns / column pairs each filter removed."""

    num_tables: int = 0
    num_columns: int = 0
    columns_removed_by_pmi: int = 0
    raw_pairs: int = 0
    pairs_removed_by_fd: int = 0
    pairs_removed_by_size: int = 0
    candidates: int = 0
    coherence_by_column: dict[str, float] = field(default_factory=dict)

    @property
    def filtered_fraction(self) -> float:
        """Fraction of raw ordered pairs that did NOT survive extraction."""
        if self.raw_pairs == 0:
            return 0.0
        return 1.0 - self.candidates / self.raw_pairs

    def merge(self, other: "ExtractionStats") -> None:
        """Fold another shard's accounting into this one.

        Extraction is per-table, so summing per-shard counters (and merging the
        disjoint per-column coherence maps) reproduces the exact stats a
        sequential pass over the concatenated shards would have produced.
        """
        self.num_tables += other.num_tables
        self.num_columns += other.num_columns
        self.columns_removed_by_pmi += other.columns_removed_by_pmi
        self.raw_pairs += other.raw_pairs
        self.pairs_removed_by_fd += other.pairs_removed_by_fd
        self.pairs_removed_by_size += other.pairs_removed_by_size
        self.candidates += other.candidates
        self.coherence_by_column.update(other.coherence_by_column)

    def as_dict(self) -> dict[str, float]:
        """Return the statistics as a flat dictionary (for reports)."""
        return {
            "num_tables": self.num_tables,
            "num_columns": self.num_columns,
            "columns_removed_by_pmi": self.columns_removed_by_pmi,
            "raw_pairs": self.raw_pairs,
            "pairs_removed_by_fd": self.pairs_removed_by_fd,
            "pairs_removed_by_size": self.pairs_removed_by_size,
            "candidates": self.candidates,
            "filtered_fraction": self.filtered_fraction,
        }


def _extract_shard(
    config: SynthesisConfig,
    index: CooccurrenceIndex | None,
    tables: list[Table],
) -> tuple[list[BinaryTable], ExtractionStats]:
    """Extract one shard of tables (module-level so process workers can run it).

    Extraction is a pure per-table function (the corpus-global PMI index is
    built once and shipped read-only), so sharding cannot change any candidate.
    """
    extractor = CandidateExtractor(config)
    stats = ExtractionStats()
    candidates: list[BinaryTable] = []
    for table in tables:
        candidates.extend(extractor.extract_from_table(table, index=index, stats=stats))
    return candidates, stats


class _ShardTask:
    """Bound shard task for thread backends: config + PMI index per instance.

    Threads share this object directly (no serialization); process backends
    use the initializer path below instead, so the corpus-global index crosses
    the process boundary once per worker rather than once per shard task.
    """

    __slots__ = ("config", "index")

    def __init__(self, config: SynthesisConfig, index: CooccurrenceIndex | None) -> None:
        self.config = config
        self.index = index

    def __call__(
        self, shard: list[Table]
    ) -> tuple[list[BinaryTable], ExtractionStats]:
        return _extract_shard(self.config, self.index, shard)


# Per-worker extraction state, installed by the spawn-safe pool initializer.
# Worker processes are private to one pool (one extract_tables call), so the
# module globals cannot collide across concurrent extractions.
_EXTRACT_CONFIG: SynthesisConfig | None = None
_EXTRACT_INDEX: CooccurrenceIndex | None = None


def _init_extract_worker(
    config: SynthesisConfig, index: CooccurrenceIndex | None
) -> None:
    global _EXTRACT_CONFIG, _EXTRACT_INDEX
    _EXTRACT_CONFIG = config
    _EXTRACT_INDEX = index


def _extract_shard_in_worker(
    shard: list[Table],
) -> tuple[list[BinaryTable], ExtractionStats]:
    assert _EXTRACT_CONFIG is not None
    return _extract_shard(_EXTRACT_CONFIG, _EXTRACT_INDEX, shard)


class CandidateExtractor:
    """Extracts candidate binary tables from a corpus (Algorithm 1)."""

    def __init__(self, config: SynthesisConfig | None = None) -> None:
        self.config = config or SynthesisConfig()
        #: True when the most recent extract() fanned shards across a parallel
        #: backend but had to fall back to the sequential path (pool failure).
        self.last_parallel_fallback = False

    # -- Column-level filtering -----------------------------------------------------
    def _coherent_column_indices(
        self,
        table: Table,
        index: CooccurrenceIndex | None,
        stats: ExtractionStats,
    ) -> list[int]:
        if not self.config.use_pmi_filter or index is None:
            return list(range(table.num_columns))
        keep: list[int] = []
        for position, column in enumerate(table.columns):
            coherence = column_coherence(index, column.values)
            stats.coherence_by_column[f"{table.table_id}:{position}"] = coherence
            if coherence >= self.config.coherence_threshold:
                keep.append(position)
            else:
                stats.columns_removed_by_pmi += 1
        return keep

    # -- Pair-level filtering ----------------------------------------------------------
    def _candidate_from_pair(
        self,
        table: Table,
        left_index: int,
        right_index: int,
        stats: ExtractionStats,
    ) -> BinaryTable | None:
        rows = [
            (left.strip(), right.strip())
            for left, right in table.column_pair_rows(left_index, right_index)
            if left.strip() and right.strip()
        ]
        distinct_rows = list(dict.fromkeys(rows))
        if len(distinct_rows) < self.config.min_rows:
            stats.pairs_removed_by_size += 1
            return None
        if self.config.use_fd_filter:
            if column_pair_fd_ratio(distinct_rows) < self.config.fd_theta:
                stats.pairs_removed_by_fd += 1
                return None
        left_column = table.columns[left_index]
        right_column = table.columns[right_index]
        candidate = BinaryTable.from_rows(
            table_id=f"{table.table_id}#{left_index}->{right_index}",
            rows=distinct_rows,
            left_name=left_column.name,
            right_name=right_column.name,
            source_table_id=table.table_id,
            domain=table.domain,
        )
        candidate.metadata.update(table.metadata)
        return candidate

    # -- Public API ---------------------------------------------------------------------
    def extract_from_table(
        self,
        table: Table,
        index: CooccurrenceIndex | None = None,
        stats: ExtractionStats | None = None,
    ) -> list[BinaryTable]:
        """Extract candidate binary tables from one table."""
        stats = stats if stats is not None else ExtractionStats()
        stats.num_tables += 1
        stats.num_columns += table.num_columns
        keep = self._coherent_column_indices(table, index, stats)
        candidates: list[BinaryTable] = []
        for left_index in keep:
            for right_index in keep:
                if left_index == right_index:
                    continue
                stats.raw_pairs += 1
                candidate = self._candidate_from_pair(table, left_index, right_index, stats)
                if candidate is not None:
                    candidates.append(candidate)
                    stats.candidates += 1
        return candidates

    def extract(
        self, corpus: TableCorpus, index: CooccurrenceIndex | None = None
    ) -> tuple[list[BinaryTable], ExtractionStats]:
        """Extract candidates from every table in the corpus.

        If no co-occurrence index is supplied and the PMI filter is enabled, one is
        built from the corpus first.  When :attr:`SynthesisConfig.executor`
        selects a parallel backend, tables are sharded across it — mirroring how
        blocked-pair scoring fans out — with candidates concatenated in corpus
        order, so the output is byte-identical to the sequential pass.
        """
        if index is None and self.config.use_pmi_filter:
            index = CooccurrenceIndex.from_corpus(corpus)
        return self.extract_tables(list(corpus), index=index)

    def extract_tables(
        self, tables: list[Table], index: CooccurrenceIndex | None = None
    ) -> tuple[list[BinaryTable], ExtractionStats]:
        """Extract candidates from an explicit table list (corpus order).

        This is the shard-aware entry point :meth:`extract` and the incremental
        refresh path (:mod:`repro.store.incremental`) both go through; refresh
        passes only the changed tables.
        """
        self.last_parallel_fallback = False
        # default_kind=None: extraction never parallelized under the legacy
        # num_workers knob, so only an explicit executor spec shards it.
        fan = FanOut(self.config.effective_executor(default_kind=None))
        if fan.should_fan_out(len(tables)):
            shards = fan.chunk(tables)
            if fan.kind == "thread":
                # Threads share config + PMI index through one bound task
                # object (no serialization); pickling backends ship them once
                # per worker through the initializer, not once per shard task.
                task, initializer, initargs = _ShardTask(self.config, index), None, ()
            else:
                task = _extract_shard_in_worker
                initializer, initargs = _init_extract_worker, (self.config, index)
            # map_blocks preserves shard order, so concatenation recovers the
            # exact sequential candidate ordering.  A pool failure (unpicklable
            # tables/index under a process backend, environmentally broken
            # pool) returns None and extraction runs in-process instead.
            shard_results = fan.run_blocks(
                task, shards, initializer=initializer, initargs=initargs
            )
            if shard_results is None:
                self.last_parallel_fallback = True
            else:
                stats = ExtractionStats()
                candidates: list[BinaryTable] = []
                for shard_candidates, shard_stats in shard_results:
                    candidates.extend(shard_candidates)
                    stats.merge(shard_stats)
                return candidates, stats
        stats = ExtractionStats()
        candidates = []
        for table in tables:
            candidates.extend(self.extract_from_table(table, index=index, stats=stats))
        return candidates, stats
