"""Candidate two-column table extraction (paper §3, Algorithm 1)."""

from repro.extraction.cooccurrence import CooccurrenceIndex
from repro.extraction.pmi import column_coherence, npmi, pmi
from repro.extraction.fd import column_pair_fd_ratio, satisfies_fd
from repro.extraction.candidates import CandidateExtractor, ExtractionStats

__all__ = [
    "CooccurrenceIndex",
    "pmi",
    "npmi",
    "column_coherence",
    "column_pair_fd_ratio",
    "satisfies_fd",
    "CandidateExtractor",
    "ExtractionStats",
]
