"""PMI / NPMI coherence scoring for table columns (paper §3.1, Equations 1–2)."""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from repro.extraction.cooccurrence import CooccurrenceIndex

__all__ = ["pmi", "npmi", "column_coherence"]


def pmi(index: CooccurrenceIndex, first: str, second: str) -> float:
    """Point-wise mutual information between two cell values (Equation 1).

    Returns ``-inf``-like sentinel ``float('-inf')`` when the values never co-occur
    (``p(u, v) = 0``), and ``0.0`` when either value never occurs at all (no
    evidence either way).
    """
    p_first = index.probability(first)
    p_second = index.probability(second)
    if p_first == 0.0 or p_second == 0.0:
        return 0.0
    p_joint = index.joint_probability(first, second)
    if p_joint == 0.0:
        return float("-inf")
    return math.log(p_joint / (p_first * p_second))


def npmi(index: CooccurrenceIndex, first: str, second: str) -> float:
    """Normalized PMI in ``[-1, 1]`` (paper's ``s(u, v)``).

    * ``+1`` — the two values only ever occur together.
    * ``0``  — independent (or no evidence).
    * ``-1`` — never observed together.
    """
    p_first = index.probability(first)
    p_second = index.probability(second)
    if p_first == 0.0 or p_second == 0.0:
        return 0.0
    p_joint = index.joint_probability(first, second)
    if p_joint == 0.0:
        return -1.0
    if p_joint >= 1.0:
        return 1.0
    value = math.log(p_joint / (p_first * p_second)) / (-math.log(p_joint))
    return max(-1.0, min(1.0, value))


def column_coherence(
    index: CooccurrenceIndex,
    values: Sequence[str],
    max_values: int = 20,
    max_pairs: int = 200,
    seed: int = 0,
) -> float:
    """Average pairwise NPMI over the distinct values of a column (Equation 2).

    The exact all-pairs average is quadratic in the number of distinct values, so
    both the value set and the pair set are capped with a deterministic random
    sample — the paper similarly computes coherence at corpus scale where sampling
    is the only practical option.
    """
    distinct = sorted(set(values))
    if len(distinct) < 2:
        # A single repeated value carries no evidence of incoherence.
        return 1.0 if distinct else 0.0
    rng = random.Random(seed)
    if len(distinct) > max_values:
        distinct = sorted(rng.sample(distinct, max_values))
    pairs: list[tuple[str, str]] = [
        (distinct[i], distinct[j])
        for i in range(len(distinct))
        for j in range(i + 1, len(distinct))
    ]
    if len(pairs) > max_pairs:
        pairs = rng.sample(pairs, max_pairs)
    total = sum(npmi(index, first, second) for first, second in pairs)
    return total / len(pairs)
