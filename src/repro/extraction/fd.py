"""Approximate functional-dependency checks for column pairs (paper §3.2).

A column pair ``(L, R)`` is a candidate mapping only if ``L → R`` holds for at
least a fraction ``θ`` of the rows (Definition 2; the paper uses θ = 0.95 to allow
name ambiguity such as the two Portlands).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

__all__ = ["column_pair_fd_ratio", "satisfies_fd"]


def column_pair_fd_ratio(rows: Sequence[tuple[str, str]]) -> float:
    """Fraction of rows consistent with the majority right value per left value.

    Duplicate identical rows are collapsed first: repeating the same correct pair
    many times should not mask a genuine violation, and the paper's definition is
    over the relation (a set), not the bag of rows.
    """
    distinct_rows = set(rows)
    if not distinct_rows:
        return 1.0
    by_left: dict[str, Counter[str]] = {}
    for left, right in distinct_rows:
        by_left.setdefault(left, Counter())[right] += 1
    kept = sum(counter.most_common(1)[0][1] for counter in by_left.values())
    return kept / len(distinct_rows)


def satisfies_fd(rows: Sequence[tuple[str, str]], theta: float = 0.95) -> bool:
    """Return ``True`` if ``left → right`` holds for at least ``theta`` of the rows."""
    if not 0.0 < theta <= 1.0:
        raise ValueError(f"theta must be in (0, 1], got {theta}")
    return column_pair_fd_ratio(rows) >= theta
